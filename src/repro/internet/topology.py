"""Synthetic AS-level Internet topology.

The generator allocates IPv4 prefixes to autonomous systems with a
heavy-tailed size distribution and a country skew that mirrors published
address-space-usage estimates (Dainotti et al., "Lost in Space", JSAC 2016):
the US holds roughly 30 % of used space, China ~12 %, Japan ~6 %, and so on.
The paper's per-country attack rankings (Table 4) deviate from space usage
for a few countries (France/OVH and Russia over-attacked, Japan
under-attacked); that deviation is a property of *attacker targeting*, so it
lives in :mod:`repro.attacks.schedule`, not here.

A handful of named ASes reproduce the organisations the paper discusses by
name; everything else is an anonymous AS in a weighted country draw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.net.addressing import Prefix
from repro.net.geo import GeoDatabase
from repro.net.routing import RoutingTable

# Share of *used* IPv4 address space per country, first-order approximation
# of the "Lost in Space" estimates the paper cites. Values are weights, not
# exact percentages; they are normalized at draw time.
COUNTRY_SPACE_WEIGHTS: Dict[str, float] = {
    "US": 30.0,
    "CN": 12.0,
    "JP": 6.3,
    "DE": 5.0,
    "GB": 4.5,
    "KR": 4.0,
    "FR": 3.8,
    "BR": 3.3,
    "RU": 3.0,
    "CA": 2.8,
    "IT": 2.4,
    "AU": 2.2,
    "NL": 2.0,
    "IN": 1.9,
    "MX": 1.5,
    "ES": 1.4,
    "TW": 1.3,
    "SE": 1.1,
    "PL": 1.0,
    "AR": 0.9,
}

# AS kinds drive how the hosting ecosystem and the attack scheduler treat an
# AS (eyeball ISPs attract gaming attacks, hosters attract Web attacks, ...).
AS_KIND_ISP = "isp"
AS_KIND_HOSTER = "hoster"
AS_KIND_CLOUD = "cloud"
AS_KIND_DPS = "dps"
AS_KIND_ENTERPRISE = "enterprise"

# Named organisations from the paper: (name, asn, country, kind,
# number of /16 allocations). ASNs are the real-world ones where public.
NAMED_ORGANISATIONS: Sequence[Tuple[str, int, str, str, int]] = (
    ("OVH", 16276, "FR", AS_KIND_HOSTER, 4),
    ("GoDaddy", 26496, "US", AS_KIND_HOSTER, 4),
    ("Google Cloud", 15169, "US", AS_KIND_CLOUD, 4),
    ("Amazon AWS", 16509, "US", AS_KIND_CLOUD, 4),
    ("China Telecom", 4134, "CN", AS_KIND_ISP, 6),
    ("China Unicom", 4837, "CN", AS_KIND_ISP, 5),
    # Eyeball giants: without them, space-weighted victim selection would
    # let a single randomly-countried Pareto-tail AS swing the Table 4
    # rankings. Sizes follow each carrier's rough share of used space.
    ("Comcast", 7922, "US", AS_KIND_ISP, 7),
    ("AT&T", 7018, "US", AS_KIND_ISP, 6),
    ("Verizon", 701, "US", AS_KIND_ISP, 5),
    ("Charter", 20115, "US", AS_KIND_ISP, 4),
    ("Deutsche Telekom", 3320, "DE", AS_KIND_ISP, 4),
    ("Orange", 3215, "FR", AS_KIND_ISP, 3),
    ("Rostelecom", 12389, "RU", AS_KIND_ISP, 3),
    ("NTT", 2914, "JP", AS_KIND_ISP, 5),
    ("Korea Telecom", 4766, "KR", AS_KIND_ISP, 4),
    ("BT", 2856, "GB", AS_KIND_ISP, 3),
    ("Telecom Italia", 3269, "IT", AS_KIND_ISP, 2),
    ("Telmex", 8151, "MX", AS_KIND_ISP, 2),
    ("Squarespace", 53831, "US", AS_KIND_HOSTER, 1),
    ("Automattic", 2635, "US", AS_KIND_HOSTER, 1),
    ("eNom", 21740, "US", AS_KIND_HOSTER, 1),
    ("Network Solutions", 19871, "US", AS_KIND_HOSTER, 1),
    ("Endurance International", 46606, "US", AS_KIND_HOSTER, 2),
    ("Gandi", 29169, "FR", AS_KIND_HOSTER, 1),
    # DPS providers announce protection prefixes (BGP-based diversion).
    ("Akamai", 20940, "US", AS_KIND_DPS, 2),
    ("CenturyLink", 209, "US", AS_KIND_DPS, 1),
    ("CloudFlare", 13335, "US", AS_KIND_DPS, 2),
    ("DOSarrest", 19324, "CA", AS_KIND_DPS, 1),
    ("F5 Networks", 55002, "US", AS_KIND_DPS, 1),
    ("Incapsula", 19551, "US", AS_KIND_DPS, 1),
    ("Level3", 3356, "US", AS_KIND_DPS, 1),
    ("Neustar", 19905, "US", AS_KIND_DPS, 1),
    ("Verisign", 26134, "US", AS_KIND_DPS, 1),
    ("VirtualRoad", 206264, "DK", AS_KIND_DPS, 1),
)

# The darknet: a /8 with no hosts, operated as a network telescope.
TELESCOPE_SLASH8 = Prefix.from_string("44.0.0.0/8")


@dataclass
class AutonomousSystem:
    """An autonomous system with its announced prefixes."""

    asn: int
    name: str
    country: str
    kind: str
    prefixes: List[Prefix] = field(default_factory=list)

    @property
    def address_count(self) -> int:
        return sum(prefix.size for prefix in self.prefixes)

    def slash24_blocks(self) -> Iterator[int]:
        for prefix in self.prefixes:
            yield from prefix.slash24_blocks()

    def random_address(self, rng: Random) -> int:
        """Uniform address across all announced prefixes."""
        total = self.address_count
        offset = rng.randrange(total)
        for prefix in self.prefixes:
            if offset < prefix.size:
                return prefix.network + offset
            offset -= prefix.size
        raise AssertionError("offset exhausted prefix list")


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters of the synthetic topology."""

    seed: int = 1
    n_ases: int = 600
    # Pareto shape for AS sizes, in /24 units; heavier tail -> bigger ISPs.
    as_size_alpha: float = 1.3
    min_slash24s_per_as: int = 2
    max_slash24s_per_as: int = 384
    # Fraction of allocated /24s considered "active" by the census.
    active_fraction: float = 0.55
    isp_fraction: float = 0.70
    hoster_fraction: float = 0.12
    cloud_fraction: float = 0.05
    enterprise_fraction: float = 0.13


class InternetTopology:
    """The generated Internet: ASes, routing table, geo DB, census inputs."""

    def __init__(
        self,
        ases: List[AutonomousSystem],
        routing: RoutingTable,
        geo: GeoDatabase,
        telescope_prefix: Prefix = TELESCOPE_SLASH8,
    ) -> None:
        self.ases = ases
        self.routing = routing
        self.geo = geo
        self.telescope_prefix = telescope_prefix
        self._by_asn: Dict[int, AutonomousSystem] = {a.asn: a for a in ases}
        self._by_name: Dict[str, AutonomousSystem] = {a.name: a for a in ases}

    def as_by_asn(self, asn: int) -> Optional[AutonomousSystem]:
        return self._by_asn.get(asn)

    def as_by_name(self, name: str) -> Optional[AutonomousSystem]:
        return self._by_name.get(name)

    def ases_of_kind(self, kind: str) -> List[AutonomousSystem]:
        return [a for a in self.ases if a.kind == kind]

    @property
    def total_slash24s(self) -> int:
        return sum(a.address_count for a in self.ases) // 256

    def all_slash24_blocks(self) -> Iterator[int]:
        for autonomous_system in self.ases:
            yield from autonomous_system.slash24_blocks()

    @classmethod
    def generate(cls, config: TopologyConfig = TopologyConfig()) -> "InternetTopology":
        """Deterministically generate a topology from *config*."""
        rng = Random(config.seed)
        allocator = _PrefixAllocator(skip=(TELESCOPE_SLASH8,))
        ases: List[AutonomousSystem] = []

        for name, asn, country, kind, n_slash16 in NAMED_ORGANISATIONS:
            prefixes = [allocator.take(16) for _ in range(n_slash16)]
            ases.append(AutonomousSystem(asn, name, country, kind, prefixes))

        countries = list(COUNTRY_SPACE_WEIGHTS)
        weights = [COUNTRY_SPACE_WEIGHTS[c] for c in countries]
        kind_choices = (
            [AS_KIND_ISP] * int(config.isp_fraction * 100)
            + [AS_KIND_HOSTER] * int(config.hoster_fraction * 100)
            + [AS_KIND_CLOUD] * int(config.cloud_fraction * 100)
            + [AS_KIND_ENTERPRISE] * int(config.enterprise_fraction * 100)
        )
        next_asn = 64512  # private ASN range for anonymous ASes
        for _ in range(config.n_ases):
            country = rng.choices(countries, weights=weights, k=1)[0]
            kind = rng.choice(kind_choices)
            size = _pareto_slash24s(rng, config)
            prefixes = allocator.take_slash24s(size)
            ases.append(
                AutonomousSystem(next_asn, f"AS{next_asn}", country, kind, prefixes)
            )
            next_asn += 1

        routing = RoutingTable()
        allocations = []
        for autonomous_system in ases:
            for prefix in autonomous_system.prefixes:
                routing.announce(prefix, autonomous_system.asn)
                allocations.append((prefix, autonomous_system.country))
        geo = GeoDatabase.from_prefixes(allocations)
        return cls(ases, routing, geo)


def _pareto_slash24s(rng: Random, config: TopologyConfig) -> int:
    """Draw an AS size (in /24 blocks) from a bounded Pareto distribution."""
    draw = rng.paretovariate(config.as_size_alpha)
    size = int(config.min_slash24s_per_as * draw)
    return max(config.min_slash24s_per_as, min(config.max_slash24s_per_as, size))


class _PrefixAllocator:
    """Sequential prefix allocator that skips reserved space.

    Allocation starts at 1.0.0.0 and walks upward; the telescope /8,
    0.0.0.0/8, 10/8, 127/8, 224/3 and anything in *skip* are never handed
    out. Allocations are aligned to their size.
    """

    _RESERVED = (
        Prefix.from_string("0.0.0.0/8"),
        Prefix.from_string("10.0.0.0/8"),
        Prefix.from_string("127.0.0.0/8"),
        Prefix.from_string("224.0.0.0/3"),
    )

    def __init__(self, skip: Sequence[Prefix] = ()) -> None:
        self._skip = tuple(self._RESERVED) + tuple(skip)
        self._cursor = Prefix.from_string("1.0.0.0/8").network

    def take(self, length: int) -> Prefix:
        """Allocate the next aligned, unreserved prefix of *length*."""
        size = 1 << (32 - length)
        while True:
            base = (self._cursor + size - 1) // size * size
            candidate = Prefix(base, length)
            conflict = next(
                (r for r in self._skip if r.overlaps(candidate)), None
            )
            if conflict is None:
                self._cursor = candidate.last + 1
                return candidate
            self._cursor = conflict.last + 1
            if self._cursor > 0xFFFFFFFF:
                raise RuntimeError("IPv4 space exhausted by allocator")

    def take_slash24s(self, count: int) -> List[Prefix]:
        """Allocate *count* /24s as the smallest covering aligned prefixes."""
        prefixes: List[Prefix] = []
        remaining = count
        while remaining > 0:
            length = 24
            while length > 8 and (1 << (24 - (length - 1))) <= remaining:
                length -= 1
            prefixes.append(self.take(length))
            remaining -= 1 << (24 - length)
        return prefixes
