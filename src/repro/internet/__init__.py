"""Synthetic Internet model: topology, hosting ecosystem, address census.

The real study annotates observations with Routeviews, NetAcuity and the
hosting relationships implied by OpenINTEL. This package generates a
deterministic, scaled-down Internet with the same first-order structure:
country-skewed address allocation, a heavy-tailed AS size distribution,
named hosting/cloud companies matching the parties the paper calls out
(GoDaddy, OVH, Google Cloud, Amazon, Wix, Squarespace, ...), and an
active-/24 census used for the "one third of the Internet" headline ratio.
"""

from repro.internet.topology import (
    AutonomousSystem,
    InternetTopology,
    TopologyConfig,
    COUNTRY_SPACE_WEIGHTS,
)
from repro.internet.hosting import (
    Hoster,
    HostingConfig,
    HostingEcosystem,
)
from repro.internet.population import ActiveAddressCensus

__all__ = [
    "AutonomousSystem",
    "InternetTopology",
    "TopologyConfig",
    "COUNTRY_SPACE_WEIGHTS",
    "Hoster",
    "HostingConfig",
    "HostingEcosystem",
    "ActiveAddressCensus",
]
