"""Active-address census (substitute for the /24 activity estimates).

The paper's headline statistic — "one third of recently-active /24 networks
were attacked" — divides observed attacked /24s by the ~6.5 M active /24s
estimated by Zander et al. (IMC'14) and Richter et al. (IMC'16). This module
derives the equivalent denominator for the synthetic Internet: a
deterministic subsample of allocated /24 blocks marked "active".
"""

from __future__ import annotations

from random import Random
from typing import FrozenSet, Iterable, Set

from repro.net.addressing import slash24
from repro.internet.topology import InternetTopology


class ActiveAddressCensus:
    """Which /24 blocks are considered active on the simulated Internet."""

    def __init__(self, active_blocks: Iterable[int]) -> None:
        self._active: FrozenSet[int] = frozenset(active_blocks)

    @classmethod
    def from_topology(
        cls, topology: InternetTopology, active_fraction: float, seed: int
    ) -> "ActiveAddressCensus":
        """Sample a fraction of every AS's /24s as active.

        Eyeball/hosting space is denser than enterprise space in reality;
        we approximate that by sampling hoster and cloud blocks at a higher
        rate than the base fraction (capped at 1.0).
        """
        if not 0.0 < active_fraction <= 1.0:
            raise ValueError("active_fraction must be in (0, 1]")
        rng = Random(seed)
        active: Set[int] = set()
        for autonomous_system in topology.ases:
            rate = active_fraction
            if autonomous_system.kind in ("hoster", "cloud", "dps"):
                rate = min(1.0, active_fraction * 1.5)
            for block in autonomous_system.slash24_blocks():
                if rng.random() < rate:
                    active.add(block)
        return cls(active)

    def __len__(self) -> int:
        return len(self._active)

    def __contains__(self, block: int) -> bool:
        return block in self._active

    @property
    def active_blocks(self) -> FrozenSet[int]:
        return self._active

    def is_active_address(self, address: int) -> bool:
        """Whether the /24 containing *address* is active."""
        return slash24(address) in self._active

    def attacked_fraction(self, attacked_blocks: Iterable[int]) -> float:
        """Fraction of active /24s present in *attacked_blocks*.

        This is the paper's "one third of the Internet" ratio: attacked
        blocks outside the census still count toward the numerator's
        intersection only, mirroring how the paper divides observed targets
        by an independently estimated active population.
        """
        if not self._active:
            return 0.0
        attacked = {slash24(b) for b in attacked_blocks}
        return len(attacked & self._active) / len(self._active)
