"""Hosting ecosystem: who serves the Web sites the DNS substrate publishes.

Co-hosting is the structural fact behind Section 5 of the paper: a single
attacked IP address can be associated with anywhere from one Web site to
millions (Figure 6 spans eight orders of magnitude). The ecosystem therefore
models hosting *tiers* — from self-hosted single-site IPs up to giant shared
platforms with millions of sites spread over a handful of addresses — and
names the parties the paper identifies (GoDaddy, Wix, Squarespace, OVH,
Automattic/WordPress, eNom, Network Solutions, EIG, Gandi, plus cloud
hosting in Google Cloud and Amazon AWS).

Some platforms host inside a cloud (Wix in AWS) and are only identifiable
through a customer-specific CNAME — the ecosystem records that so the DNS
and DPS layers can reproduce the paper's CNAME-based attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.internet.topology import (
    AS_KIND_HOSTER,
    AS_KIND_ISP,
    AutonomousSystem,
    InternetTopology,
)

TIER_GIANT = "giant"
TIER_LARGE = "large"
TIER_MEDIUM = "medium"
TIER_SMALL = "small"
TIER_SELF = "self"

# (tier, ip-pool size, domain-popularity weight). The weight is the share of
# registered domains landing on that tier; pools being small relative to
# weight is what creates extreme co-hosting for the giant tier.
_TIER_SHAPES: Dict[str, Tuple[int, float]] = {
    TIER_GIANT: (48, 30.0),
    TIER_LARGE: (40, 18.0),
    TIER_MEDIUM: (48, 14.0),
    TIER_SMALL: (64, 8.0),
}

# Named platforms: (name, AS name in the topology, tier, cloud host AS name
# or None, popularity multiplier). Wix hosts in AWS and a domain reseller
# also lives in AWS — both identifiable only via CNAME, as in the paper.
_NAMED_PLATFORMS: Sequence[Tuple[str, str, str, Optional[str], float]] = (
    ("GoDaddy", "GoDaddy", TIER_GIANT, None, 2.5),
    ("Wix", "Wix-origin", TIER_GIANT, "Amazon AWS", 0.10),
    ("Automattic", "Automattic", TIER_GIANT, None, 1.2),
    ("Squarespace", "Squarespace", TIER_LARGE, None, 1.0),
    ("OVH", "OVH", TIER_LARGE, None, 1.0),
    ("eNom", "eNom", TIER_LARGE, None, 0.25),
    ("Network Solutions", "Network Solutions", TIER_LARGE, None, 0.7),
    ("EIG", "Endurance International", TIER_LARGE, None, 0.9),
    ("Gandi", "Gandi", TIER_MEDIUM, None, 0.5),
    ("Google Cloud", "Google Cloud", TIER_LARGE, None, 1.2),
    ("AWS reseller", "aws-reseller", TIER_GIANT, "Amazon AWS", 0.8),
)


@dataclass
class Hoster:
    """A Web hosting platform (or the synthetic self-hosting pseudo-hoster)."""

    name: str
    asn: int
    tier: str
    ips: List[int]
    popularity: float
    ns_names: Tuple[str, ...] = ()
    cname_suffix: Optional[str] = None
    hosted_in: Optional[str] = None
    mail_ips: List[int] = field(default_factory=list)

    def ip_weights(self) -> List[float]:
        """Zipf-skewed load across the pool: real platforms concentrate
        customers on a few front-end addresses, producing the smooth
        co-hosting continuum of the paper's Figure 6."""
        return [1.0 / (index + 1) for index in range(len(self.ips))]

    def pick_ip(self, rng: Random) -> int:
        """Choose a shared hosting IP for a new customer site."""
        return rng.choices(self.ips, weights=self.ip_weights(), k=1)[0]


@dataclass(frozen=True)
class HostingConfig:
    """Parameters of the hosting ecosystem."""

    seed: int = 2
    n_anonymous_hosters: int = 40
    self_hosting_weight: float = 30.0
    mail_ips_per_hoster: int = 2


class HostingEcosystem:
    """All hosters plus the self-hosting IP pool and placement logic."""

    def __init__(
        self,
        hosters: List[Hoster],
        topology: InternetTopology,
        config: HostingConfig,
    ) -> None:
        self.hosters = hosters
        self.config = config
        self._topology = topology
        self._rng = Random(config.seed ^ 0x5E1F)
        self._self_hosted_used: Set[int] = set()
        self._isp_ases = [
            a for a in topology.ases if a.kind in (AS_KIND_ISP, "enterprise")
        ]
        if not self._isp_ases:
            raise ValueError("topology has no ISP/enterprise space to self-host in")
        self._names = {h.name: h for h in hosters}
        self._weights = [h.popularity for h in hosters]

    def hoster_by_name(self, name: str) -> Optional[Hoster]:
        return self._names.get(name)

    def choose_placement(self, rng: Random) -> Optional[Hoster]:
        """Pick a hoster for a new domain; ``None`` means self-hosted.

        The self-hosting branch wins with probability proportional to
        ``config.self_hosting_weight`` against the summed hoster
        popularities.
        """
        total_hosted = sum(self._weights)
        pick = rng.uniform(0.0, total_hosted + self.config.self_hosting_weight)
        if pick >= total_hosted:
            return None
        return rng.choices(self.hosters, weights=self._weights, k=1)[0]

    def allocate_self_hosted_ip(self, rng: Random) -> int:
        """A fresh, unique IP in ISP/enterprise space for a self-hosted site."""
        for _ in range(10_000):
            autonomous_system = rng.choice(self._isp_ases)
            address = autonomous_system.random_address(rng)
            if address not in self._self_hosted_used:
                self._self_hosted_used.add(address)
                return address
        raise RuntimeError("could not find a free self-hosting address")

    def all_hosting_ips(self) -> List[int]:
        """Every shared hosting IP across hosters (mail IPs excluded)."""
        ips: List[int] = []
        for hoster in self.hosters:
            ips.extend(hoster.ips)
        return ips

    @classmethod
    def generate(
        cls, topology: InternetTopology, config: HostingConfig = HostingConfig()
    ) -> "HostingEcosystem":
        """Build the ecosystem on top of an existing topology."""
        rng = Random(config.seed)
        hosters: List[Hoster] = []

        for name, as_name, tier, cloud_name, multiplier in _NAMED_PLATFORMS:
            home = _resolve_home_as(topology, as_name, cloud_name)
            if home is None:
                continue
            pool_size, weight = _TIER_SHAPES[tier]
            ips = _draw_unique_ips(home, pool_size, rng)
            mail_ips = _draw_unique_ips(home, config.mail_ips_per_hoster, rng)
            slug = name.lower().replace(" ", "-")
            hosters.append(
                Hoster(
                    name=name,
                    asn=home.asn,
                    tier=tier,
                    ips=ips,
                    popularity=weight * multiplier,
                    ns_names=(f"ns1.{slug}.example", f"ns2.{slug}.example"),
                    cname_suffix=f".{slug}.example" if cloud_name else None,
                    hosted_in=cloud_name,
                    mail_ips=mail_ips,
                )
            )

        candidates = [
            a
            for a in topology.ases_of_kind(AS_KIND_HOSTER)
            if a.name == f"AS{a.asn}"  # anonymous ASes only
        ]
        rng.shuffle(candidates)
        tiers = [TIER_MEDIUM, TIER_SMALL, TIER_SMALL, TIER_SMALL]
        for index, home in enumerate(candidates[: config.n_anonymous_hosters]):
            tier = tiers[index % len(tiers)]
            pool_size, weight = _TIER_SHAPES[tier]
            slug = f"hoster{index}"
            hosters.append(
                Hoster(
                    name=slug,
                    asn=home.asn,
                    tier=tier,
                    ips=_draw_unique_ips(home, pool_size, rng),
                    popularity=weight / max(1, config.n_anonymous_hosters // 8),
                    ns_names=(f"ns1.{slug}.example", f"ns2.{slug}.example"),
                    mail_ips=_draw_unique_ips(
                        home, config.mail_ips_per_hoster, rng
                    ),
                )
            )

        return cls(hosters, topology, config)


def _resolve_home_as(
    topology: InternetTopology, as_name: str, cloud_name: Optional[str]
) -> Optional[AutonomousSystem]:
    """The AS whose space the platform's IPs live in.

    Cloud-hosted platforms (Wix, the AWS reseller) have no AS of their own:
    their addresses come out of the cloud provider's allocation.
    """
    if cloud_name is not None:
        return topology.as_by_name(cloud_name)
    return topology.as_by_name(as_name)


def _draw_unique_ips(
    autonomous_system: AutonomousSystem, count: int, rng: Random
) -> List[int]:
    """Draw *count* distinct addresses from one AS's space."""
    seen: Set[int] = set()
    while len(seen) < count:
        seen.add(autonomous_system.random_address(rng))
    return sorted(seen)
