"""Structured logging for the reproduction framework.

``src/`` ran silent for its first two PRs; once runs can crash, resume
and quarantine bad records, silence makes recovery undebuggable. This
module gives every component a namespaced logger that emits *events with
fields* rather than prose:

>>> log = get_logger("store")
>>> log.info("checkpoint saved", stage="attacks", bytes=123, sha="ab..")

Handlers are configured once, at the program edge (the CLI's
``--verbose`` / ``--log-json`` flags call :func:`configure_logging`);
library code only ever calls :func:`get_logger`. With no configuration
the root ``repro`` logger carries a ``NullHandler``, so importing the
library never spams a host application — standard library etiquette.

Two output shapes share the same records:

* console (default): ``HH:MM:SS LEVEL logger: event key=value ...``
* JSON lines (``--log-json``): one object per record with sorted keys,
  machine-parseable for post-mortems of a crashed run.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Dict, IO, Optional

#: Root of the library's logger namespace.
ROOT_LOGGER = "repro"

_FIELDS_ATTR = "repro_fields"


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, event, fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            payload.update(fields)
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class ConsoleFormatter(logging.Formatter):
    """Human-readable line with trailing ``key=value`` fields."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        line = (
            f"{stamp} {record.levelname:<7} {record.name}: "
            f"{record.getMessage()}"
        )
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            rendered = " ".join(
                f"{key}={_render_value(value)}"
                for key, value in fields.items()
            )
            line = f"{line} {rendered}"
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


def _render_value(value: Any) -> str:
    text = str(value)
    return repr(text) if " " in text else text


class StructuredLogger:
    """Thin wrapper over :class:`logging.Logger` taking keyword fields.

    ``log.info("stage completed", stage="attacks", attempts=2)`` attaches
    the fields to the record so both formatters render them; any stdlib
    handler attached to the ``repro`` hierarchy still works unmodified.
    """

    def __init__(
        self,
        logger: logging.Logger,
        bound: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.logger = logger
        self._bound: Dict[str, Any] = dict(bound or {})

    @property
    def name(self) -> str:
        return self.logger.name

    def bind(self, **fields: Any) -> "StructuredLogger":
        """A child logger that stamps *fields* onto every record.

        The worker/shard machinery logs many lines that all belong to one
        (stage, shard, attempt) coordinate; binding once beats repeating
        the coordinate at every call site — and makes it impossible to
        forget on the error path, where it matters most.
        """
        merged = dict(self._bound)
        merged.update(fields)
        return StructuredLogger(self.logger, merged)

    def _log(self, level: int, event: str, fields: Dict[str, Any]) -> None:
        if self.logger.isEnabledFor(level):
            if self._bound:
                merged = dict(self._bound)
                merged.update(fields)
                fields = merged
            extra = {_FIELDS_ATTR: fields} if fields else None
            self.logger.log(level, event, extra=extra)

    def debug(self, event: str, **fields: Any) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._log(logging.ERROR, event, fields)


def get_logger(name: str = "") -> StructuredLogger:
    """A structured logger under the ``repro`` namespace."""
    if not name:
        qualified = ROOT_LOGGER
    elif name.startswith(ROOT_LOGGER + ".") or name == ROOT_LOGGER:
        qualified = name
    else:
        qualified = f"{ROOT_LOGGER}.{name}"
    return StructuredLogger(logging.getLogger(qualified))


#: Marker so reconfiguration replaces only handlers this module installed.
_MANAGED_ATTR = "repro_managed_handler"


def configure_logging(
    verbose: bool = False,
    json_mode: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Install (or replace) the framework's log handler; idempotent.

    Called from program entry points, never from library code. Returns
    the root ``repro`` logger so callers can tweak further if needed.
    """
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, _MANAGED_ATTR, False):
            root.removeHandler(handler)
            # Close the replaced handler so repeated configuration (a CLI
            # invoked twice in-process, a test harness) cannot stack open
            # streams or double-print through a lingering handler. The
            # default stderr stream is owned by the interpreter; close()
            # on StreamHandler only releases the handler's own resources.
            try:
                handler.close()
            except Exception:
                pass
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        JsonLineFormatter() if json_mode else ConsoleFormatter()
    )
    setattr(handler, _MANAGED_ATTR, True)
    root.addHandler(handler)
    root.setLevel(logging.DEBUG if verbose else logging.INFO)
    root.propagate = False
    return root


# Library etiquette: silent unless the host application configures us.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


__all__ = [
    "ROOT_LOGGER",
    "ConsoleFormatter",
    "JsonLineFormatter",
    "StructuredLogger",
    "configure_logging",
    "get_logger",
]
