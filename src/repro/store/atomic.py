"""Crash-safe file primitives: atomic replace plus directory fsync.

The whole durable-run design rests on one invariant: a reader never sees
a half-written file. Writes go to a same-directory temp path, are fsynced,
and are moved into place with :func:`os.replace`; then the *parent
directory* is fsynced so the rename itself survives power loss (POSIX
only promises the rename is durable once the directory entry is). The
temp file is removed only when the replace did not happen, so a cleanup
racing a successful rename can never unlink a file some concurrent
writer just created at the same temp path.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

from repro.obs.metrics import get_registry

PathLike = Union[str, Path]


def _fsync_counter():
    """The process-wide fsync counter (no-op under the null registry)."""
    return get_registry().counter(
        "store_fsyncs_total", "fsync calls issued by the durable store"
    )


def fsync_directory(path: PathLike) -> None:
    """Flush a directory entry table to stable storage (best effort).

    Some platforms (and some filesystems) refuse ``open`` or ``fsync`` on
    directories; durability is then whatever the OS already gives, and the
    write itself must not fail because of it.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
        _fsync_counter().inc()
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Write *data* to *path* atomically and durably."""
    path = Path(path)
    tmp_path = path.with_name(path.name + ".tmp")
    replaced = False
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
            _fsync_counter().inc()
        os.replace(tmp_path, path)
        replaced = True
        fsync_directory(path.parent)
    finally:
        if not replaced:
            try:
                tmp_path.unlink()
            except FileNotFoundError:
                pass


def atomic_write_text(path: PathLike, text: str) -> None:
    """Write *text* (UTF-8) to *path* atomically and durably."""
    atomic_write_bytes(path, text.encode("utf-8"))


__all__ = ["atomic_write_bytes", "atomic_write_text", "fsync_directory"]
