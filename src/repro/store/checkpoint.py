"""Durable per-stage checkpoints with tamper-evident manifests.

A :class:`CheckpointStore` lives inside a *run directory* and persists
each completed pipeline stage's output so a killed process can be
resumed by a fresh one (``python -m repro resume <run_dir>``). Layout::

    <run_dir>/
        meta.json                  # how the run was started (CLI resume)
        state.json                 # injector counters etc. (runner-owned)
        checkpoints/
            <stage>.pkl            # stage payload (pickle or zlib codec)
            <stage>.manifest.json  # schema version, codec, bytes, sha256

Every file is written with the atomic temp-file + rename + directory
fsync pattern from :mod:`repro.store.atomic`, and the manifest is written
*after* its payload — a manifest on disk therefore implies a complete
payload. Loads verify the manifest's schema version, byte count and
SHA-256 checksum before unpickling, so corruption and version skew are
detected at the store boundary, not three stages downstream:

* wrong/absent manifest        -> :class:`CheckpointMissingError`
* schema version skew          -> :class:`CheckpointVersionError`
* size/checksum/unpickle fail  -> :class:`CheckpointCorruptionError`

:meth:`CheckpointStore.load_valid_prefix` implements the resume policy:
walk the stage order, keep the longest prefix of valid checkpoints, and
on the first invalid one discard it *and everything after it* (later
stages were computed from data we can no longer trust), falling back to
the previous stage.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.log import get_logger
from repro.obs.metrics import get_registry
from repro.store.atomic import atomic_write_bytes, atomic_write_text

log = get_logger("store")

#: Bump when the checkpoint payload encoding changes incompatibly.
STORE_SCHEMA_VERSION = 1

#: Record count for payloads without a length.
UNSIZED = -1

#: Payload codecs a manifest may name. "pickle" is the historical
#: encoding (and the default, so old run dirs keep loading); "zlib"
#: wraps the same pickle bytes in DEFLATE for a compact binary
#: checkpoint. The manifest's size/checksum always describe the bytes
#: on disk, so corruption checks run before any decompress/unpickle.
CHECKPOINT_CODECS = ("pickle", "zlib")

#: Compression level for the "zlib" codec: 6 is zlib's own default —
#: measurably smaller checkpoints without the level-9 CPU cliff.
_ZLIB_LEVEL = 6


def _encode_payload(payload: Any, codec: str) -> bytes:
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if codec == "zlib":
        return zlib.compress(data, _ZLIB_LEVEL)
    return data


def _decode_payload(data: bytes, codec: str) -> Any:
    if codec == "zlib":
        data = zlib.decompress(data)
    return pickle.loads(data)


class CheckpointError(RuntimeError):
    """Base class for checkpoint load failures."""

    def __init__(self, stage: str, reason: str) -> None:
        super().__init__(f"checkpoint {stage!r}: {reason}")
        self.stage = stage
        self.reason = reason


class CheckpointMissingError(CheckpointError):
    """No (complete) checkpoint for the stage."""


class CheckpointVersionError(CheckpointError):
    """The checkpoint was written by an incompatible store version."""


class CheckpointCorruptionError(CheckpointError):
    """The payload does not match its manifest."""


@dataclass(frozen=True)
class CheckpointManifest:
    """What must hold for a checkpoint payload to be trusted."""

    stage: str
    schema_version: int
    payload_bytes: int
    sha256: str
    record_count: int = UNSIZED
    created_ts: float = 0.0
    codec: str = "pickle"

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "CheckpointManifest":
        data = json.loads(text)
        return cls(
            stage=data["stage"],
            schema_version=data["schema_version"],
            payload_bytes=data["payload_bytes"],
            sha256=data["sha256"],
            record_count=data.get("record_count", UNSIZED),
            created_ts=data.get("created_ts", 0.0),
            codec=data.get("codec", "pickle"),
        )


@dataclass(frozen=True)
class CheckpointIssue:
    """One checkpoint the resume policy had to throw away."""

    stage: str
    kind: str  # "missing" | "version" | "corrupt" | "orphaned"
    detail: str


class CheckpointStore:
    """Atomic, checksummed stage checkpoints under one run directory."""

    CHECKPOINT_DIR = "checkpoints"

    def __init__(
        self,
        run_dir: Union[str, Path],
        metrics: Optional[Any] = None,
        codec: str = "pickle",
    ) -> None:
        if codec not in CHECKPOINT_CODECS:
            raise ValueError(
                f"unknown checkpoint codec {codec!r} "
                f"(codecs: {', '.join(CHECKPOINT_CODECS)})"
            )
        self.codec = codec
        self.run_dir = Path(run_dir)
        self.checkpoint_dir = self.run_dir / self.CHECKPOINT_DIR
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        registry = metrics if metrics is not None else get_registry()
        self._m_saves = registry.counter(
            "checkpoint_saves_total", "stage checkpoints persisted"
        )
        self._m_bytes = registry.counter(
            "checkpoint_bytes_written_total",
            "checkpoint payload bytes written",
        )
        self._m_loads = registry.counter(
            "checkpoint_loads_total",
            "checkpoint load attempts by result",
            ("result",),
        )

    # -- paths ----------------------------------------------------------------

    def payload_path(self, stage: str) -> Path:
        return self.checkpoint_dir / f"{stage}.pkl"

    def manifest_path(self, stage: str) -> Path:
        return self.checkpoint_dir / f"{stage}.manifest.json"

    # -- writing --------------------------------------------------------------

    def save(self, stage: str, payload: Any) -> CheckpointManifest:
        """Persist one stage output; payload first, manifest second."""
        data = _encode_payload(payload, self.codec)
        manifest = CheckpointManifest(
            stage=stage,
            schema_version=STORE_SCHEMA_VERSION,
            payload_bytes=len(data),
            sha256=hashlib.sha256(data).hexdigest(),
            record_count=_record_count(payload),
            created_ts=time.time(),
            codec=self.codec,
        )
        atomic_write_bytes(self.payload_path(stage), data)
        atomic_write_text(self.manifest_path(stage), manifest.to_json())
        self._m_saves.inc()
        self._m_bytes.inc(len(data))
        log.debug(
            "checkpoint saved",
            stage=stage,
            bytes=manifest.payload_bytes,
            records=manifest.record_count,
            sha256=manifest.sha256[:12],
        )
        return manifest

    # -- reading --------------------------------------------------------------

    def has(self, stage: str) -> bool:
        return self.manifest_path(stage).exists()

    def manifest(self, stage: str) -> CheckpointManifest:
        path = self.manifest_path(stage)
        if not path.exists():
            raise CheckpointMissingError(stage, "no manifest on disk")
        try:
            return CheckpointManifest.from_json(
                path.read_text(encoding="utf-8")
            )
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise CheckpointCorruptionError(
                stage, f"unreadable manifest: {exc}"
            ) from exc

    def load(self, stage: str) -> Any:
        """Verified load: version, size and checksum checked before unpickle."""
        try:
            payload = self._load_verified(stage)
        except CheckpointError as exc:
            result = (
                "version"
                if isinstance(exc, CheckpointVersionError)
                else "corrupt"
                if isinstance(exc, CheckpointCorruptionError)
                else "missing"
            )
            self._m_loads.inc(result=result)
            raise
        self._m_loads.inc(result="ok")
        return payload

    def _load_verified(self, stage: str) -> Any:
        manifest = self.manifest(stage)
        if manifest.schema_version != STORE_SCHEMA_VERSION:
            raise CheckpointVersionError(
                stage,
                f"store schema v{manifest.schema_version}, "
                f"this build reads v{STORE_SCHEMA_VERSION}",
            )
        if manifest.codec not in CHECKPOINT_CODECS:
            raise CheckpointVersionError(
                stage,
                f"payload codec {manifest.codec!r} unknown to this build "
                f"(codecs: {', '.join(CHECKPOINT_CODECS)})",
            )
        payload_path = self.payload_path(stage)
        if not payload_path.exists():
            raise CheckpointMissingError(stage, "manifest without payload")
        data = payload_path.read_bytes()
        if len(data) != manifest.payload_bytes:
            raise CheckpointCorruptionError(
                stage,
                f"payload is {len(data)} bytes, "
                f"manifest promises {manifest.payload_bytes}",
            )
        digest = hashlib.sha256(data).hexdigest()
        if digest != manifest.sha256:
            raise CheckpointCorruptionError(
                stage,
                f"checksum mismatch ({digest[:12]}.. != "
                f"{manifest.sha256[:12]}..)",
            )
        try:
            return _decode_payload(data, manifest.codec)
        except Exception as exc:  # corrupt-but-right-checksum can't happen;
            # this guards a manifest forged around a broken payload.
            raise CheckpointCorruptionError(
                stage, f"payload does not decode: {exc}"
            ) from exc

    def discard(self, stage: str) -> None:
        """Drop a checkpoint (manifest first, so no orphan manifests)."""
        for path in (self.manifest_path(stage), self.payload_path(stage)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def stages(self) -> List[str]:
        """Stage names with a manifest on disk (unordered set, sorted)."""
        return sorted(
            path.name[: -len(".manifest.json")]
            for path in self.checkpoint_dir.glob("*.manifest.json")
        )

    def load_valid_prefix(
        self, order: Sequence[str]
    ) -> Tuple[Dict[str, Any], List[CheckpointIssue]]:
        """Restore the longest trustworthy prefix of *order*.

        Returns ``(payloads, issues)``. The first missing or invalid
        checkpoint ends the prefix; an invalid one is discarded along
        with every later checkpoint (they derive from it), which is the
        "fall back to the previous stage" policy.
        """
        payloads: Dict[str, Any] = {}
        issues: List[CheckpointIssue] = []
        broke_at: Optional[int] = None
        for index, stage in enumerate(order):
            if not self.has(stage):
                broke_at = index
                break
            try:
                payloads[stage] = self.load(stage)
            except CheckpointError as exc:
                kind = (
                    "version"
                    if isinstance(exc, CheckpointVersionError)
                    else "corrupt"
                    if isinstance(exc, CheckpointCorruptionError)
                    else "missing"
                )
                issues.append(CheckpointIssue(stage, kind, exc.reason))
                log.warning(
                    "checkpoint rejected", stage=stage, kind=kind,
                    reason=exc.reason,
                )
                self.discard(stage)
                broke_at = index
                break
        if broke_at is not None:
            for stage in order[broke_at + 1:]:
                if self.has(stage):
                    issues.append(
                        CheckpointIssue(
                            stage,
                            "orphaned",
                            "discarded: follows an invalid or missing "
                            "checkpoint",
                        )
                    )
                    self.discard(stage)
        if payloads:
            log.info(
                "checkpoints restored",
                stages=",".join(payloads),
                rejected=len(issues),
            )
        return payloads, issues

    def load_valid_graph(
        self, order: Sequence[str], deps: Dict[str, Sequence[str]]
    ) -> Tuple[Dict[str, Any], List[CheckpointIssue]]:
        """Restore every checkpoint whose dependencies were restored.

        The prefix policy of :meth:`load_valid_prefix` assumes strictly
        sequential stages; once independent stages run concurrently, one
        of them can complete while an *earlier-ordered* sibling has not,
        and a prefix walk would throw the finished one away. Here *deps*
        names each stage's actual data dependencies: a stage is restored
        when its own checkpoint validates and every dependency was
        restored; otherwise it is discarded (its inputs can no longer be
        trusted), and the discard cascades to dependents naturally.

        Names on disk that are not in *order* (e.g. per-shard partial
        checkpoints) are left untouched — their lifecycle belongs to the
        caller.
        """
        payloads: Dict[str, Any] = {}
        issues: List[CheckpointIssue] = []
        for stage in order:
            missing_deps = [
                dep for dep in deps.get(stage, ()) if dep not in payloads
            ]
            if missing_deps:
                if self.has(stage):
                    issues.append(
                        CheckpointIssue(
                            stage,
                            "orphaned",
                            "discarded: depends on invalid or missing "
                            + ", ".join(missing_deps),
                        )
                    )
                    self.discard(stage)
                continue
            if not self.has(stage):
                continue
            try:
                payloads[stage] = self.load(stage)
            except CheckpointError as exc:
                kind = (
                    "version"
                    if isinstance(exc, CheckpointVersionError)
                    else "corrupt"
                    if isinstance(exc, CheckpointCorruptionError)
                    else "missing"
                )
                issues.append(CheckpointIssue(stage, kind, exc.reason))
                log.warning(
                    "checkpoint rejected", stage=stage, kind=kind,
                    reason=exc.reason,
                )
                self.discard(stage)
        if payloads:
            log.info(
                "checkpoints restored",
                stages=",".join(payloads),
                rejected=len(issues),
            )
        return payloads, issues

    # -- run-level JSON documents --------------------------------------------

    def write_json(self, name: str, payload: Dict[str, Any]) -> None:
        atomic_write_text(
            self.run_dir / name, json.dumps(payload, sort_keys=True, indent=2)
        )

    def read_json(self, name: str) -> Optional[Dict[str, Any]]:
        path = self.run_dir / name
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            return None


def _record_count(payload: Any) -> int:
    """A best-effort record count for the manifest (tuples count parts)."""
    if isinstance(payload, tuple):
        total = 0
        for part in payload:
            try:
                total += len(part)
            except TypeError:
                return UNSIZED
        return total
    try:
        return len(payload)
    except TypeError:
        return UNSIZED


__all__ = [
    "CHECKPOINT_CODECS",
    "STORE_SCHEMA_VERSION",
    "UNSIZED",
    "CheckpointError",
    "CheckpointMissingError",
    "CheckpointVersionError",
    "CheckpointCorruptionError",
    "CheckpointManifest",
    "CheckpointIssue",
    "CheckpointStore",
]
