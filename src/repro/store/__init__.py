"""Durable run store: crash-safe checkpoints and atomic file primitives.

See :mod:`repro.store.checkpoint` for the per-stage checkpoint store the
resilient runner persists completed stages into, and
:mod:`repro.store.atomic` for the write-temp/fsync/rename/fsync-dir
pattern everything in the store (and the JSONL event serializer) uses.
"""

from repro.store.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    fsync_directory,
)
from repro.store.checkpoint import (
    CHECKPOINT_CODECS,
    STORE_SCHEMA_VERSION,
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointIssue,
    CheckpointManifest,
    CheckpointMissingError,
    CheckpointStore,
    CheckpointVersionError,
)
from repro.store.stagecache import (
    CACHE_MISS,
    STAGE_CACHE_SCHEMA,
    StageCache,
    StageCacheManifest,
    stage_fingerprint,
)

__all__ = [
    "CACHE_MISS",
    "CHECKPOINT_CODECS",
    "STAGE_CACHE_SCHEMA",
    "STORE_SCHEMA_VERSION",
    "StageCache",
    "StageCacheManifest",
    "stage_fingerprint",
    "CheckpointCorruptionError",
    "CheckpointError",
    "CheckpointIssue",
    "CheckpointManifest",
    "CheckpointMissingError",
    "CheckpointStore",
    "CheckpointVersionError",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
]
