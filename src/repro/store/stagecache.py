"""Content-addressed cross-run stage cache.

Checkpoints (:mod:`repro.store.checkpoint`) make one *run directory*
resumable; they are keyed by stage name alone and die with the run. The
:class:`StageCache` is the cross-run complement: a directory — usually
shared by many runs — of stage outputs keyed by a **fingerprint** of
everything the output is a function of:

* the full scenario config (every field),
* the stage name,
* the shard count the observation stage fans out over,
* the capture codec feeding the detectors, and
* the store / columnar schema versions.

Because every pipeline stage is deterministic given those inputs (the
property the crash-recovery drills already pin down), a fingerprint match
means the cached payload is byte-identical to what a recompute would
produce — so a warm re-run can skip the observation stages entirely.
The cache is only consulted for fault-free plans
(:meth:`repro.faults.plan.FaultPlan.is_benign`): an injected fault makes
the output a function of the fault plan too, and such runs bypass the
cache in both directions.

Entries are written with the same atomic payload-then-manifest discipline
as checkpoints. A load verifies the manifest's *full* fingerprint (the
filename only carries a prefix), schema version, byte count and SHA-256
before unpickling; any mismatch — stale schema, truncated payload,
poisoned bytes, fingerprint collision on the prefix — demotes the entry
to a miss rather than an error, because the cache is an optimization and
recompute is always correct.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import time
from dataclasses import asdict, dataclass, is_dataclass
from pathlib import Path
from typing import Any, List, Optional, Tuple, Union

from repro.honeypot.columnar import REQUEST_COLUMNS_SCHEMA
from repro.log import get_logger
from repro.net.columnar import PACKET_COLUMNS_SCHEMA
from repro.obs.metrics import get_registry
from repro.store.atomic import atomic_write_bytes, atomic_write_text
from repro.store.checkpoint import STORE_SCHEMA_VERSION

log = get_logger("stagecache")

#: Bump when the cache entry layout (not the payloads) changes.
STAGE_CACHE_SCHEMA = 1

#: How many fingerprint hex digits go into the entry filename. The full
#: fingerprint is still verified from the manifest at load time.
FINGERPRINT_PREFIX = 16

#: Sentinel distinguishing "miss" from a cached ``None`` payload.
CACHE_MISS = object()


def stage_fingerprint(
    config: Any,
    stage: str,
    n_shards: int = 1,
    capture_codec: str = "object",
    detect_tier: str = "exact",
) -> str:
    """SHA-256 identity of one stage output.

    The fingerprint covers the scenario config (every dataclass field),
    the stage name, the shard fan-out, the capture codec, the detection
    tier, and the schema versions of the store and both columnar
    encodings — any change to any of them must miss the cache (a
    sketch-tier output must never be served to a columnar-tier run).
    Canonical JSON (sorted keys, no whitespace variance) keeps the
    digest stable across processes.
    """
    document = {
        "scenario": asdict(config) if is_dataclass(config) else dict(config),
        "stage": stage,
        "n_shards": n_shards,
        "capture_codec": capture_codec,
        "detect_tier": detect_tier,
        "store_schema": STORE_SCHEMA_VERSION,
        "cache_schema": STAGE_CACHE_SCHEMA,
        "packet_columns_schema": PACKET_COLUMNS_SCHEMA,
        "request_columns_schema": REQUEST_COLUMNS_SCHEMA,
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StageCacheManifest:
    """What must hold for a cache entry to be served."""

    stage: str
    fingerprint: str
    schema_version: int
    payload_bytes: int
    sha256: str
    created_ts: float = 0.0

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "StageCacheManifest":
        data = json.loads(text)
        return cls(
            stage=data["stage"],
            fingerprint=data["fingerprint"],
            schema_version=data["schema_version"],
            payload_bytes=data["payload_bytes"],
            sha256=data["sha256"],
            created_ts=data.get("created_ts", 0.0),
        )


class StageCache:
    """Fingerprint-keyed stage outputs shared across runs.

    ``get`` returns :data:`CACHE_MISS` on any problem — absent entry,
    fingerprint mismatch, schema skew, size/checksum failure, unpicklable
    payload — and the caller recomputes. ``put`` overwrites atomically,
    so concurrent writers of the same fingerprint converge on identical
    bytes.
    """

    def __init__(
        self, cache_dir: Union[str, Path], metrics: Optional[Any] = None
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        registry = metrics if metrics is not None else get_registry()
        self._m_hits = registry.counter(
            "stage_cache_hits_total",
            "stage outputs served from the cross-run cache",
            ("stage",),
        )
        self._m_misses = registry.counter(
            "stage_cache_misses_total",
            "stage cache lookups that fell through to compute",
            ("stage",),
        )
        self._m_bytes_read = registry.counter(
            "stage_cache_bytes_read_total",
            "payload bytes served from the stage cache",
        )
        self._m_bytes_written = registry.counter(
            "stage_cache_bytes_written_total",
            "payload bytes written into the stage cache",
        )

    # -- paths ----------------------------------------------------------------

    def _stem(self, stage: str, fingerprint: str) -> str:
        return f"{stage}.{fingerprint[:FINGERPRINT_PREFIX]}"

    def payload_path(self, stage: str, fingerprint: str) -> Path:
        return self.cache_dir / f"{self._stem(stage, fingerprint)}.pkl"

    def manifest_path(self, stage: str, fingerprint: str) -> Path:
        return self.cache_dir / (
            f"{self._stem(stage, fingerprint)}.manifest.json"
        )

    # -- access ---------------------------------------------------------------

    def get(self, stage: str, fingerprint: str) -> Any:
        """Verified lookup; :data:`CACHE_MISS` unless everything checks."""
        payload = self._load_verified(stage, fingerprint)
        if payload is CACHE_MISS:
            self._m_misses.inc(stage=stage)
        else:
            self._m_hits.inc(stage=stage)
        return payload

    def _load_verified(self, stage: str, fingerprint: str) -> Any:
        manifest_path = self.manifest_path(stage, fingerprint)
        if not manifest_path.exists():
            return CACHE_MISS
        try:
            manifest = StageCacheManifest.from_json(
                manifest_path.read_text(encoding="utf-8")
            )
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            log.warning(
                "cache entry rejected: unreadable manifest",
                stage=stage, error=str(exc),
            )
            return CACHE_MISS
        if manifest.schema_version != STAGE_CACHE_SCHEMA:
            log.warning(
                "cache entry rejected: schema skew",
                stage=stage, entry_schema=manifest.schema_version,
            )
            return CACHE_MISS
        if manifest.fingerprint != fingerprint:
            # The filename only carries a prefix; a different full
            # fingerprint means the entry belongs to another scenario
            # (or was poisoned) and must not be served.
            log.warning(
                "cache entry rejected: fingerprint mismatch",
                stage=stage,
                expected=fingerprint[:12],
                found=manifest.fingerprint[:12],
            )
            return CACHE_MISS
        payload_path = self.payload_path(stage, fingerprint)
        if not payload_path.exists():
            return CACHE_MISS
        data = payload_path.read_bytes()
        if len(data) != manifest.payload_bytes:
            log.warning(
                "cache entry rejected: size mismatch",
                stage=stage, bytes=len(data),
                expected=manifest.payload_bytes,
            )
            return CACHE_MISS
        if hashlib.sha256(data).hexdigest() != manifest.sha256:
            log.warning(
                "cache entry rejected: checksum mismatch", stage=stage
            )
            return CACHE_MISS
        try:
            payload = pickle.loads(data)
        except Exception as exc:  # matching checksum but broken payload
            # means the manifest was forged around it; still just a miss.
            log.warning(
                "cache entry rejected: does not unpickle",
                stage=stage, error=str(exc),
            )
            return CACHE_MISS
        self._m_bytes_read.inc(len(data))
        log.info(
            "stage served from cache",
            stage=stage, bytes=len(data), fingerprint=fingerprint[:12],
        )
        return payload

    def put(self, stage: str, fingerprint: str, payload: Any) -> None:
        """Store one stage output (payload first, manifest second)."""
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        manifest = StageCacheManifest(
            stage=stage,
            fingerprint=fingerprint,
            schema_version=STAGE_CACHE_SCHEMA,
            payload_bytes=len(data),
            sha256=hashlib.sha256(data).hexdigest(),
            created_ts=time.time(),
        )
        atomic_write_bytes(self.payload_path(stage, fingerprint), data)
        atomic_write_text(
            self.manifest_path(stage, fingerprint), manifest.to_json()
        )
        self._m_bytes_written.inc(len(data))
        log.debug(
            "stage cached",
            stage=stage, bytes=len(data), fingerprint=fingerprint[:12],
        )

    def entries(self) -> List[Tuple[str, str]]:
        """``(stage, fingerprint-prefix)`` pairs present in the cache."""
        pairs = []
        for path in sorted(self.cache_dir.glob("*.manifest.json")):
            stem = path.name[: -len(".manifest.json")]
            stage, _, prefix = stem.rpartition(".")
            if stage and prefix:
                pairs.append((stage, prefix))
        return pairs


__all__ = [
    "CACHE_MISS",
    "FINGERPRINT_PREFIX",
    "STAGE_CACHE_SCHEMA",
    "StageCache",
    "StageCacheManifest",
    "stage_fingerprint",
]
