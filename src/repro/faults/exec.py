"""Execution-layer fault injectors: hung, slow, crashed, poisoned workers.

The injectors in :mod:`repro.faults.injectors` degrade the *data* a feed
produces; these degrade the *execution* of the stage itself — the
failure modes the supervised executor (:mod:`repro.exec`) exists to
contain:

* ``hung``   — the worker stops making progress (sleeps effectively
  forever); only a deadline watchdog gets the run unstuck;
* ``slow``   — the worker takes ``delay`` extra seconds, long enough to
  trip a tight deadline but not a generous one;
* ``crash``  — the worker process dies without delivering a result
  (``os._exit`` in a forked child; a :class:`WorkerCrashError` where
  there is no separate process to kill);
* ``poison`` — the shard's input is deterministically unprocessable and
  raises :class:`PoisonShardError` on *every* attempt, the canonical
  persistent failure that must trip a circuit breaker.

An :class:`ExecFaultPlan` pins each fault to a (stage, shard, attempt)
coordinate so drills are exactly reproducible: "shard 1 of the honeypot
stage hangs on its first attempt" is a plan, not a probability.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

KIND_HUNG = "hung"
KIND_SLOW = "slow"
KIND_CRASH = "crash"
KIND_POISON = "poison"
ALL_KINDS = (KIND_HUNG, KIND_SLOW, KIND_CRASH, KIND_POISON)

#: "Forever" for a hung worker — far past any sane deadline, finite so a
#: drill without a watchdog still terminates eventually.
HUNG_SLEEP = 3600.0


class PoisonShardError(RuntimeError):
    """A shard whose input can never be processed, on any attempt."""


class WorkerCrashError(RuntimeError):
    """Stand-in for a worker death where no real process can be killed."""


@dataclass(frozen=True)
class ExecFault:
    """One execution fault pinned to a (stage, shard, attempt) coordinate."""

    kind: str
    stage: str
    #: Shard index the fault applies to; ``None`` means every shard
    #: (including the unsharded whole-stage task, which is shard 0).
    shard: Optional[int] = None
    #: The fault fires on attempts 1..attempts; the default 1 makes it
    #: transient (a retry succeeds). Poison shards ignore this and fire
    #: on every attempt — that is what poison *means*.
    attempts: int = 1
    #: Extra seconds for ``slow`` faults.
    delay: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(
                f"unknown exec fault kind: {self.kind!r} (kinds: {ALL_KINDS})"
            )
        if self.shard is not None and self.shard < 0:
            raise ValueError("shard index must be non-negative")
        if self.attempts < 1:
            raise ValueError("fault must fire on at least one attempt")
        if self.delay <= 0:
            raise ValueError("slow-fault delay must be positive")

    def matches(self, stage: str, shard: int, attempt: int) -> bool:
        if stage != self.stage:
            return False
        if self.shard is not None and shard != self.shard:
            return False
        if self.kind == KIND_POISON:
            return True
        return attempt <= self.attempts

    def describe(self) -> str:
        where = f"{self.stage}" + (
            f"[shard {self.shard}]" if self.shard is not None else ""
        )
        when = (
            "every attempt"
            if self.kind == KIND_POISON
            else f"attempt(s) 1..{self.attempts}"
        )
        extra = f", +{self.delay:.1f}s" if self.kind == KIND_SLOW else ""
        return f"{self.kind} @ {where} on {when}{extra}"


@dataclass(frozen=True)
class ExecFaultPlan:
    """A reproducible set of execution faults for one run."""

    faults: Tuple[ExecFault, ...] = ()

    @classmethod
    def none(cls) -> "ExecFaultPlan":
        return cls()

    @classmethod
    def single(cls, kind: str, stage: str, **kwargs) -> "ExecFaultPlan":
        return cls((ExecFault(kind=kind, stage=stage, **kwargs),))

    @classmethod
    def parse(cls, specs: Tuple[str, ...]) -> "ExecFaultPlan":
        """Parse CLI specs of the form ``kind:stage[:shard[:attempts]]``."""
        faults = []
        for spec in specs:
            parts = spec.split(":")
            if not 2 <= len(parts) <= 4:
                raise ValueError(
                    f"bad exec-fault spec {spec!r}; "
                    f"expected kind:stage[:shard[:attempts]]"
                )
            kind, stage = parts[0], parts[1]
            shard = int(parts[2]) if len(parts) > 2 and parts[2] != "*" else None
            attempts = int(parts[3]) if len(parts) > 3 else 1
            faults.append(
                ExecFault(kind=kind, stage=stage, shard=shard, attempts=attempts)
            )
        return cls(tuple(faults))

    def lookup(
        self, stage: str, shard: int, attempt: int
    ) -> Optional[ExecFault]:
        for fault in self.faults:
            if fault.matches(stage, shard, attempt):
                return fault
        return None

    def describe(self) -> str:
        if not self.faults:
            return "no execution faults"
        return "; ".join(fault.describe() for fault in self.faults)


def apply_exec_fault(fault: Optional[ExecFault]) -> None:
    """Enact a fault inside the worker; call at the top of a shard task.

    ``crash`` kills the current process outright when it runs in a
    forked worker (the supervisor sees a dead child and reports
    ``crashed``); where there is no separate process to kill (thread or
    serial mode) it raises :class:`WorkerCrashError` instead, because
    ``os._exit`` would take the whole interpreter down with it.
    """
    if fault is None:
        return
    if fault.kind == KIND_HUNG:
        time.sleep(HUNG_SLEEP)
    elif fault.kind == KIND_SLOW:
        time.sleep(fault.delay)
    elif fault.kind == KIND_CRASH:
        if multiprocessing.parent_process() is not None:
            os._exit(13)
        raise WorkerCrashError(
            f"injected worker crash in {fault.stage}"
        )
    elif fault.kind == KIND_POISON:
        raise PoisonShardError(
            f"poison shard: {fault.stage} shard "
            f"{'*' if fault.shard is None else fault.shard} is unprocessable"
        )


__all__ = [
    "ALL_KINDS",
    "ExecFault",
    "ExecFaultPlan",
    "HUNG_SLEEP",
    "KIND_CRASH",
    "KIND_HUNG",
    "KIND_POISON",
    "KIND_SLOW",
    "PoisonShardError",
    "WorkerCrashError",
    "apply_exec_fault",
]
