"""Fault injection: seeded plans, per-feed degraders, at-rest corruptors.

See :mod:`repro.faults.plan` for what can go wrong and when,
:mod:`repro.faults.injectors` for how a plan is applied to each feed,
and :mod:`repro.faults.fileio` for seeded corruption of serialized feeds
and checkpoints at rest (truncation, bit flips, schema drift, duplicated
records) — the inputs the validation/quarantine layer defends against.
:mod:`repro.faults.exec` injects execution-layer faults (hung, slow,
crashed, poisoned workers) that the supervised executor in
:mod:`repro.exec` must contain.
"""

from repro.faults.exec import (
    ExecFault,
    ExecFaultPlan,
    PoisonShardError,
    WorkerCrashError,
    apply_exec_fault,
)
from repro.faults.fileio import (
    drift_schema,
    duplicate_records,
    flip_bits,
    truncate_file,
)
from repro.faults.injectors import (
    DPSFaultInjector,
    FaultInjectorSet,
    HoneypotFaultInjector,
    OpenIntelFaultInjector,
    StreamFaultInjector,
    TelescopeFaultInjector,
)
from repro.faults.plan import (
    ALL_FEEDS,
    FEED_DPS,
    FEED_HONEYPOT,
    FEED_OPENINTEL,
    FEED_TELESCOPE,
    FaultPlan,
    FaultPlanConfig,
    OutageWindow,
)

__all__ = [
    "ALL_FEEDS",
    "FEED_DPS",
    "FEED_HONEYPOT",
    "FEED_OPENINTEL",
    "FEED_TELESCOPE",
    "FaultPlan",
    "FaultPlanConfig",
    "OutageWindow",
    "ExecFault",
    "ExecFaultPlan",
    "PoisonShardError",
    "WorkerCrashError",
    "apply_exec_fault",
    "FaultInjectorSet",
    "TelescopeFaultInjector",
    "HoneypotFaultInjector",
    "OpenIntelFaultInjector",
    "DPSFaultInjector",
    "StreamFaultInjector",
    "drift_schema",
    "duplicate_records",
    "flip_bits",
    "truncate_file",
]
