"""Fault injection: seeded plans and per-feed degraders.

See :mod:`repro.faults.plan` for what can go wrong and when, and
:mod:`repro.faults.injectors` for how a plan is applied to each feed.
"""

from repro.faults.injectors import (
    DPSFaultInjector,
    FaultInjectorSet,
    HoneypotFaultInjector,
    OpenIntelFaultInjector,
    StreamFaultInjector,
    TelescopeFaultInjector,
)
from repro.faults.plan import (
    ALL_FEEDS,
    FEED_DPS,
    FEED_HONEYPOT,
    FEED_OPENINTEL,
    FEED_TELESCOPE,
    FaultPlan,
    FaultPlanConfig,
    OutageWindow,
)

__all__ = [
    "ALL_FEEDS",
    "FEED_DPS",
    "FEED_HONEYPOT",
    "FEED_OPENINTEL",
    "FEED_TELESCOPE",
    "FaultPlan",
    "FaultPlanConfig",
    "OutageWindow",
    "FaultInjectorSet",
    "TelescopeFaultInjector",
    "HoneypotFaultInjector",
    "OpenIntelFaultInjector",
    "DPSFaultInjector",
    "StreamFaultInjector",
]
