"""Feed degraders: apply a :class:`~repro.faults.plan.FaultPlan` to data.

Each injector sits at the point where a feed's raw data enters the
pipeline and removes, corrupts or delays exactly what the plan says the
real-world failure would have removed, corrupted or delayed:

* telescope downtime drops packet batches before RSDoS detection (the
  attack's backscatter never reached a collector);
* honeypot churn drops request batches per instance (a down AmpPot logs
  nothing, but the rest of the fleet still sees the attack);
* OpenINTEL missed snapshots punch day-holes into the compiled hosting /
  mail / NS intervals and postpone first-seen dates;
* DPS record corruption drops or day-jitters usage records;
* stream delivery faults reorder a unified event stream the way late
  feeds would, within the fusion engine's one-day disorder tolerance.

Every injector counts what it removed so the
:class:`~repro.pipeline.quality.DataQualityReport` can state losses
instead of letting them pass silently.
"""

from __future__ import annotations

import bisect
from random import Random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.events import AttackEvent
from repro.dns.openintel import OpenIntelDataset
from repro.dps.detection import DPSUsage, DPSUsageDataset
from repro.faults.plan import DAY, FaultPlan, OutageWindow
from repro.honeypot.amppot import RequestBatch
from repro.net.packet import PacketBatch


def _in_windows(windows: Sequence[OutageWindow], ts: float) -> bool:
    return any(w.covers_ts(ts) for w in windows)


class TelescopeFaultInjector:
    """Drops packet batches captured during telescope downtime windows."""

    def __init__(self, plan: FaultPlan) -> None:
        self.windows = plan.telescope_outages
        self.dropped_batches = 0
        self.dropped_packets = 0

    def filter(self, batches: Iterable[PacketBatch]) -> List[PacketBatch]:
        kept: List[PacketBatch] = []
        for batch in batches:
            if _in_windows(self.windows, batch.timestamp):
                self.dropped_batches += 1
                self.dropped_packets += batch.count
            else:
                kept.append(batch)
        return kept


class HoneypotFaultInjector:
    """Drops request batches logged by instances while they were down."""

    def __init__(self, plan: FaultPlan) -> None:
        self.schedule: Dict[int, Tuple[OutageWindow, ...]] = (
            plan.honeypot_schedule()
        )
        self.dropped_batches = 0
        self.dropped_requests = 0

    def filter(self, batches: Iterable[RequestBatch]) -> List[RequestBatch]:
        kept: List[RequestBatch] = []
        for batch in batches:
            windows = self.schedule.get(batch.honeypot_id, ())
            if windows and _in_windows(windows, batch.timestamp):
                self.dropped_batches += 1
                self.dropped_requests += batch.count
            else:
                kept.append(batch)
        return kept


class OpenIntelFaultInjector:
    """Punches missed snapshot days out of a compiled OpenINTEL data set."""

    def __init__(self, plan: FaultPlan) -> None:
        self.missed_days: List[int] = sorted(plan.openintel_missed_days)
        self.n_days = plan.n_days
        self.dropped_interval_days = 0
        self.shifted_first_seen = 0
        self.dropped_domains = 0

    def degrade(self, dataset: OpenIntelDataset) -> OpenIntelDataset:
        if not self.missed_days:
            return dataset
        first_seen: Dict[str, int] = {}
        for domain, day in dataset.first_seen.items():
            shifted = self._next_observed_day(day)
            if shifted is None:
                self.dropped_domains += 1
                continue
            if shifted != day:
                self.shifted_first_seen += 1
            first_seen[domain] = shifted
        return OpenIntelDataset(
            n_days=dataset.n_days,
            zone_stats=dataset.zone_stats,
            hosting_intervals=self._split_all(dataset.hosting_intervals),
            first_seen=first_seen,
            total_web_sites=dataset.total_web_sites,
            mail_intervals=self._split_all(dataset.mail_intervals),
            ns_intervals=self._split_all(dataset.ns_intervals),
        )

    def _next_observed_day(self, day: int) -> Optional[int]:
        missed = set(self.missed_days)
        while day in missed:
            day += 1
        return day if day < self.n_days else None

    def _split_all(
        self, intervals: Iterable[Tuple[str, int, int, int]]
    ) -> List[Tuple[str, int, int, int]]:
        result: List[Tuple[str, int, int, int]] = []
        for name, ip, start, end in intervals:
            for sub_start, sub_end in self._split(start, end):
                result.append((name, ip, sub_start, sub_end))
        return result

    def _split(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Subintervals of [start, end) that exclude the missed days."""
        lo = bisect.bisect_left(self.missed_days, start)
        hi = bisect.bisect_left(self.missed_days, end)
        holes = self.missed_days[lo:hi]
        if not holes:
            return [(start, end)]
        self.dropped_interval_days += len(holes)
        pieces: List[Tuple[int, int]] = []
        cursor = start
        for hole in holes:
            if hole > cursor:
                pieces.append((cursor, hole))
            cursor = hole + 1
        if cursor < end:
            pieces.append((cursor, end))
        return pieces


class DPSFaultInjector:
    """Corrupts DPS-signature usage records: drop or day-jitter them."""

    #: Corrupted records split between outright loss and date corruption.
    DROP_SHARE = 0.5
    MAX_JITTER_DAYS = 14

    def __init__(self, plan: FaultPlan, seed: Optional[int] = None) -> None:
        self.rate = plan.dps_corruption_rate
        self.n_days = plan.n_days
        self._rng = Random(plan.seed * 1000003 + 11 if seed is None else seed)
        self.dropped_records = 0
        self.jittered_records = 0

    def corrupt(self, dataset: DPSUsageDataset) -> DPSUsageDataset:
        if self.rate <= 0.0:
            return dataset
        rng = self._rng
        kept: List[DPSUsage] = []
        for usage in dataset.usages:
            if rng.random() >= self.rate:
                kept.append(usage)
                continue
            if rng.random() < self.DROP_SHARE:
                self.dropped_records += 1
                continue
            jitter = rng.randint(1, self.MAX_JITTER_DAYS)
            if rng.random() < 0.5:
                jitter = -jitter
            day = min(max(usage.first_day + jitter, 0), self.n_days - 1)
            kept.append(
                DPSUsage(
                    domain=usage.domain,
                    provider=usage.provider,
                    first_day=day,
                )
            )
            self.jittered_records += 1
        return DPSUsageDataset(usages=kept, n_days=dataset.n_days)


class StreamFaultInjector:
    """Delays a fraction of a unified event stream (late feed delivery).

    Events keep their true timestamps; only the *delivery order* changes,
    the way a feed that syncs hours late hands the fusion engine slightly
    stale events. Delays are capped at the plan's ``stream_max_delay``,
    which must stay within :class:`~repro.core.streaming.StreamingFusion`'s
    one-day disorder tolerance for the stream to remain consumable.
    """

    def __init__(self, plan: FaultPlan, seed: Optional[int] = None) -> None:
        if plan.stream_max_delay >= DAY:
            raise ValueError(
                "stream delay must stay below the fusion one-day tolerance"
            )
        self.late_fraction = plan.stream_late_fraction
        self.max_delay = plan.stream_max_delay
        self._rng = Random(plan.seed * 1000003 + 13 if seed is None else seed)
        self.late_events = 0

    def deliver(self, events: Iterable[AttackEvent]) -> List[AttackEvent]:
        """Events in delivery order (late ones pushed back, none lost)."""
        rng = self._rng
        keyed: List[Tuple[float, int, AttackEvent]] = []
        for index, event in enumerate(events):
            delivery = event.start_ts
            if self.late_fraction and rng.random() < self.late_fraction:
                delivery += rng.uniform(0.0, self.max_delay)
                self.late_events += 1
            keyed.append((delivery, index, event))
        keyed.sort(key=lambda item: (item[0], item[1]))
        return [event for _, _, event in keyed]


class FaultInjectorSet:
    """All per-feed injectors for one plan, plus their loss counters."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.telescope = TelescopeFaultInjector(plan)
        self.honeypot = HoneypotFaultInjector(plan)
        self.openintel = OpenIntelFaultInjector(plan)
        self.dps = DPSFaultInjector(plan)
        self.stream = StreamFaultInjector(plan)

    def dropped_counts(self) -> Dict[str, int]:
        return {
            "telescope": self.telescope.dropped_batches,
            "honeypot": self.honeypot.dropped_batches,
            "openintel": self.openintel.dropped_interval_days,
            "dps": self.dps.dropped_records + self.dps.jittered_records,
        }

    #: Loss counters that must survive a crash for a resumed run's quality
    #: report to match the uninterrupted one: (attr path, counter name).
    _COUNTERS = (
        ("telescope", "dropped_batches"),
        ("telescope", "dropped_packets"),
        ("honeypot", "dropped_batches"),
        ("honeypot", "dropped_requests"),
        ("openintel", "dropped_interval_days"),
        ("openintel", "shifted_first_seen"),
        ("openintel", "dropped_domains"),
        ("dps", "dropped_records"),
        ("dps", "jittered_records"),
        ("stream", "late_events"),
    )

    def counters(self) -> Dict[str, int]:
        """Flat snapshot of every loss counter (JSON-serializable)."""
        return {
            f"{injector}.{name}": getattr(getattr(self, injector), name)
            for injector, name in self._COUNTERS
        }

    def restore_counters(self, snapshot: Dict[str, int]) -> None:
        """Restore counters from a :meth:`counters` snapshot (resume path).

        Unknown keys are ignored so old state files stay loadable.
        """
        for injector, name in self._COUNTERS:
            key = f"{injector}.{name}"
            if key in snapshot:
                setattr(getattr(self, injector), name, int(snapshot[key]))
