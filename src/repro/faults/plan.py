"""Seeded fault plans: *what* goes wrong, *when*, for each feed.

The paper's fusion framework assumes four healthy measurement feeds, but
the real infrastructures are lossy: the telescope has collection gaps,
AmpPot instances come and go over the two-year window, OpenINTEL can miss
a daily snapshot, and derived DPS-signature records can be corrupted in
transit. A :class:`FaultPlan` is a frozen, fully seeded description of one
such imperfect world — the same seed always produces the same plan, so a
degraded run is exactly as reproducible as a healthy one.

Plans are *descriptions only*; the machinery that applies them to a feed
lives in :mod:`repro.faults.injectors`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from random import Random
from typing import Dict, FrozenSet, Mapping, Tuple

DAY = 86400.0

#: Canonical feed names, in pipeline order.
FEED_TELESCOPE = "telescope"
FEED_HONEYPOT = "honeypot"
FEED_OPENINTEL = "openintel"
FEED_DPS = "dps"
ALL_FEEDS: Tuple[str, ...] = (
    FEED_TELESCOPE,
    FEED_HONEYPOT,
    FEED_OPENINTEL,
    FEED_DPS,
)

#: Sentinel end day for "down for good" windows. Attacks that *start*
#: inside the window can produce traffic past ``n_days``, so a total
#: outage must extend beyond the nominal window end.
OPEN_END = 10**9


@dataclass(frozen=True)
class OutageWindow:
    """A half-open [start_day, end_day) interval during which a sensor is down."""

    start_day: int
    end_day: int

    def __post_init__(self) -> None:
        if self.start_day < 0 or self.end_day <= self.start_day:
            raise ValueError("outage window must be non-empty and non-negative")

    @property
    def n_days(self) -> int:
        return self.end_day - self.start_day

    def covers_day(self, day: int) -> bool:
        return self.start_day <= day < self.end_day

    def covers_ts(self, ts: float) -> bool:
        return self.covers_day(int(ts // DAY))


@dataclass(frozen=True)
class FaultPlanConfig:
    """Knobs for generating a realistic mixed fault plan."""

    seed: int = 7
    n_days: int = 60
    n_honeypots: int = 24
    # Telescope: per-day probability a collection gap starts, and its length.
    telescope_outage_rate: float = 0.02
    telescope_max_outage_days: int = 3
    # Honeypot churn: per-instance per-day probability of going down, and
    # the maximum downtime once down (instances come back).
    honeypot_churn_rate: float = 0.01
    honeypot_max_downtime_days: int = 5
    # OpenINTEL: probability any given daily snapshot is missed.
    openintel_miss_rate: float = 0.03
    # DPS-signature records: fraction corrupted (dropped or day-jittered).
    dps_corruption_rate: float = 0.02
    # Streaming delivery: fraction of events delivered late and how late.
    stream_late_fraction: float = 0.05
    stream_max_delay: float = 6 * 3600.0
    # Injected transient stage failures: stage name -> number of attempts
    # that fail with TransientStageError before the stage succeeds.
    transient_failures: Mapping[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class FaultPlan:
    """One concrete, reproducible schedule of faults for a whole run."""

    seed: int
    n_days: int
    n_honeypots: int
    telescope_outages: Tuple[OutageWindow, ...] = ()
    # instance_id -> that instance's downtime windows.
    honeypot_outages: Tuple[Tuple[int, Tuple[OutageWindow, ...]], ...] = ()
    openintel_missed_days: FrozenSet[int] = frozenset()
    dps_corruption_rate: float = 0.0
    stream_late_fraction: float = 0.0
    stream_max_delay: float = 0.0
    transient_failures: Tuple[Tuple[str, int], ...] = ()

    # -- constructors ---------------------------------------------------------

    @classmethod
    def none(cls, n_days: int, n_honeypots: int = 24) -> "FaultPlan":
        """The fault-free plan: every feed healthy all window."""
        return cls(seed=0, n_days=n_days, n_honeypots=n_honeypots)

    @classmethod
    def generate(cls, config: FaultPlanConfig) -> "FaultPlan":
        """A realistic mixed plan, fully determined by ``config.seed``."""
        rng = Random(config.seed)
        telescope = tuple(
            _walk_outages(
                rng,
                config.n_days,
                config.telescope_outage_rate,
                config.telescope_max_outage_days,
            )
        )
        honeypots = []
        for instance_id in range(config.n_honeypots):
            windows = tuple(
                _walk_outages(
                    rng,
                    config.n_days,
                    config.honeypot_churn_rate,
                    config.honeypot_max_downtime_days,
                )
            )
            if windows:
                honeypots.append((instance_id, windows))
        missed = frozenset(
            day
            for day in range(config.n_days)
            if rng.random() < config.openintel_miss_rate
        )
        return cls(
            seed=config.seed,
            n_days=config.n_days,
            n_honeypots=config.n_honeypots,
            telescope_outages=telescope,
            honeypot_outages=tuple(honeypots),
            openintel_missed_days=missed,
            dps_corruption_rate=config.dps_corruption_rate,
            stream_late_fraction=config.stream_late_fraction,
            stream_max_delay=config.stream_max_delay,
            transient_failures=tuple(sorted(config.transient_failures.items())),
        )

    @classmethod
    def standard(
        cls, n_days: int, seed: int = 7, n_honeypots: int = 24
    ) -> "FaultPlan":
        """The benchmark-standard mixed plan (defaults of the config)."""
        return cls.generate(
            FaultPlanConfig(seed=seed, n_days=n_days, n_honeypots=n_honeypots)
        )

    @classmethod
    def feed_down(
        cls, feed: str, n_days: int, n_honeypots: int = 24
    ) -> "FaultPlan":
        """A plan in which one feed is down for the entire window."""
        whole = (OutageWindow(0, OPEN_END),)
        base = cls(seed=0, n_days=n_days, n_honeypots=n_honeypots)
        if feed == FEED_TELESCOPE:
            return replace(base, telescope_outages=whole)
        if feed == FEED_HONEYPOT:
            return replace(
                base,
                honeypot_outages=tuple(
                    (i, whole) for i in range(n_honeypots)
                ),
            )
        if feed == FEED_OPENINTEL:
            return replace(
                base, openintel_missed_days=frozenset(range(n_days))
            )
        if feed == FEED_DPS:
            return replace(base, dps_corruption_rate=1.0)
        raise ValueError(f"unknown feed: {feed!r} (feeds: {ALL_FEEDS})")

    # -- views ----------------------------------------------------------------

    def honeypot_schedule(self) -> Dict[int, Tuple[OutageWindow, ...]]:
        return dict(self.honeypot_outages)

    def telescope_outage_days(self) -> FrozenSet[int]:
        """Days with telescope collection gaps — feed these to
        :class:`~repro.core.streaming.StreamingFusion` as ``outage_days``
        so post-outage baselines stay sane."""
        days = set()
        for window in self.telescope_outages:
            days.update(
                range(window.start_day, min(window.end_day, self.n_days))
            )
        return frozenset(days)

    def transient_failure_counts(self) -> Dict[str, int]:
        return dict(self.transient_failures)

    def is_benign(self) -> bool:
        """True when the plan injects nothing at all.

        A benign plan means every stage output (and every attempt count
        in the quality report) matches a fault-free run, so stage outputs
        are pure functions of the scenario config — the precondition for
        serving them from the cross-run stage cache.
        """
        return (
            not self.telescope_outages
            and not self.honeypot_outages
            and not self.openintel_missed_days
            and self.dps_corruption_rate == 0.0
            and self.stream_late_fraction == 0.0
            and not self.transient_failures
        )

    def telescope_uptime(self) -> float:
        down = sum(w.n_days for w in self.telescope_outages)
        return 1.0 - min(down, self.n_days) / self.n_days

    def honeypot_uptime(self) -> float:
        """Mean up-fraction across the fleet (healthy instances count 1.0)."""
        if self.n_honeypots <= 0:
            return 1.0
        total_down = 0
        for _, windows in self.honeypot_outages:
            total_down += min(
                sum(w.n_days for w in windows), self.n_days
            )
        return 1.0 - total_down / (self.n_honeypots * self.n_days)

    def openintel_uptime(self) -> float:
        return 1.0 - len(self.openintel_missed_days) / self.n_days

    def dps_uptime(self) -> float:
        return 1.0 - self.dps_corruption_rate

    def uptime(self, feed: str) -> float:
        return {
            FEED_TELESCOPE: self.telescope_uptime,
            FEED_HONEYPOT: self.honeypot_uptime,
            FEED_OPENINTEL: self.openintel_uptime,
            FEED_DPS: self.dps_uptime,
        }[feed]()

    def describe(self) -> str:
        """A deterministic one-plan summary (no wall-clock content)."""
        lines = [
            f"fault plan (seed={self.seed}, {self.n_days} days)",
            f"  telescope: {len(self.telescope_outages)} outage(s), "
            f"uptime {self.telescope_uptime():.1%}",
            f"  honeypot:  {len(self.honeypot_outages)}/{self.n_honeypots} "
            f"instance(s) with churn, fleet uptime {self.honeypot_uptime():.1%}",
            f"  openintel: {len(self.openintel_missed_days)} missed "
            f"snapshot day(s), uptime {self.openintel_uptime():.1%}",
            f"  dps:       corruption rate {self.dps_corruption_rate:.1%}",
        ]
        if self.stream_late_fraction:
            lines.append(
                f"  stream:    {self.stream_late_fraction:.1%} of events "
                f"late by up to {self.stream_max_delay / 3600.0:.1f} h"
            )
        if self.transient_failures:
            parts = ", ".join(
                f"{name}×{count}" for name, count in self.transient_failures
            )
            lines.append(f"  transient stage failures: {parts}")
        return "\n".join(lines)


def _walk_outages(rng: Random, n_days: int, rate: float, max_len: int):
    """Walk the window day by day, opening geometric-ish outage windows."""
    day = 0
    while day < n_days:
        if rng.random() < rate:
            length = rng.randint(1, max(1, max_len))
            end = min(day + length, n_days)
            yield OutageWindow(day, end)
            day = end
        else:
            day += 1
