"""File-level corruption injectors for serialized feeds and checkpoints.

The feed injectors in :mod:`repro.faults.injectors` degrade data *inside*
a healthy process; these degrade data *at rest*, the way a crashed
writer, a bad disk, or a drifting upstream producer would, so the
validation/quarantine layer in :mod:`repro.pipeline.datasets` and the
checksum verification in :mod:`repro.store.checkpoint` can be exercised
deterministically:

* :func:`truncate_file` — cut the tail off (a crash mid-append), usually
  leaving a half-written final record;
* :func:`flip_bits` — flip single bits at seeded offsets (media rot);
* :func:`drift_schema` — rename or drop a required field in a seeded
  subset of JSONL records (an upstream producer changed its schema);
* :func:`duplicate_records` — re-append a seeded subset of lines (an
  at-least-once delivery pipeline re-sent a batch).

Everything is driven by an explicit seed: the same call on the same file
always produces the same corruption, so a failing quarantine test is
replayable from two integers like every other fault in this package.
"""

from __future__ import annotations

import json
from pathlib import Path
from random import Random
from typing import List, Optional, Union

PathLike = Union[str, Path]


def truncate_file(path: PathLike, keep_fraction: float = 0.5) -> int:
    """Truncate a file to *keep_fraction* of its bytes; returns bytes cut.

    The cut lands wherever the byte math says — usually mid-record, which
    is exactly the shape a crashed (non-atomic) writer leaves behind.
    """
    if not 0.0 <= keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be within [0, 1]")
    path = Path(path)
    size = path.stat().st_size
    keep = int(size * keep_fraction)
    with open(path, "rb+") as handle:
        handle.truncate(keep)
    return size - keep


def flip_bits(path: PathLike, seed: int, n_flips: int = 1) -> List[int]:
    """Flip *n_flips* single bits at seeded offsets; returns the offsets."""
    if n_flips < 1:
        raise ValueError("need at least one bit flip")
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot corrupt empty file: {path}")
    rng = Random(seed)
    offsets = sorted(
        rng.sample(range(len(data)), min(n_flips, len(data)))
    )
    for offset in offsets:
        data[offset] ^= 1 << rng.randint(0, 7)
    path.write_bytes(bytes(data))
    return offsets


def drift_schema(
    path: PathLike,
    seed: int,
    fraction: float = 0.2,
    field: str = "target",
    rename_to: Optional[str] = "victim",
) -> int:
    """Rename (or drop) a required field in a seeded subset of records.

    Models an upstream producer that changed its schema mid-stream:
    affected records still parse as JSON but no longer validate, so they
    must land in quarantine with a ``missing-field:...`` reason code.
    Returns the number of drifted records.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    path = Path(path)
    rng = Random(seed)
    drifted = 0
    lines_out: List[str] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.strip() and rng.random() < fraction:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                lines_out.append(line)
                continue
            if isinstance(record, dict) and field in record:
                value = record.pop(field)
                if rename_to is not None:
                    record[rename_to] = value
                line = json.dumps(record)
                drifted += 1
        lines_out.append(line)
    path.write_text("\n".join(lines_out) + "\n", encoding="utf-8")
    return drifted


def duplicate_records(
    path: PathLike, seed: int, fraction: float = 0.1
) -> int:
    """Re-append a seeded subset of lines (at-least-once redelivery).

    Returns the number of duplicated records appended at the end of the
    file, in original order — the way a re-sent batch arrives after the
    records it repeats.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    path = Path(path)
    rng = Random(seed)
    lines = [
        line
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    repeats = [line for line in lines if rng.random() < fraction]
    if repeats:
        with open(path, "a", encoding="utf-8") as handle:
            for line in repeats:
                handle.write(line + "\n")
    return len(repeats)


__all__ = [
    "drift_schema",
    "duplicate_records",
    "flip_bits",
    "truncate_file",
]
