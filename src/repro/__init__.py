"""repro: a reproduction of "Millions of Targets Under Attack" (IMC 2017).

A macroscopic characterization framework for the DoS ecosystem, built on
simulated equivalents of four global measurement infrastructures: a /8
network telescope (randomly spoofed attacks via backscatter), an AmpPot
honeypot fleet (reflection & amplification attacks), an OpenINTEL-style
active DNS platform (Web-site-to-IP mapping), and a DNS-derived DDoS
Protection Service adoption data set.

Quickstart::

    from repro import ScenarioConfig, run_simulation

    result = run_simulation(ScenarioConfig.small())
    for row in result.fused.summary_rows():
        print(row)
"""

from repro.core.events import (
    AttackDataset,
    AttackEvent,
    SOURCE_HONEYPOT,
    SOURCE_TELESCOPE,
)
from repro.core.fusion import FusedDataset
from repro.pipeline.config import ScenarioConfig
from repro.pipeline.simulation import SimulationResult, run_simulation

__version__ = "1.0.0"

__all__ = [
    "AttackDataset",
    "AttackEvent",
    "SOURCE_HONEYPOT",
    "SOURCE_TELESCOPE",
    "FusedDataset",
    "ScenarioConfig",
    "SimulationResult",
    "run_simulation",
    "__version__",
]
