"""Figure 9: attack-frequency CDFs, all vs migrating Web sites."""

import pytest

from repro.core.migration import MigrationAnalysis
from repro.core.report import render_table


@pytest.fixture(scope="module")
def migration(sim, histories, intensity_model):
    return MigrationAnalysis(
        histories, sim.dps_usage.first_day_by_domain(), intensity_model
    )


def test_fig9_attack_frequency(benchmark, migration, write_report):
    def compute():
        return (
            migration.attack_frequency_cdf_all(),
            migration.attack_frequency_cdf_migrating(),
            migration.repetition_effect(threshold=5),
        )

    all_cdf, migrating_cdf, (all_over, migrating_over) = benchmark(compute)
    rows = [
        ["attacked >1 time, all sites",
         f"{1 - all_cdf.fraction_at_or_below(1):.1%}"],
        ["attacked >5 times, all sites", f"{all_over:.2%}"],
        ["attacked >5 times, migrating sites", f"{migrating_over:.2%}"],
    ]
    write_report(
        "fig9",
        render_table(["statistic", "value"], rows,
                     title="Figure 9: attack frequency, all vs migrating"),
    )
    # Paper: 7.65% of all attacked sites see >5 attacks vs 2.17% of
    # migrating sites — repetition is not what drives migration. The
    # reproduction asserts the weak form: migrating sites are not
    # dramatically more repeat-attacked.
    assert migrating_over < all_over + 0.25
    # A significant fraction of sites is attacked more than once (~14%).
    assert 1 - all_cdf.fraction_at_or_below(1) > 0.05
