"""Figure 7: Web sites on attacked IPs over time (all and medium+)."""

from repro.core.report import render_table
from repro.core.webmap import sites_alive_per_day


def test_fig7_daily_affected_sites(
    benchmark, sim, impact, intensity_model, write_report
):
    alive = sites_alive_per_day(sim.openintel.first_seen, sim.config.n_days)

    def compute():
        all_counts, all_fractions = impact.daily_affected(
            sim.fused.combined.events, sim.config.n_days, alive
        )
        medium = intensity_model.medium_plus(sim.fused.combined.events)
        med_counts, med_fractions = impact.daily_affected(
            medium, sim.config.n_days, alive
        )
        return all_counts, all_fractions, med_counts, med_fractions

    all_counts, all_fractions, med_counts, med_fractions = benchmark(compute)
    rows = [
        ["sites/day (mean), all attacks", f"{all_counts.mean():.0f}"],
        ["share of namespace (mean), all", f"{all_fractions.mean():.2%}"],
        ["share of namespace (max), all", f"{all_fractions.max():.2%}"],
        ["sites/day (mean), medium+", f"{med_counts.mean():.0f}"],
        ["share of namespace (mean), medium+", f"{med_fractions.mean():.2%}"],
        ["peak day (all)", int(all_counts.argmax())],
    ]
    write_report(
        "fig7", render_table(["statistic", "value"], rows,
                             title="Figure 7: Web sites on attacked IPs")
    )
    # Paper: ~3% of all sites involved daily; 1.3% for medium+; discernible
    # peaks reaching >10%. The medium+ series is a strict subset.
    assert 0.002 < all_fractions.mean() < 0.35
    assert med_fractions.mean() < all_fractions.mean()
    assert (med_counts <= all_counts).all()
    assert all_fractions.max() > 1.4 * all_fractions.mean()  # visible peaks


def test_fig7_unique_sites_over_window(benchmark, sim, impact, write_report):
    affected = benchmark(
        impact.unique_affected_sites, sim.fused.combined.events
    )
    share = len(affected) / sim.openintel.total_web_sites
    write_report(
        "fig7_window",
        f"unique Web sites on attacked IPs over the whole window: "
        f"{len(affected)} of {sim.openintel.total_web_sites} ({share:.0%}; "
        f"paper: 64%)",
    )
    assert 0.45 < share < 0.85
