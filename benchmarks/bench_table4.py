"""Table 4: per-country target rankings for both data sets."""

from repro.core.rankings import country_rank_of, country_ranking
from repro.core.report import render_table4


def test_table4_country_rankings(benchmark, sim, write_report):
    def compute():
        return (
            country_ranking(sim.fused.telescope, top_n=5),
            country_ranking(sim.fused.honeypot, top_n=5),
        )

    telescope, honeypot = benchmark(compute)
    text = (
        render_table4(telescope, "Telescope")
        + "\n\n"
        + render_table4(honeypot, "Honeypot")
    )
    write_report("table4", text)
    # US leads both rankings (25.56% / 29.50% in the paper), China near top.
    assert telescope[0].key == "US"
    assert honeypot[0].key == "US"
    assert 0.15 < telescope[0].share < 0.6
    assert "CN" in [e.key for e in telescope[:3]]
    # The paper's anomaly: Japan far below its address-space rank (3rd).
    jp_rank = country_rank_of(sim.fused.combined, "JP")
    assert jp_rank is None or jp_rank > 5
    write_report(
        "table4_anomalies",
        f"Japan rank by unique targets: {jp_rank} "
        f"(address-space rank: 3; paper observed 25th/14th)",
    )
