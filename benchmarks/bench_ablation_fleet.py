"""Ablation: honeypot fleet size vs. attack coverage.

The AmpPot paper argues 24 attractive honeypots suffice to observe most
reflection attacks on the Internet. This bench measures, on identical
ground truth, the fraction of reflection attacks that at least one fleet
member logs — coverage should saturate well before 24 instances.
"""

import pytest

from repro.attacks.attacker import ATTACK_REFLECTION
from repro.core.report import render_table
from repro.honeypot.amppot import AmpPotFleet, FleetConfig
from repro.honeypot.detection import HoneypotDetector

FLEET_SIZES = (2, 6, 12, 24)


@pytest.fixture(scope="module")
def reflection_truth(sim):
    return [a for a in sim.ground_truth if a.kind == ATTACK_REFLECTION]


def test_ablation_fleet_size(benchmark, sim, reflection_truth, write_report):
    def run_all():
        coverage = {}
        for size in FLEET_SIZES:
            fleet = AmpPotFleet(
                FleetConfig(seed=sim.config.fleet_config().seed,
                            n_instances=size)
            )
            log = fleet.capture(reflection_truth)
            events = list(
                HoneypotDetector(
                    sim.config.honeypot_detection_config()
                ).run(log)
            )
            observed = {(e.victim, e.protocol) for e in events}
            truth = {
                (a.target, a.reflector_protocol) for a in reflection_truth
            }
            coverage[size] = len(observed & truth) / len(truth)
        return coverage

    coverage = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [size, f"{fraction:.1%}"] for size, fraction in coverage.items()
    ]
    write_report(
        "ablation_fleet",
        render_table(
            ["fleet size", "attack coverage"],
            rows,
            title="Ablation: honeypot fleet size (AmpPot's '24 is enough')",
        ),
    )
    # Coverage grows with fleet size and saturates: 24 instances miss
    # little, and most of the benefit arrives well before that.
    assert coverage[2] < coverage[24]
    assert coverage[24] > 0.85
    assert coverage[12] > 0.95 * coverage[24]
