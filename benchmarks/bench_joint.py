"""Section 4's joint-attack study: simultaneous spoofed + reflection."""

from repro.core.ports import port_cardinality
from repro.core.rankings import reflection_protocol_distribution
from repro.core.report import render_table


def test_joint_attack_analysis(benchmark, sim, write_report):
    analysis = benchmark(sim.fused.joint_analysis)
    overall_single = port_cardinality(sim.fused.telescope).single_fraction
    overall_ntp = next(
        e.share
        for e in reflection_protocol_distribution(sim.fused.honeypot)
        if e.key == "NTP"
    )
    rows = [
        ["shared targets", analysis.n_shared_targets],
        ["simultaneously attacked targets", analysis.n_joint_targets],
        ["joint single-port fraction", f"{analysis.single_port_fraction:.1%}"],
        ["overall single-port fraction", f"{overall_single:.1%}"],
        ["joint UDP on 27015", f"{analysis.udp_27015_fraction:.1%}"],
        ["joint NTP share",
         f"{analysis.reflection_protocol_shares.get('NTP', 0.0):.1%}"],
        ["overall NTP share", f"{overall_ntp:.1%}"],
        ["top joint ASNs",
         ", ".join(f"AS{a} {s:.1%}" for a, s in analysis.top_asns[:3] if a)],
        ["top joint countries",
         ", ".join(f"{c} {s:.1%}" for c, s in analysis.top_countries[:4])],
    ]
    write_report(
        "joint",
        render_table(["statistic", "value"], rows,
                     title="Joint attacks (Section 4)"),
    )
    # Paper: 282k shared targets, 137k simultaneous; joint direct attacks
    # are single-port 77.1% (vs 60.6% overall) with 27015/UDP at 53%;
    # NTP rises to 47.0% among joint reflection attacks.
    assert 0 < analysis.n_joint_targets <= analysis.n_shared_targets
    assert analysis.single_port_fraction > overall_single
    assert analysis.udp_27015_fraction > 0.25
    assert analysis.reflection_protocol_shares.get("NTP", 0.0) > overall_ntp
