"""Ablation: targeting bias is what produces the Table 4 anomalies.

The paper observes that per-country target rankings mostly follow address
space usage, with exceptions (Japan far below its space rank, Russia and
France above). In the reproduction that deviation is injected by the
scheduler's country-bias rejection sampling — this bench re-runs the same
schedule with the bias disabled and shows Japan climbing back toward its
space-usage rank, validating that geography alone does not explain the
anomaly.
"""

from collections import Counter

from repro.attacks.schedule import AttackSchedule, ScheduleConfig, TargetPools
from repro.core.report import render_table


def _japan_rank(attacks, geo) -> int:
    """1-based rank of JP by unique ground-truth targets."""
    country_by_target = {}
    for attack in attacks:
        country_by_target.setdefault(attack.target, geo.country(attack.target))
    counts = Counter(country_by_target.values())
    for rank, (country, _) in enumerate(counts.most_common(), start=1):
        if country == "JP":
            return rank
    return len(counts) + 1


def test_ablation_country_bias(benchmark, sim, write_report):
    base = sim.config.schedule_config()
    pools = TargetPools.build(
        sim.topology,
        sim.ecosystem,
        self_hosted_web_ips=[
            ip
            for zone in sim.zones
            for domain in zone.domains
            if domain.has_www and domain.states()[0].hoster is None
            for ip in (domain.states()[0].ip,)
        ],
    )

    def run_both():
        from dataclasses import replace

        biased = AttackSchedule(pools, sim.topology.geo, base).generate()
        unbiased_config = replace(base, country_bias={})
        unbiased = AttackSchedule(
            pools, sim.topology.geo, unbiased_config
        ).generate()
        return (
            _japan_rank(biased, sim.topology.geo),
            _japan_rank(unbiased, sim.topology.geo),
        )

    biased_rank, unbiased_rank = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    write_report(
        "ablation_bias",
        render_table(
            ["variant", "Japan rank by unique targets"],
            [
                ["targeting bias on (paper anomaly)", biased_rank],
                ["targeting bias off", unbiased_rank],
                ["address-space usage rank", 3],
            ],
            title="Ablation: country targeting bias (Table 4 anomaly)",
        ),
    )
    # With the bias removed Japan moves up the ranking, toward (though not
    # necessarily exactly at) its address-space position.
    assert unbiased_rank < biased_rank
    assert biased_rank > 5
