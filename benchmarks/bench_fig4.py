"""Figure 4: honeypot intensity CDFs, overall and per reflector protocol."""

from repro.core.distributions import per_protocol_intensity_cdfs
from repro.core.report import render_intensity_cdf


def test_fig4_honeypot_intensity(benchmark, sim, write_report):
    cdfs = benchmark(per_protocol_intensity_cdfs, sim.fused.honeypot.events)
    text = "\n\n".join(
        render_intensity_cdf(cdf, f"Honeypot {label} (Figure 4)")
        for label, cdf in cdfs.items()
    )
    write_report("fig4", text)
    # Paper: overall mean 413 / median 77 requests/s; the top five
    # protocols all appear; NTP reaches the highest request rates.
    assert "Overall" in cdfs and "NTP" in cdfs
    overall = cdfs["Overall"]
    assert 20 < overall.median < 300
    assert overall.mean > overall.median
    assert cdfs["NTP"].quantile(0.95) > cdfs["Overall"].quantile(0.9)
    for protocol in ("DNS", "CharGen"):
        assert protocol in cdfs
