"""Checkpoint store throughput: the price of durability.

Not a paper table — these benches characterize the reproduction itself:
how fast a stage payload round-trips through the durable checkpoint
store (pickle + checksum + fsync on save, checksum verification on
load), and what tolerant record validation adds on top of a plain JSONL
read. Rendered numbers land in ``benchmarks/out/store.txt`` so the
durability overhead is tracked across revisions.
"""

import time

import pytest

from bench_util import write_bench_json
from repro.pipeline.datasets import read_events_jsonl, save_events_jsonl
from repro.store import CheckpointStore


@pytest.fixture(scope="module")
def events(sim):
    return sim.fused.combined.events


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("bench_store")


def test_checkpoint_save_throughput(benchmark, events, run_dir, write_report):
    store = CheckpointStore(run_dir / "save")

    manifest = benchmark(lambda: store.save("events", events))
    assert manifest.record_count == len(events)
    mb = manifest.payload_bytes / 1e6
    benchmark.extra_info["records"] = manifest.record_count
    benchmark.extra_info["payload_mb"] = round(mb, 2)
    write_report(
        "store",
        f"checkpoint payload: {manifest.record_count} events, "
        f"{mb:.2f} MB (sha256 {manifest.sha256[:12]}…)",
    )
    start = time.perf_counter()
    store.save("events", events)
    wall = time.perf_counter() - start
    write_bench_json(
        "store",
        params={
            "records": manifest.record_count,
            "payload_mb": round(mb, 3),
        },
        wall_s=wall,
        events_per_s=manifest.record_count / wall if wall else None,
    )


def test_checkpoint_load_throughput(benchmark, events, run_dir):
    store = CheckpointStore(run_dir / "load")
    store.save("events", events)

    loaded = benchmark(lambda: store.load("events"))
    assert loaded == events


def test_validated_feed_read_throughput(benchmark, events, run_dir):
    path = run_dir / "events.jsonl"
    save_events_jsonl(events, path)

    def run():
        loaded, report = read_events_jsonl(path)
        return len(loaded), report.rejected

    loaded, rejected = benchmark(run)
    assert loaded == len(events)
    assert rejected == 0
