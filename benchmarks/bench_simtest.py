"""Throughput of the deterministic cluster simulation harness.

The simulation's value scales with how many seeded fault schedules a CI
budget can explore, so the headline number is *seeds per minute* for the
default three-node spec — a full run each: schedule generation, virtual
cluster with WAL-shipping replication, the settle phase and all three
oracles (durability, digest-vs-replay, single-writer-per-epoch). A
second arm measures shrink cost on a known failing trace (the committed
``primary-rewind`` corpus bug, re-introduced by disabling the WAL fsync
barrier) since minimization is the expensive step when a sweep does
fail.

Results land in ``benchmarks/out/simtest.json``.
"""

import json
import time
from pathlib import Path

from bench_util import write_bench_json
from repro.serve import wal as walmod
from repro.simtest import default_spec, run_sim
from repro.simtest.shrink import shrink_trace

SWEEP_SEEDS = 40
SWEEP_STEPS = 60
NODES = 3


def bench_sweep():
    config = default_spec(nodes=NODES, steps=SWEEP_STEPS)
    ops_total = 0
    violations = 0
    start = time.perf_counter()
    for seed in range(SWEEP_SEEDS):
        trace = run_sim(seed, config)
        ops_total += len(trace["ops"])
        violations += len(trace["violations"])
    wall = time.perf_counter() - start
    return wall, ops_total, violations


def bench_shrink():
    """Shrink cost with the fsync-barrier fix temporarily disabled."""
    real_flush = walmod.WriteAheadLog.flush
    walmod.WriteAheadLog.flush = lambda self: None
    try:
        config = default_spec(nodes=NODES, steps=SWEEP_STEPS)
        failing = run_sim(0, config)
        assert failing["violations"], "expected the re-introduced bug to fail"
        start = time.perf_counter()
        minimized, runs = shrink_trace(failing, max_runs=300)
        wall = time.perf_counter() - start
    finally:
        walmod.WriteAheadLog.flush = real_flush
    return wall, runs, len(failing["ops"]), len(minimized["ops"])


def main():
    sweep_wall, ops_total, violations = bench_sweep()
    seeds_per_min = SWEEP_SEEDS / sweep_wall * 60.0
    ops_per_s = ops_total / sweep_wall
    shrink_wall, shrink_runs, ops_before, ops_after = bench_shrink()

    print(
        f"sweep: {SWEEP_SEEDS} seeds x {SWEEP_STEPS} steps in "
        f"{sweep_wall:.2f}s = {seeds_per_min:.0f} seeds/min "
        f"({ops_per_s:.0f} ops/s), {violations} violations"
    )
    print(
        f"shrink: {ops_before} -> {ops_after} ops in {shrink_runs} runs, "
        f"{shrink_wall:.2f}s"
    )

    path = write_bench_json(
        "simtest",
        params={
            "seeds": SWEEP_SEEDS,
            "steps": SWEEP_STEPS,
            "nodes": NODES,
        },
        wall_s=sweep_wall,
        events_per_s=ops_per_s,
        extra={
            "seeds_per_min": round(seeds_per_min, 1),
            "sweep_violations": violations,
            "shrink_wall_s": round(shrink_wall, 3),
            "shrink_runs": shrink_runs,
            "shrink_ops_before": ops_before,
            "shrink_ops_after": ops_after,
        },
    )
    print(f"wrote {path}")
    assert violations == 0, "sweep must stay violation-free"


if __name__ == "__main__":
    main()
