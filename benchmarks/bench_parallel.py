"""Parallel execution: sharded wall-clock vs. the serial pipeline.

Runs the bench scenario through the resilient runner serially and with
the supervised executor at 1/2/4/8 workers (shards = workers), recording
wall-clock per configuration and asserting the tentpole invariant along
the way: every sharded run's fused event list is identical to the serial
run's. The rendered comparison lands in ``benchmarks/out/parallel.txt``.

Honesty note baked into the report: on a single-core container the
sharded runs cannot beat serial — fork/IPC overhead dominates — so the
numbers are a *cost ceiling* of supervision, not a speedup claim. On
multi-core hosts the same bench shows the scaling.
"""

import os
import time

from bench_util import write_bench_json
from repro.exec.pool import ExecConfig
from repro.pipeline.runner import run_resilient

WORKER_COUNTS = (1, 2, 4, 8)


def test_parallel_scaling(benchmark, bench_config, write_report):
    timings = []

    def timed_run(exec_config=None):
        start = time.perf_counter()
        result = run_resilient(
            bench_config, exec_config=exec_config, sleep=lambda _d: None
        )
        return time.perf_counter() - start, result

    serial_elapsed, serial = benchmark.pedantic(
        lambda: timed_run(None), rounds=1, iterations=1
    )
    reference = serial.fused.combined.events
    timings.append(("serial", serial_elapsed))

    for workers in WORKER_COUNTS:
        elapsed, result = timed_run(
            ExecConfig(workers=workers, shards=workers)
        )
        # The acceptance criterion: sharding must never change output.
        assert result.fused.combined.events == reference, (
            f"sharded run ({workers} workers) diverged from serial"
        )
        timings.append((f"{workers} worker(s)", elapsed))

    cores = os.cpu_count() or 1
    lines = [
        "Parallel execution: wall-clock per configuration",
        f"(host cores: {cores}; shards = workers; "
        f"{len(reference)} fused events, identical in every run)",
        "",
        f"{'configuration':<14} {'seconds':>8} {'vs serial':>10}",
    ]
    for name, elapsed in timings:
        ratio = elapsed / serial_elapsed if serial_elapsed else float("nan")
        lines.append(f"{name:<14} {elapsed:>8.2f} {ratio:>9.2f}x")
    if cores == 1:
        lines.append("")
        lines.append(
            "single-core host: these are supervision cost ceilings, "
            "not speedups"
        )
    write_report("parallel", "\n".join(lines))
    write_bench_json(
        "parallel",
        params={
            "cores": cores,
            "worker_counts": list(WORKER_COUNTS),
            "fused_events": len(reference),
        },
        wall_s=serial_elapsed,
        events_per_s=(
            len(reference) / serial_elapsed if serial_elapsed else None
        ),
        extra={
            "timings_s": {
                name: round(elapsed, 6) for name, elapsed in timings
            }
        },
    )
    benchmark.extra_info["cores"] = cores
    for name, elapsed in timings:
        benchmark.extra_info[name] = round(elapsed, 2)
