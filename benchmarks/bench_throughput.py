"""Substrate throughput: reference vs. fast path for each hot loop.

Not a paper table — these benches characterize the reproduction itself.
Each measured substrate runs twice over identical input:

* ``rsdos``          — object batches + full-scan flow expiry (the seed
                       behavior) vs. columnar batches + heap expiry
* ``rsdos_sketch``   — the columnar tier vs. the sketch tier
                       (heavy-dict + count-min/HLL engine); reference
                       here is the *columnar* fast path, so the speedup
                       reads "sketch over exact-columnar"
* ``honeypot``       — object request batches + full-scan expiry vs.
                       columnar request log + heap expiry
* ``honeypot_sketch``— columnar tier vs. sketch tier on the request log
* ``lpm``            — linear longest-prefix probing vs. the packed
                       per-length binary search
* ``hosting``        — linear interval scan vs. the packed
                       interval-stabbing counters
* ``serialization``  — one ``write()`` per JSONL line vs. chunked joins

Equivalence is asserted in the same run that is timed: events, lookups
and bytes must match exactly before a speedup is reported, so the bench
doubles as an end-to-end equivalence check. The sketch arms are
approximate by design, so they assert accuracy floors instead of
identity: event-victim recall >= 0.95 against the columnar tier and
top-100 per-victim count relative error <= 5%. Results land in
``benchmarks/out/throughput.json`` (schema: :mod:`bench_util`, with a
``substrates`` map of reference/fast rates and speedups) and a rendered
``throughput.txt``; ``tools/perf_compare.py`` gates CI on the committed
JSON.

Runs two ways: under pytest alongside the other benches, or standalone
for the CI ``perf-smoke`` job::

    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --profile smoke --name throughput_smoke
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Tuple

sys.path.insert(0, str(Path(__file__).parent))  # direct execution
from bench_util import write_bench_json

from repro.honeypot.detection import (
    HoneypotDetector,
    detect_columns as detect_honeypot_columns,
    detect_sketch as detect_honeypot_sketch,
)
from repro.honeypot.columnar import RequestColumns
from repro.net.columnar import PacketColumns
from repro.pipeline.config import ScenarioConfig
from repro.pipeline.datasets import (
    event_to_dict,
    save_events_jsonl,
    _atomic_text_writer,
)
from repro.pipeline.simulation import (
    honeypot_capture,
    run_simulation,
    telescope_capture,
)
from repro.telescope.rsdos import (
    RSDoSDetector,
    detect_columns as detect_telescope_columns,
    detect_sketch as detect_telescope_sketch,
)

#: Accuracy floors asserted on the sketch arms (ISSUE acceptance gates).
SKETCH_MIN_RECALL = 0.95
SKETCH_MAX_COUNT_ERROR = 0.05
SKETCH_ERROR_TOP_N = 100


def _assert_sketch_accuracy(
    name: str, exact_events, sketch_summary, sketch_events, exact_counts
) -> None:
    """Gate the sketch arm on recall + count error before reporting speed."""
    exact_keys = {event.victim for event in exact_events}
    sketch_keys = {event.victim for event in sketch_events}
    recall = (
        len(exact_keys & sketch_keys) / len(exact_keys) if exact_keys else 1.0
    )
    assert recall >= SKETCH_MIN_RECALL, (
        f"{name}: sketch event recall {recall:.3f} < {SKETCH_MIN_RECALL}"
    )
    ranked = sorted(
        exact_counts.items(), key=lambda kv: (-kv[1], kv[0])
    )[:SKETCH_ERROR_TOP_N]
    worst = max(
        (
            abs(sketch_summary.sketch.estimate(key) - true) / true
            for key, true in ranked
            if true > 0
        ),
        default=0.0,
    )
    assert worst <= SKETCH_MAX_COUNT_ERROR, (
        f"{name}: sketch count relative error {worst:.4f} "
        f"> {SKETCH_MAX_COUNT_ERROR}"
    )

#: Random address / query volumes per profile.
PROFILES = {
    "smoke": {"preset": "small", "lookups": 20_000, "queries": 20_000},
    "full": {"preset": "default", "lookups": 200_000, "queries": 200_000},
}


def _best_of(repeats: int, fn: Callable[[], Any]) -> Tuple[float, Any]:
    """(best wall seconds, last result) over *repeats* runs.

    Collects garbage before every timed run: the object-path detectors
    leave cyclic garbage whose deferred gen-2 collection would otherwise
    be billed to whichever substrate happens to allocate next (observed
    as a 3x phantom slowdown on the substrate timed after them).
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _write_reference_jsonl(events, path: Path) -> int:
    """The seed serializer: one ``write()`` per event line."""
    count = 0
    with _atomic_text_writer(path) as handle:
        for event in events:
            handle.write(json.dumps(event_to_dict(event)) + "\n")
            count += 1
    return count


def measure_substrates(
    config: ScenarioConfig,
    lookups: int = 20_000,
    queries: int = 20_000,
    repeats: int = 1,
) -> Dict[str, Dict[str, Any]]:
    """Time every substrate's reference and fast path on shared input.

    Each substrate entry carries ``reference_per_s``, ``fast_per_s``,
    ``speedup`` (fast/reference) and the unit the rates count. Raises if
    any fast path's output differs from its reference — a speedup over
    wrong answers is not a speedup.
    """
    sim = run_simulation(config)
    substrates: Dict[str, Dict[str, Any]] = {}

    def record(name, unit, units, ref_s, fast_s):
        substrates[name] = {
            "unit": unit,
            "units": units,
            "reference_per_s": round(units / ref_s, 1),
            "fast_per_s": round(units / fast_s, 1),
            "speedup": round(ref_s / fast_s, 3),
        }

    # -- RSDoS detection -----------------------------------------------------
    capture = telescope_capture(config, sim.ground_truth)
    columns = PacketColumns.from_batches(capture)
    rsdos_config = sim.config.rsdos_config()
    ref_s, ref_events = _best_of(
        repeats,
        lambda: list(
            RSDoSDetector(rsdos_config, indexed=False).run(iter(capture))
        ),
    )
    fast_s, fast_events = _best_of(
        repeats, lambda: detect_telescope_columns(rsdos_config, columns)
    )
    assert fast_events == ref_events, "columnar RSDoS diverged from reference"
    record("rsdos", "batches/s", len(capture), ref_s, fast_s)

    # -- RSDoS sketch tier (reference = the columnar tier itself) ------------
    sketch_config = sim.config.sketch_config()
    columnar_s, columnar_events = _best_of(
        repeats, lambda: detect_telescope_columns(rsdos_config, columns)
    )
    sketch_s, sketch_summary = _best_of(
        repeats,
        lambda: detect_telescope_sketch(
            rsdos_config, columns, sketch_config=sketch_config
        ),
    )
    exact_counts: Dict[int, int] = {}
    for is_backscatter, victim, count in zip(
        columns.backscatter, columns.srcs, columns.counts
    ):
        if is_backscatter:
            exact_counts[victim] = exact_counts.get(victim, 0) + count
    _assert_sketch_accuracy(
        "rsdos_sketch",
        columnar_events,
        sketch_summary,
        sketch_summary.events(),
        exact_counts,
    )
    record("rsdos_sketch", "batches/s", len(capture), columnar_s, sketch_s)

    # -- honeypot detection --------------------------------------------------
    request_log = honeypot_capture(config, sim.ground_truth)
    request_columns = RequestColumns.from_batches(request_log)
    hp_config = sim.config.honeypot_detection_config()
    ref_s, ref_events = _best_of(
        repeats,
        lambda: list(
            HoneypotDetector(hp_config, indexed=False).run(iter(request_log))
        ),
    )
    fast_s, fast_events = _best_of(
        repeats, lambda: detect_honeypot_columns(hp_config, request_columns)
    )
    assert fast_events == ref_events, "columnar honeypot diverged"
    record("honeypot", "batches/s", len(request_log), ref_s, fast_s)

    # -- honeypot sketch tier ------------------------------------------------
    columnar_s, columnar_events = _best_of(
        repeats, lambda: detect_honeypot_columns(hp_config, request_columns)
    )
    sketch_s, sketch_summary = _best_of(
        repeats,
        lambda: detect_honeypot_sketch(
            hp_config, request_columns, sketch_config=sketch_config
        ),
    )
    n_protocols = max(1, len(request_columns.protocols))
    request_counts: Dict[int, int] = {}
    for victim, protocol_id, count in zip(
        request_columns.victims,
        request_columns.protocol_ids,
        request_columns.counts,
    ):
        key = victim * n_protocols + protocol_id
        request_counts[key] = request_counts.get(key, 0) + count
    _assert_sketch_accuracy(
        "honeypot_sketch",
        columnar_events,
        sketch_summary,
        sketch_summary.events(),
        request_counts,
    )
    record(
        "honeypot_sketch", "batches/s", len(request_log), columnar_s, sketch_s
    )

    # -- longest-prefix match ------------------------------------------------
    routing = sim.topology.routing
    rng = random.Random(1)
    addresses = [rng.randrange(1 << 32) for _ in range(lookups)]
    assert [routing.lookup(a) for a in addresses] == [
        routing.lookup_reference(a) for a in addresses
    ], "packed LPM diverged from linear reference"
    ref_s, _ = _best_of(
        repeats,
        lambda: sum(
            1 for a in addresses if routing.lookup_reference(a) is not None
        ),
    )
    fast_s, _ = _best_of(
        repeats,
        lambda: sum(1 for a in addresses if routing.lookup(a) is not None),
    )
    record("lpm", "lookups/s", lookups, ref_s, fast_s)

    # -- hosting-index queries -----------------------------------------------
    index = sim.web_index
    rng = random.Random(2)
    targets = [e.target for e in sim.fused.combined.events]
    query_set = [
        (rng.choice(targets), rng.randrange(config.n_days))
        for _ in range(queries)
    ]
    assert [index.count_on(ip, d) for ip, d in query_set] == [
        index.count_on_reference(ip, d) for ip, d in query_set
    ], "packed hosting index diverged from linear reference"
    ref_s, _ = _best_of(
        repeats,
        lambda: sum(
            index.count_on_reference(ip, d) for ip, d in query_set
        ),
    )
    fast_s, _ = _best_of(
        repeats, lambda: sum(index.count_on(ip, d) for ip, d in query_set)
    )
    record("hosting", "queries/s", queries, ref_s, fast_s)

    # -- event serialization -------------------------------------------------
    events = sim.fused.combined.events
    with tempfile.TemporaryDirectory() as tmp:
        ref_path = Path(tmp) / "ref.jsonl"
        fast_path = Path(tmp) / "fast.jsonl"
        ref_s, _ = _best_of(
            repeats, lambda: _write_reference_jsonl(events, ref_path)
        )
        fast_s, _ = _best_of(
            repeats, lambda: save_events_jsonl(events, fast_path)
        )
        assert ref_path.read_bytes() == fast_path.read_bytes(), (
            "chunked serializer is not byte-identical"
        )
    record("serialization", "events/s", len(events), ref_s, fast_s)

    return substrates


def render(substrates: Dict[str, Dict[str, Any]], title: str) -> str:
    lines = [
        title,
        "(reference = seed implementation; fast = columnar/heap/packed "
        "path; identical output asserted; *_sketch arms: reference = "
        "columnar tier, accuracy floors asserted)",
        "",
        f"{'substrate':<14} {'unit':<10} {'reference/s':>12} "
        f"{'fast/s':>12} {'speedup':>8}",
    ]
    for name, row in substrates.items():
        lines.append(
            f"{name:<14} {row['unit']:<10} {row['reference_per_s']:>12,.0f} "
            f"{row['fast_per_s']:>12,.0f} {row['speedup']:>7.2f}x"
        )
    return "\n".join(lines)


def run_profile(
    profile: str, name: str = "throughput", repeats: int = 1
) -> Dict[str, Any]:
    """Measure one profile and write the JSON + rendered artifacts."""
    spec = PROFILES[profile]
    config = (
        ScenarioConfig.small()
        if spec["preset"] == "small"
        else ScenarioConfig.default()
    )
    start = time.perf_counter()
    substrates = measure_substrates(
        config,
        lookups=spec["lookups"],
        queries=spec["queries"],
        repeats=repeats,
    )
    wall_s = time.perf_counter() - start
    path = write_bench_json(
        name,
        params={
            "profile": profile,
            "preset": spec["preset"],
            "n_days": config.n_days,
            "repeats": repeats,
        },
        wall_s=wall_s,
        extra={"substrates": substrates},
    )
    text = render(
        substrates,
        f"Substrate throughput ({profile} profile, "
        f"{spec['preset']} scenario)",
    )
    path.with_suffix(".txt").write_text(text + "\n", encoding="utf-8")
    return {"substrates": substrates, "wall_s": wall_s, "json": str(path)}


def test_substrate_throughput(benchmark):
    profile = os.environ.get("REPRO_BENCH_PROFILE", "full")
    result = benchmark.pedantic(
        lambda: run_profile(profile), rounds=1, iterations=1
    )
    for name, row in result["substrates"].items():
        benchmark.extra_info[name] = f"{row['speedup']:.2f}x"


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="full",
        help="input scale: 'smoke' (small scenario, CI) or 'full'",
    )
    parser.add_argument(
        "--name", default="throughput",
        help="output stem under benchmarks/out/ (default: throughput)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="take the best of N timings per path (default: 1)",
    )
    args = parser.parse_args(argv)
    result = run_profile(args.profile, name=args.name, repeats=args.repeats)
    sys.stdout.write(
        render(result["substrates"], f"profile={args.profile}") + "\n"
    )
    sys.stdout.write(f"written: {result['json']}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
