"""Substrate throughput: how fast the detection pipelines process input.

Not a paper table — these benches characterize the reproduction itself:
RSDoS batches/second, honeypot request-batches/second, LPM lookups/second
and hosting-index queries/second, so performance regressions in the
substrates are caught alongside the analysis benches.
"""

import random

import pytest

from repro.honeypot.detection import HoneypotDetector
from repro.telescope.backscatter import BackscatterModel
from repro.telescope.darknet import NetworkTelescope
from repro.telescope.rsdos import RSDoSDetector


@pytest.fixture(scope="module")
def capture(sim):
    telescope = NetworkTelescope(
        backscatter=BackscatterModel(sim.config.backscatter_config()),
        noise=None,
    )
    return telescope.capture(sim.ground_truth)


@pytest.fixture(scope="module")
def request_log(sim):
    from repro.honeypot.amppot import AmpPotFleet

    fleet = AmpPotFleet(sim.config.fleet_config())
    return fleet.capture(sim.ground_truth)


def test_rsdos_throughput(benchmark, capture):
    def run():
        detector = RSDoSDetector()
        events = list(detector.run(iter(capture)))
        return detector.batches_seen, len(events)

    batches, events = benchmark(run)
    assert batches == len(capture)
    assert events > 0
    benchmark.extra_info["batches"] = batches
    benchmark.extra_info["events"] = events


def test_honeypot_throughput(benchmark, request_log):
    def run():
        detector = HoneypotDetector()
        events = list(detector.run(iter(request_log)))
        return detector.batches_seen, len(events)

    batches, events = benchmark(run)
    assert batches == len(request_log)
    assert events > 0


def test_routing_lookup_throughput(benchmark, sim):
    rng = random.Random(1)
    addresses = [rng.randrange(1 << 32) for _ in range(20_000)]

    def run():
        routing = sim.topology.routing
        return sum(
            1 for a in addresses if routing.origin_asn(a) is not None
        )

    routed = benchmark(run)
    assert 0 < routed <= len(addresses)


def test_web_index_query_throughput(benchmark, sim):
    rng = random.Random(2)
    targets = [e.target for e in sim.fused.combined.events]
    queries = [(rng.choice(targets), rng.randrange(sim.n_days))
               for _ in range(20_000)]

    def run():
        index = sim.web_index
        return sum(index.count_on(ip, day) for ip, day in queries)

    total = benchmark(run)
    assert total >= 0
