"""Ablation: the 300-second flow timeout of the RSDoS detector.

Moore et al. chose a conservative 300 s; this bench shows how the event
count and duration statistics respond to shorter/longer expiry — short
timeouts fragment attacks into multiple events, long ones merge distinct
attacks against repeat victims.
"""

import pytest

from repro.core.report import render_table
from repro.telescope.backscatter import BackscatterModel
from repro.telescope.darknet import NetworkTelescope
from repro.telescope.rsdos import RSDoSConfig, RSDoSDetector

TIMEOUTS = (60.0, 300.0, 1200.0)


@pytest.fixture(scope="module")
def capture(sim):
    telescope = NetworkTelescope(
        backscatter=BackscatterModel(sim.config.backscatter_config()),
        noise=None,
    )
    return telescope.capture(sim.ground_truth)


def test_ablation_flow_timeout(benchmark, capture, write_report):
    def detect_all():
        results = {}
        for timeout in TIMEOUTS:
            detector = RSDoSDetector(RSDoSConfig(flow_timeout=timeout))
            events = list(detector.run(iter(capture)))
            durations = sorted(e.duration for e in events)
            median = durations[len(durations) // 2] if durations else 0.0
            results[timeout] = (len(events), median)
        return results

    results = benchmark.pedantic(detect_all, rounds=2, iterations=1)
    rows = [
        [f"{timeout:.0f}s", count, f"{median:.0f}s"]
        for timeout, (count, median) in results.items()
    ]
    write_report(
        "ablation_timeout",
        render_table(
            ["flow timeout", "#events", "median duration"],
            rows,
            title="Ablation: RSDoS flow timeout",
        ),
    )
    # Shorter timeouts split flows -> never fewer events than longer ones.
    assert results[60.0][0] >= results[300.0][0] >= results[1200.0][0]
    # Longer timeouts absorb gaps -> median duration grows monotonically.
    assert results[60.0][1] <= results[1200.0][1]
