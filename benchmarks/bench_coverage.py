"""Validation bench: Section 3.1.3's complementarity claim, quantified.

The paper argues the telescope and honeypots complement each other, with a
footnoted blind spot for unspoofed direct attacks. Ground truth makes the
claim measurable: per-category detection coverage.
"""

from repro.core.coverage import (
    CATEGORY_REFLECTION,
    CATEGORY_SPOOFED_DIRECT,
    CATEGORY_UNSPOOFED_DIRECT,
    coverage_by_category,
    detection_coverage,
)
from repro.core.report import render_table


def test_detection_coverage(benchmark, sim, write_report):
    coverages = benchmark(
        detection_coverage, sim.ground_truth, sim.fused.combined.events
    )
    by_category = coverage_by_category(coverages)
    rows = [
        [c.category, c.ground_truth, c.detected, f"{c.coverage:.1%}"]
        for c in coverages
    ]
    write_report(
        "coverage",
        render_table(
            ["category", "#ground truth", "#detected", "coverage"],
            rows,
            title="Detection coverage by attack category (Section 3.1.3)",
        ),
    )
    spoofed = by_category[CATEGORY_SPOOFED_DIRECT]
    reflection = by_category[CATEGORY_REFLECTION]
    unspoofed = by_category[CATEGORY_UNSPOOFED_DIRECT]
    # Each sensor covers its own attack class well; the unspoofed class is
    # the structural blind spot (apparent hits are target collisions).
    assert spoofed.coverage > 0.5
    assert reflection.coverage > 0.85
    assert unspoofed.coverage < spoofed.coverage


def test_robustness_boundary_trim(benchmark, sim, histories, write_report):
    """The paper's Section 6 validation: one-month trims barely move the
    Figure 8 class distribution."""
    from repro.core.robustness import boundary_sensitivity
    from repro.core.webmap import WebImpactAnalysis

    impact = WebImpactAnalysis(sim.web_index)
    trim = max(1, sim.config.n_days // 24)  # ~a month on the 731-day window

    drift = benchmark.pedantic(
        boundary_sensitivity,
        args=(
            sim.fused.combined.events,
            impact,
            sim.openintel.first_seen,
            sim.dps_usage.first_day_by_domain(),
            sim.config.n_days,
            trim,
        ),
        rounds=2,
        iterations=1,
    )
    write_report(
        "robustness",
        render_table(
            ["statistic", "full window", f"trimmed ({trim}d each side)"],
            [
                ["attacked fraction",
                 f"{drift.full.attacked_fraction:.2%}",
                 f"{drift.trimmed.attacked_fraction:.2%}"],
                ["attacked->migrating",
                 f"{drift.full.attacked_migrating_fraction:.2%}",
                 f"{drift.trimmed.attacked_migrating_fraction:.2%}"],
                ["attacked->preexisting",
                 f"{drift.full.attacked_preexisting_fraction:.2%}",
                 f"{drift.trimmed.attacked_preexisting_fraction:.2%}"],
            ],
            title="Boundary sensitivity (Section 6 validation)",
        ),
    )
    assert drift.is_negligible(tolerance=0.08)
