"""Section 5's attribution of attacked parties (GoDaddy / Google Cloud / Wix)."""

from repro.core.attribution import TargetAttributor
from repro.core.report import render_table


def test_top_attacked_parties(benchmark, sim, write_report):
    attributor = TargetAttributor(sim.zones, sim.topology, sim.providers)
    top = benchmark(
        attributor.top_attacked_parties, sim.fused.combined.events, 8
    )
    write_report(
        "attribution",
        render_table(
            ["party", "#events"],
            [[party, count] for party, count in top],
            title="Most attacked parties (Section 5 attribution)",
        ),
    )
    parties = [party for party, _ in top]
    # The giant hosting platforms the paper names dominate the ranking.
    named = {"godaddy", "automattic", "wix", "squarespace", "OVH",
             "aws-reseller", "google"}
    # Over longer windows eyeball carriers accumulate more raw events;
    # the platforms must still appear prominently.
    assert any(party in named for party in parties)


def test_cname_pierces_cloud_hosting(benchmark, sim, write_report):
    """Wix hosts in AWS; its customer CNAME still attributes the platform.

    Only pool addresses that actually carry customers have CNAME evidence;
    empty tail addresses legitimately fall back to AWS routing.
    """
    attributor = TargetAttributor(sim.zones, sim.topology, sim.providers)
    wix = sim.ecosystem.hoster_by_name("Wix")
    populated = [ip for ip in wix.ips if sim.web_index.hosts_anything(ip)]
    assert populated, "expected Wix customers in the namespace"

    def attribute_pool():
        return [attributor.attribute(ip) for ip in populated]

    attributions = benchmark(attribute_pool)
    assert all(a.party == "wix" for a in attributions)
    assert all(a.evidence == "cname" for a in attributions)
    write_report(
        "attribution_wix",
        f"{len(populated)} populated Wix addresses attributed via CNAME "
        "despite AWS routing",
    )
