"""Figure 10: days-to-migration CDFs stratified by attack intensity."""

import pytest

from repro.core.migration import MigrationAnalysis
from repro.core.report import render_delay_cdf


@pytest.fixture(scope="module")
def migration(sim, histories, intensity_model):
    return MigrationAnalysis(
        histories, sim.dps_usage.first_day_by_domain(), intensity_model
    )


def test_fig10_migration_delay_by_intensity(
    benchmark, migration, write_report
):
    def compute():
        cdfs = {"All": migration.delay_cdf()}
        for label, fraction in (
            ("Top 5%", 0.05),
            ("Top 1%", 0.01),
            ("Top 0.1%", 0.001),
        ):
            try:
                cdfs[label] = migration.delay_cdf(top_fraction=fraction)
            except ValueError:
                continue  # class empty at this simulation scale
        return cdfs

    cdfs = benchmark(compute)
    write_report("fig10", render_delay_cdf(cdfs))
    # Paper: within 6 days — all 29.9%, top 5% 67.1%, top 1% 77.1%,
    # top 0.1% 98.6%; within 1 day — all 23.2%, top 0.1% 80.7%.
    all_cdf = cdfs["All"]
    assert 0.02 < all_cdf.fraction_at_or_below(1) < 0.6
    # The narrowest populated class carries the cleanest signal; which
    # classes are populated depends on scenario scale.
    top = cdfs.get("Top 1%") or cdfs.get("Top 5%")
    assert top is not None, "expected at least one top-intensity class"
    assert top.fraction_at_or_below(6) > all_cdf.fraction_at_or_below(6)
    assert top.fraction_at_or_below(1) > all_cdf.fraction_at_or_below(1)
