"""Figure 1: daily attacks / targets / /16s / ASNs, three panels."""

from repro.core.report import render_series_summary
from repro.core.timeseries import figure1_series


def test_fig1_daily_series(benchmark, sim, write_report):
    panels = benchmark(figure1_series, sim.fused, sim.config.n_days)
    text = "\n\n".join(
        render_series_summary(panel) for panel in panels.values()
    )
    write_report("fig1", text)
    telescope, honeypot, combined = (
        panels["telescope"],
        panels["honeypot"],
        panels["combined"],
    )
    # Attacks visible every typical day, on tens of targets spread over
    # many /16s and ASNs; the combined panel is the sum of the two sources.
    assert (combined.attacks == telescope.attacks + honeypot.attacks).all()
    assert combined.mean_daily_attacks() > telescope.mean_daily_attacks()
    assert (combined.unique_targets <= combined.attacks).all()
    assert (combined.targeted_slash16s <= combined.unique_targets).all()
    # Unique targets sit visibly below attacks (repeat victimization),
    # more so for the telescope than the honeypot (paper Section 4).
    tel_ratio = telescope.unique_targets.sum() / max(1, telescope.attacks.sum())
    hp_ratio = honeypot.unique_targets.sum() / max(1, honeypot.attacks.sum())
    assert tel_ratio < hp_ratio
