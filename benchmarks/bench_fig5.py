"""Figure 5: medium-or-higher-intensity attack events over time."""

from repro.core.report import render_series_summary
from repro.core.timeseries import daily_series


def test_fig5_medium_plus_series(
    benchmark, sim, intensity_model, write_report
):
    def compute():
        medium = intensity_model.medium_plus(sim.fused.combined.events)
        return daily_series(medium, sim.config.n_days, "Medium+ combined")

    series = benchmark(compute)
    write_report("fig5", render_series_summary(series))
    total = daily_series(
        sim.fused.combined.events, sim.config.n_days, "All combined"
    )
    # Paper: ~1.4k/day medium+ vs 28.7k/day overall — a small minority,
    # present on most days.
    ratio = series.attacks.sum() / max(1, total.attacks.sum())
    assert 0.01 < ratio < 0.40
    assert (series.attacks <= total.attacks).all()
    assert (series.attacks > 0).mean() > 0.5
