"""Ablation: the "medium intensity" threshold (mean vs percentiles).

The paper defines medium-or-higher intensity as at least the *mean* of the
data set's intensities — a choice that matters because the distributions
are heavy-tailed (the mean sits far above the median). This bench compares
the resulting daily medium+ volumes against percentile-based thresholds.
"""

import numpy as np

from repro.core.report import render_table
from repro.core.timeseries import daily_series


def test_ablation_medium_threshold(
    benchmark, sim, intensity_model, write_report
):
    events = sim.fused.combined.events

    def run_all():
        results = {}
        # The paper's rule: per-source mean.
        medium = intensity_model.medium_plus(events)
        results["mean (paper)"] = len(medium)
        # Percentile alternatives, computed per source like the mean.
        for label, q in (("p50", 0.50), ("p75", 0.75), ("p90", 0.90)):
            thresholds = {
                source: float(
                    np.quantile(
                        [e.intensity for e in events if e.source == source], q
                    )
                )
                for source in {e.source for e in events}
            }
            kept = [
                e for e in events if e.intensity >= thresholds[e.source]
            ]
            results[label] = len(kept)
        return results

    results = benchmark.pedantic(run_all, rounds=2, iterations=1)
    total = len(events)
    rows = [
        [label, count, f"{count / total:.1%}"]
        for label, count in results.items()
    ]
    write_report(
        "ablation_medium",
        render_table(
            ["threshold", "#events", "share"],
            rows,
            title="Ablation: medium-intensity threshold",
        ),
    )
    # Heavy tails: the mean threshold keeps far fewer events than the
    # median, landing between p75 and the extreme tail.
    assert results["mean (paper)"] < results["p50"]
    assert results["mean (paper)"] < results["p75"]
    # The medium+ series still has activity on a majority of days.
    medium = intensity_model.medium_plus(events)
    series = daily_series(medium, sim.config.n_days)
    assert (series.attacks > 0).mean() > 0.5
