"""Figure 2: attack duration CDFs for both data sets."""

from repro.core.distributions import duration_cdf
from repro.core.report import render_duration_cdf


def test_fig2_duration_cdfs(benchmark, sim, write_report):
    def compute():
        return (
            duration_cdf(sim.fused.telescope),
            duration_cdf(sim.fused.honeypot),
        )

    telescope, honeypot = benchmark(compute)
    text = (
        render_duration_cdf(telescope, "Telescope")
        + "\n\n"
        + render_duration_cdf(honeypot, "Honeypot")
    )
    write_report("fig2", text)
    # Paper: telescope median 454s / mean 48min; honeypot median 255s /
    # mean 18min; ~40% of telescope attacks last <=5min; honeypot capped 24h.
    assert 150 < telescope.median < 1500
    assert 60 < honeypot.median < 900
    assert telescope.median > honeypot.median
    assert telescope.mean > telescope.median  # heavy tail
    assert 0.2 < telescope.fraction_at_or_below(300) < 0.7
    assert honeypot.values[-1] <= 86400.0 + 1.0  # the 24h cap
    # Telescope events can cross a day; the extreme tail is scarce.
    assert 1.0 - telescope.fraction_at_or_below(86400) < 0.02
