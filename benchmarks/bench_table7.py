"""Table 7: single-port vs multi-port randomly spoofed attacks."""

from repro.core.ports import port_cardinality
from repro.core.report import render_table7


def test_table7_port_cardinality(benchmark, sim, write_report):
    cardinality = benchmark(port_cardinality, sim.fused.telescope)
    write_report("table7", render_table7(cardinality))
    # Paper: 60.6% single-port, 39.4% multi-port.
    assert 0.50 < cardinality.single_fraction < 0.75
    assert cardinality.total == len(sim.fused.telescope)
