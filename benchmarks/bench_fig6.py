"""Figure 6: co-hosting histogram over targeted IP addresses."""

from repro.core.cohosting import (
    cohosting_bins,
    is_monotone_decreasing_tail,
    web_hosting_target_count,
)
from repro.core.report import render_cohosting


def test_fig6_cohosting(benchmark, sim, impact, write_report):
    def compute():
        associations = impact.associate(sim.fused.combined.events)
        return associations, cohosting_bins(associations)

    associations, bins = benchmark(compute)
    write_report("fig6", render_cohosting(bins))
    # Paper: 572k of 6.34M targets host Web sites (~9%); the histogram
    # decreases monotonically from n=1 to the giant-hoster tail.
    hosting = web_hosting_target_count(associations)
    targets = len(sim.fused.combined.unique_targets())
    assert 0.03 < hosting / targets < 0.7
    assert bins[0].target_ips > 0
    populated = [b for b in bins if b.target_ips > 0]
    assert len(populated) >= 3
    assert is_monotone_decreasing_tail(bins, tolerance=5)
