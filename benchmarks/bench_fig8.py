"""Figure 8: the Web-site taxonomy tree."""

from repro.core.report import render_taxonomy
from repro.core.taxonomy import classify_sites, taxonomy_counts


def test_fig8_taxonomy(benchmark, sim, histories, write_report):
    first_attack = {d: h.first_attack_day() for d, h in histories.items()}
    dps_first = sim.dps_usage.first_day_by_domain()

    def compute():
        return taxonomy_counts(
            classify_sites(sim.openintel.first_seen, first_attack, dps_first)
        )

    counts = benchmark(compute)
    write_report("fig8", render_taxonomy(counts))
    # Paper: 64% attacked; 18.6% of attacked are preexisting customers vs
    # 0.89% of unattacked; 4.31% of attacked migrate vs 3.32% unattacked;
    # protection overall far more common among attacked (22.1% vs 4.2%).
    assert 0.45 < counts.attacked_fraction < 0.85
    assert counts.attacked_preexisting_fraction > counts.unattacked_preexisting_fraction
    assert 0.015 < counts.attacked_migrating_fraction < 0.10
    assert counts.attacked_protected_fraction > counts.unattacked_protected_fraction
    assert counts.total == (
        counts.attacked_preexisting
        + counts.attacked_migrating
        + counts.attacked_non_migrating
        + counts.unattacked_preexisting
        + counts.unattacked_migrating
        + counts.unattacked_non_migrating
    )
