"""Shared machine-readable benchmark output.

Every benchmark that makes a performance claim writes it as JSON under
``benchmarks/out/`` through :func:`write_bench_json`, so revisions can be
compared mechanically instead of by eyeballing rendered text. One schema
for all benches::

    {
      "name":           "parallel",        # benchmark id (file name stem)
      "params":         {...},             # knobs the number depends on
      "wall_s":         1.234,             # headline wall-clock seconds
      "events_per_s":   5678.9,            # throughput (null: not event-shaped)
      "python_version": "3.11.9",          # interpreter the numbers came from
      "cpu_count":      8                  # host parallelism at measurement
    }

Extra keys are allowed (per-configuration timings, overhead percentages)
but the six schema keys are always present. ``python_version`` and
``cpu_count`` exist so committed baselines are comparable across
environments — a speedup regression on a different interpreter or core
count is a different conversation than one on the same hardware.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Any, Dict, Optional

OUT_DIR = Path(__file__).parent / "out"


def write_bench_json(
    name: str,
    params: Dict[str, Any],
    wall_s: float,
    events_per_s: Optional[float] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write one benchmark result as ``benchmarks/out/<name>.json``."""
    payload: Dict[str, Any] = {
        "name": name,
        "params": params,
        "wall_s": round(float(wall_s), 6),
        "events_per_s": (
            round(float(events_per_s), 3) if events_per_s is not None else None
        ),
        "python_version": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }
    if extra:
        for key, value in extra.items():
            payload.setdefault(key, value)
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


__all__ = ["OUT_DIR", "write_bench_json"]
