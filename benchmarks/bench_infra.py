"""Extension benches: mail and authoritative-DNS impact (paper Section 8).

Not a paper table — the paper proposes these analyses as future work; the
bench regenerates them so the extension has the same harness as the
reproduced evaluation.
"""

from repro.core.infra import dns_impact, mail_impact, shared_fate_domains
from repro.core.report import render_table


def test_extension_mail_impact(benchmark, sim, write_report):
    impact = benchmark(
        mail_impact, sim.fused.combined.events, sim.openintel.mail_intervals
    )
    write_report(
        "ext_mail",
        render_table(
            ["statistic", "value"],
            [
                ["attacked mail IPs", impact.attacked_infrastructure_ips],
                ["events hitting mail infra", impact.events_with_impact],
                ["domains with affected mail", impact.affected_domains],
                ["share of mail-bearing domains",
                 f"{impact.affected_fraction:.1%}"],
            ],
            title="Extension: mail-infrastructure impact",
        ),
    )
    assert impact.attacked_infrastructure_ips > 0
    assert impact.affected_domains > 0


def test_extension_dns_impact(benchmark, sim, write_report):
    impact = benchmark(
        dns_impact, sim.fused.combined.events, sim.openintel.ns_intervals
    )
    fate = shared_fate_domains(
        sim.fused.combined.events,
        sim.web_index,
        sim.openintel.ns_intervals,
    )
    write_report(
        "ext_dns",
        render_table(
            ["statistic", "value"],
            [
                ["attacked NS IPs", impact.attacked_infrastructure_ips],
                ["domains with affected DNS", impact.affected_domains],
                ["share of domains", f"{impact.affected_fraction:.1%}"],
                ["exposure web-only", len(fate["web"])],
                ["exposure dns-only", len(fate["dns"])],
                ["exposure both", len(fate["both"])],
            ],
            title="Extension: authoritative-DNS impact",
        ),
    )
    # One NS pair serves many domains: the amplification the paper expects.
    assert impact.affected_domains > impact.attacked_infrastructure_ips
    assert len(fate["both"]) >= 0
