"""Table 8: top targeted services among single-port attacks (TCP & UDP),
plus the Web-port intensity/duration comparison from Section 4."""

from repro.core.ports import (
    service_table,
    web_infrastructure_share,
    web_port_comparison,
)
from repro.core.report import render_table8
from repro.net.packet import PROTO_TCP, PROTO_UDP


def test_table8_services(benchmark, sim, write_report):
    def compute():
        return (
            service_table(sim.fused.telescope, PROTO_TCP),
            service_table(sim.fused.telescope, PROTO_UDP),
        )

    tcp, udp = benchmark(compute)
    write_report("table8", render_table8(tcp, udp))
    # Paper: HTTP 48.68% and HTTPS 20.68% lead TCP; 27015 leads UDP (18.54%).
    assert tcp[0].key == "HTTP" and tcp[0].share > 0.35
    assert tcp[1].key == "HTTPS"
    assert udp[0].key == "27015"
    assert udp[-1].key == "Other" and udp[-1].share > 0.4


def test_web_port_intensity(benchmark, sim, write_report):
    comparison = benchmark(web_port_comparison, sim.fused.telescope)
    share = web_infrastructure_share(sim.fused.telescope)
    write_report(
        "table8_webports",
        "\n".join(
            [
                f"single-port TCP on Web ports: {share:.1%} (paper: 69.36%)",
                f"median intensity web/all: {comparison.median_intensity_web:.1f}"
                f" / {comparison.median_intensity_all:.1f}",
                f"mean duration web/all: {comparison.mean_duration_web:.0f}s"
                f" / {comparison.mean_duration_all:.0f}s",
            ]
        ),
    )
    # Paper: two-thirds of single-port TCP targets Web infrastructure;
    # Web-port attacks are more intense but shorter.
    assert 0.5 < share < 0.9
    assert comparison.web_more_intense
    assert comparison.web_shorter
