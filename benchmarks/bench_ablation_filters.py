"""Ablation: the Moore et al. low-intensity filters (25 pkt / 60 s / 0.5 pps).

Runs the detector with each filter disabled in turn over a capture that
includes telescope noise, quantifying how much pollution each conservative
threshold removes.
"""

import pytest

from repro.core.report import render_table
from repro.telescope.backscatter import BackscatterModel
from repro.telescope.darknet import NetworkTelescope, TelescopeNoise
from repro.telescope.rsdos import RSDoSConfig, RSDoSDetector

VARIANTS = {
    "paper (25 pkt / 60 s / 0.5 pps)": RSDoSConfig(),
    "no packet minimum": RSDoSConfig(min_packets=1),
    "no duration minimum": RSDoSConfig(min_duration=0.0),
    "no rate minimum": RSDoSConfig(min_max_pps=0.0),
    "all filters off": RSDoSConfig(
        min_packets=1, min_duration=0.0, min_max_pps=0.0
    ),
}


@pytest.fixture(scope="module")
def noisy_capture(sim):
    telescope = NetworkTelescope(
        backscatter=BackscatterModel(sim.config.backscatter_config()),
        noise=TelescopeNoise(sim.config.telescope_noise_config()),
    )
    return telescope.capture(sim.ground_truth, n_days=sim.config.n_days)


def test_ablation_intensity_filters(benchmark, noisy_capture, write_report):
    def detect_all():
        results = {}
        for label, config in VARIANTS.items():
            detector = RSDoSDetector(config)
            events = list(detector.run(iter(noisy_capture)))
            results[label] = (len(events), detector.flows_discarded)
        return results

    results = benchmark.pedantic(detect_all, rounds=2, iterations=1)
    rows = [
        [label, kept, discarded]
        for label, (kept, discarded) in results.items()
    ]
    write_report(
        "ablation_filters",
        render_table(
            ["variant", "#events kept", "#flows discarded"],
            rows,
            title="Ablation: RSDoS low-intensity filters",
        ),
    )
    paper_kept = results["paper (25 pkt / 60 s / 0.5 pps)"][0]
    all_off_kept = results["all filters off"][0]
    # The filters exist to discard sub-threshold pollution: disabling them
    # admits strictly more "events", and each filter removes something.
    assert all_off_kept > paper_kept
    for label, (kept, _) in results.items():
        assert kept >= paper_kept
