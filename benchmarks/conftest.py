"""Shared benchmark fixtures.

One default-scale simulation is built per session; each benchmark times the
*analysis* that regenerates its table or figure and writes the rendered
artifact under ``benchmarks/out/`` so a single
``pytest benchmarks/ --benchmark-only`` run reproduces the paper's entire
evaluation section.

Set ``REPRO_BENCH_SCALE=paper`` to run the full 731-day window instead
(minutes rather than seconds).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.intensity import IntensityModel
from repro.core.webmap import WebImpactAnalysis
from repro.pipeline.config import ScenarioConfig
from repro.pipeline.simulation import run_simulation

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_config() -> ScenarioConfig:
    if os.environ.get("REPRO_BENCH_SCALE") == "paper":
        return ScenarioConfig.paper()
    return ScenarioConfig.default()


@pytest.fixture(scope="session")
def sim(bench_config):
    return run_simulation(bench_config)


@pytest.fixture(scope="session")
def impact(sim) -> WebImpactAnalysis:
    return WebImpactAnalysis(sim.web_index)


@pytest.fixture(scope="session")
def histories(sim, impact):
    return impact.site_histories(sim.fused.combined.events)


@pytest.fixture(scope="session")
def intensity_model(sim) -> IntensityModel:
    return IntensityModel(sim.fused.combined.events)


@pytest.fixture(scope="session")
def report_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture()
def write_report(report_dir):
    """Writer saving a rendered table/figure under benchmarks/out/."""

    def _write(name: str, text: str) -> None:
        (report_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _write
