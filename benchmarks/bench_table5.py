"""Table 5: IP protocol distribution of randomly spoofed attacks."""

from repro.core.rankings import ip_protocol_distribution
from repro.core.report import render_table5


def test_table5_ip_protocols(benchmark, sim, write_report):
    distribution = benchmark(ip_protocol_distribution, sim.fused.telescope)
    write_report("table5", render_table5(distribution))
    # Paper: TCP 79.4%, UDP 15.9%, ICMP 4.5%, other 0.2%.
    assert 0.70 < distribution["TCP"] < 0.88
    assert distribution["TCP"] > distribution.get("UDP", 0.0)
    assert distribution.get("UDP", 0.0) > distribution.get("ICMP", 0.0)
    assert distribution.get("Other", 0.0) + distribution.get("IGMP", 0.0) < 0.02
