"""Fault tolerance: headline-ratio drift under the standard fault plan.

Runs the bench scenario once healthy and once through the resilient
runner under ``FaultPlan.standard`` (telescope gaps, honeypot churn,
missed OpenINTEL snapshots, DPS record corruption), then records how far
the paper's headline ratios drift and what each feed lost. The rendered
``DataQualityReport`` lands in ``benchmarks/out/faulttolerance.txt`` so
drift can be tracked across revisions of the pipeline.
"""

import time

from bench_util import write_bench_json
from repro.faults.plan import FaultPlan
from repro.pipeline.quality import HeadlineMetrics
from repro.pipeline.runner import run_resilient

#: Fixed plan seed: the drift numbers are comparable across revisions.
FAULT_SEED = 7


def test_faulttolerance_drift(benchmark, sim, bench_config, write_report):
    baseline = HeadlineMetrics.from_result(sim)
    plan = FaultPlan.standard(
        bench_config.n_days,
        seed=FAULT_SEED,
        n_honeypots=bench_config.n_honeypots,
    )

    start = time.perf_counter()
    degraded = benchmark.pedantic(
        lambda: run_resilient(
            bench_config, plan=plan, baseline=baseline, sleep=lambda _d: None
        ),
        rounds=1,
        iterations=1,
    )
    wall = time.perf_counter() - start
    quality = degraded.quality
    write_report("faulttolerance", quality.render())
    observed = sum(feed.events_observed for feed in quality.feeds)
    write_bench_json(
        "faulttolerance",
        params={"fault_seed": FAULT_SEED, "n_days": bench_config.n_days},
        wall_s=wall,
        events_per_s=observed / wall if wall else None,
        extra={
            "headline_drift": {
                key: round(value, 6)
                for key, value in quality.headline_drift().items()
            }
        },
    )

    # The standard plan is lossy but mild: the pipeline must complete with
    # every stage ok and the headline ratios within a few points.
    assert all(stage.status == "ok" for stage in quality.stages)
    drift = quality.headline_drift()
    assert drift, "expected drift metrics against the healthy baseline"
    assert drift["attacked_slash24_fraction"] <= 0.05
    assert drift["attacked_site_fraction"] <= 0.10
    assert drift["migrating_fraction"] <= 0.05
