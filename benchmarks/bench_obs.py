"""Telemetry overhead: what instrumentation costs, on and off.

The tentpole's contract is *zero-cost when disabled*: every counter
increment and span enter/exit in the hot path resolves to a shared
null-object no-op unless ``--metrics`` installed a live registry. This
bench quantifies both sides on the same serial pipeline the parallel
bench uses as its baseline:

* **disabled** — the default: instrumented code paths against the null
  registry/tracer/profiler;
* **enabled**  — a live :class:`~repro.obs.Telemetry` threaded through
  the run.

The committed ``benchmarks/out/obs_overhead.json`` records both means
and the enabled-over-disabled overhead percentage; the acceptance bar is
that the *disabled* configuration stays within 5% of the fastest run,
i.e. dormant instrumentation is free at pipeline scale.
"""

import statistics
import time

from bench_util import write_bench_json
from repro.obs import Telemetry
from repro.obs.trace import SpanTracer
from repro.pipeline.runner import run_resilient
from repro.serve.service import LiveIngestService, ServeConfig
from repro.serve.wal import KIND_ATTACK

ROUNDS = 3

#: Serve-path arm: batches x batch size ingested per timed round.
SERVE_BATCHES = 40
SERVE_BATCH_SIZE = 50


def _timed_runs(bench_config, telemetry):
    walls = []
    events = 0
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = run_resilient(
            bench_config, telemetry=telemetry, sleep=lambda _d: None
        )
        walls.append(time.perf_counter() - start)
        events = len(result.fused.combined.events)
    return walls, events


def test_telemetry_overhead(benchmark, bench_config, write_report):
    # Warm-up round so neither arm pays first-run import/cache costs.
    run_resilient(bench_config, sleep=lambda _d: None)

    disabled_walls, events = benchmark.pedantic(
        lambda: _timed_runs(bench_config, None), rounds=1, iterations=1
    )
    enabled_walls, enabled_events = _timed_runs(
        bench_config, Telemetry.create()
    )
    assert enabled_events == events, "telemetry changed pipeline output size"

    disabled = min(disabled_walls)
    enabled = min(enabled_walls)
    fastest = min(disabled, enabled)
    disabled_overhead_pct = (disabled - fastest) / fastest * 100
    enabled_overhead_pct = (enabled - disabled) / disabled * 100

    lines = [
        "Telemetry overhead (serial pipeline, best of "
        f"{ROUNDS} rounds, {events} fused events)",
        "",
        f"{'configuration':<12} {'best_s':>8} {'mean_s':>8}",
        f"{'disabled':<12} {disabled:>8.3f} "
        f"{statistics.mean(disabled_walls):>8.3f}",
        f"{'enabled':<12} {enabled:>8.3f} "
        f"{statistics.mean(enabled_walls):>8.3f}",
        "",
        f"disabled vs fastest: {disabled_overhead_pct:+.2f}%",
        f"enabled  vs disabled: {enabled_overhead_pct:+.2f}%",
    ]
    write_report("obs_overhead", "\n".join(lines))
    write_bench_json(
        "obs_overhead",
        params={"rounds": ROUNDS, "fused_events": events},
        wall_s=disabled,
        events_per_s=events / disabled if disabled else None,
        extra={
            "disabled_wall_s": [round(w, 6) for w in disabled_walls],
            "enabled_wall_s": [round(w, 6) for w in enabled_walls],
            "disabled_overhead_pct": round(disabled_overhead_pct, 3),
            "enabled_overhead_pct": round(enabled_overhead_pct, 3),
        },
    )
    # The acceptance bar: dormant instrumentation must be free — the
    # disabled configuration stays within 5% of the fastest observed run.
    assert disabled_overhead_pct < 5.0, (
        f"disabled telemetry cost {disabled_overhead_pct:.2f}% "
        "(bar: <5%)"
    )


def _serve_event(i):
    return {
        "source": "telescope",
        "target": (10 << 24) + (i % 2048),
        "start_ts": float(i),
        "end_ts": float(i) + 30.0,
        "intensity": 100.0 + (i % 13),
    }


def _serve_ingest_wall(data_dir, tracer, traced):
    """Seconds to ingest + quiesce one fixed workload through submit()."""
    config = ServeConfig(
        data_dir=data_dir,
        queue_size=8192,
        snapshot_every_events=100_000,
        snapshot_interval_s=100_000.0,
        wal_fsync_every=1024,
    )
    service = LiveIngestService(config, tracer=tracer)
    service.start()
    try:
        start = time.perf_counter()
        for i in range(SERVE_BATCHES):
            batch = [
                _serve_event(i * SERVE_BATCH_SIZE + j)
                for j in range(SERVE_BATCH_SIZE)
            ]
            service.submit(
                "telescope", KIND_ATTACK, batch,
                trace=f"bench-{i:06d}" if traced else None,
            )
        assert service.quiesce(timeout=60.0)
        return time.perf_counter() - start
    finally:
        service.stop()


def test_serve_flight_recorder_overhead(tmp_path, write_report):
    """The flight recorder must be free while dormant on the serve path.

    *dormant*: the default serve configuration — null tracer, untraced
    WAL appends — with all flight-recorder seams (request log, history
    ring, span hooks) compiled in. *armed*: live SpanTracer plus a trace
    ID on every batch. The gate mirrors the pipeline arm: dormant stays
    within 5% of the fastest observed configuration.
    """
    _serve_ingest_wall(tmp_path / "warmup", None, False)
    dormant_walls = [
        _serve_ingest_wall(tmp_path / f"dormant-{r}", None, False)
        for r in range(ROUNDS)
    ]
    armed_walls = [
        _serve_ingest_wall(tmp_path / f"armed-{r}", SpanTracer(), True)
        for r in range(ROUNDS)
    ]
    dormant = min(dormant_walls)
    armed = min(armed_walls)
    fastest = min(dormant, armed)
    dormant_overhead_pct = (dormant - fastest) / fastest * 100
    armed_overhead_pct = (armed - dormant) / dormant * 100
    events = SERVE_BATCHES * SERVE_BATCH_SIZE

    lines = [
        "Serve-path flight recorder overhead "
        f"(best of {ROUNDS} rounds, {events} records/round)",
        "",
        f"{'configuration':<12} {'best_s':>8} {'mean_s':>8}",
        f"{'dormant':<12} {dormant:>8.3f} "
        f"{statistics.mean(dormant_walls):>8.3f}",
        f"{'armed':<12} {armed:>8.3f} "
        f"{statistics.mean(armed_walls):>8.3f}",
        "",
        f"dormant vs fastest: {dormant_overhead_pct:+.2f}%",
        f"armed   vs dormant: {armed_overhead_pct:+.2f}%",
    ]
    write_report("serve_flight_recorder", "\n".join(lines))
    write_bench_json(
        "serve_flight_recorder",
        params={
            "rounds": ROUNDS,
            "batches": SERVE_BATCHES,
            "batch_size": SERVE_BATCH_SIZE,
        },
        wall_s=dormant,
        events_per_s=events / dormant if dormant else None,
        extra={
            "dormant_wall_s": [round(w, 6) for w in dormant_walls],
            "armed_wall_s": [round(w, 6) for w in armed_walls],
            "dormant_overhead_pct": round(dormant_overhead_pct, 3),
            "armed_overhead_pct": round(armed_overhead_pct, 3),
        },
    )
    assert dormant_overhead_pct < 5.0, (
        f"dormant flight recorder cost {dormant_overhead_pct:.2f}% "
        "on the serve path (bar: <5%)"
    )
