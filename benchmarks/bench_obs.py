"""Telemetry overhead: what instrumentation costs, on and off.

The tentpole's contract is *zero-cost when disabled*: every counter
increment and span enter/exit in the hot path resolves to a shared
null-object no-op unless ``--metrics`` installed a live registry. This
bench quantifies both sides on the same serial pipeline the parallel
bench uses as its baseline:

* **disabled** — the default: instrumented code paths against the null
  registry/tracer/profiler;
* **enabled**  — a live :class:`~repro.obs.Telemetry` threaded through
  the run.

The committed ``benchmarks/out/obs_overhead.json`` records both means
and the enabled-over-disabled overhead percentage; the acceptance bar is
that the *disabled* configuration stays within 5% of the fastest run,
i.e. dormant instrumentation is free at pipeline scale.
"""

import statistics
import time

from bench_util import write_bench_json
from repro.obs import Telemetry
from repro.pipeline.runner import run_resilient

ROUNDS = 3


def _timed_runs(bench_config, telemetry):
    walls = []
    events = 0
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = run_resilient(
            bench_config, telemetry=telemetry, sleep=lambda _d: None
        )
        walls.append(time.perf_counter() - start)
        events = len(result.fused.combined.events)
    return walls, events


def test_telemetry_overhead(benchmark, bench_config, write_report):
    # Warm-up round so neither arm pays first-run import/cache costs.
    run_resilient(bench_config, sleep=lambda _d: None)

    disabled_walls, events = benchmark.pedantic(
        lambda: _timed_runs(bench_config, None), rounds=1, iterations=1
    )
    enabled_walls, enabled_events = _timed_runs(
        bench_config, Telemetry.create()
    )
    assert enabled_events == events, "telemetry changed pipeline output size"

    disabled = min(disabled_walls)
    enabled = min(enabled_walls)
    fastest = min(disabled, enabled)
    disabled_overhead_pct = (disabled - fastest) / fastest * 100
    enabled_overhead_pct = (enabled - disabled) / disabled * 100

    lines = [
        "Telemetry overhead (serial pipeline, best of "
        f"{ROUNDS} rounds, {events} fused events)",
        "",
        f"{'configuration':<12} {'best_s':>8} {'mean_s':>8}",
        f"{'disabled':<12} {disabled:>8.3f} "
        f"{statistics.mean(disabled_walls):>8.3f}",
        f"{'enabled':<12} {enabled:>8.3f} "
        f"{statistics.mean(enabled_walls):>8.3f}",
        "",
        f"disabled vs fastest: {disabled_overhead_pct:+.2f}%",
        f"enabled  vs disabled: {enabled_overhead_pct:+.2f}%",
    ]
    write_report("obs_overhead", "\n".join(lines))
    write_bench_json(
        "obs_overhead",
        params={"rounds": ROUNDS, "fused_events": events},
        wall_s=disabled,
        events_per_s=events / disabled if disabled else None,
        extra={
            "disabled_wall_s": [round(w, 6) for w in disabled_walls],
            "enabled_wall_s": [round(w, 6) for w in enabled_walls],
            "disabled_overhead_pct": round(disabled_overhead_pct, 3),
            "enabled_overhead_pct": round(enabled_overhead_pct, 3),
        },
    )
    # The acceptance bar: dormant instrumentation must be free — the
    # disabled configuration stays within 5% of the fastest observed run.
    assert disabled_overhead_pct < 5.0, (
        f"disabled telemetry cost {disabled_overhead_pct:.2f}% "
        "(bar: <5%)"
    )
