"""Live ingestion service under concurrent load, at 1x and 2x capacity.

The tentpole's overload contract is *bounded latency, explicit refusal*:
when offered load exceeds what the applier can absorb, the service must
answer quickly (503 + Retry-After or drop-oldest shedding) instead of
letting request latency grow without bound. This bench drives the real
HTTP stack with concurrent ingest workers plus a query worker:

* **steady**   — offered load the applier can sustain;
* **overload** — the same workers at 2x the offered rate.

The acceptance bar, asserted here and recorded in
``benchmarks/out/serve_load.json``: overload p99 ingest latency stays
within ``P99_BOUND_S`` (refusing fast is the point), and the overload
arm actually sheds (refusal + drop rate above zero).
"""

import json
import statistics
import threading
import time
import urllib.error
import urllib.request

from bench_util import write_bench_json
from repro.obs.metrics import MetricsRegistry
from repro.serve.http import ServeHTTPServer
from repro.serve.service import LiveIngestService, ServeConfig

INGEST_WORKERS = 4
BATCH = 16
ARM_SECONDS = 3.0
APPLY_DELAY = 0.002  # per-batch applier stall: makes capacity finite
P99_BOUND_S = 0.5    # overload answers (even refusals) must stay under this


def _percentile(samples, q):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _event(i):
    return {
        "source": "telescope",
        "target": (10 << 24) + (i % 8192),
        "start_ts": float(i % 80000),
        "end_ts": float(i % 80000) + 30.0,
        "intensity": 25.0,
    }


class _LoadArm:
    """One measured arm: N ingest workers at a target request rate."""

    def __init__(self, port, requests_per_worker_s):
        self.port = port
        self.interval = 1.0 / requests_per_worker_s
        self.latencies = []
        self.statuses = {202: 0, 503: 0}
        self.query_latencies = []
        self._lock = threading.Lock()
        self._stop = threading.Event()

    def _post(self, worker, sequence):
        body = json.dumps(
            [_event(worker * 1_000_000 + sequence * BATCH + j)
             for j in range(BATCH)]
        ).encode("utf-8")
        request = urllib.request.Request(
            f"http://127.0.0.1:{self.port}/ingest/attacks?feed=telescope",
            data=body, headers={"Content-Type": "application/json"},
        )
        start = time.perf_counter()
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                status = response.status
                response.read()
        except urllib.error.HTTPError as error:
            status = error.code
            error.read()
        elapsed = time.perf_counter() - start
        with self._lock:
            self.latencies.append(elapsed)
            self.statuses[status] = self.statuses.get(status, 0) + 1

    def _ingest_worker(self, worker):
        sequence = 0
        while not self._stop.is_set():
            began = time.perf_counter()
            self._post(worker, sequence)
            sequence += 1
            remaining = self.interval - (time.perf_counter() - began)
            if remaining > 0:
                self._stop.wait(remaining)

    def _query_worker(self):
        while not self._stop.is_set():
            start = time.perf_counter()
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{self.port}"
                    "/attacks?prefix=10.0.0.0/16&limit=50",
                    timeout=10,
                ) as response:
                    response.read()
            except urllib.error.URLError:
                pass
            with self._lock:
                self.query_latencies.append(time.perf_counter() - start)
            self._stop.wait(0.05)

    def run(self, seconds):
        threads = [
            threading.Thread(target=self._ingest_worker, args=(w,),
                             daemon=True)
            for w in range(INGEST_WORKERS)
        ]
        threads.append(
            threading.Thread(target=self._query_worker, daemon=True)
        )
        for thread in threads:
            thread.start()
        time.sleep(seconds)
        self._stop.set()
        for thread in threads:
            thread.join(timeout=10)

    def summary(self):
        total = sum(self.statuses.values())
        refused = self.statuses.get(503, 0)
        return {
            "requests": total,
            "accepted": self.statuses.get(202, 0),
            "refused": refused,
            "refusal_rate": refused / total if total else 0.0,
            "p50_s": _percentile(self.latencies, 0.50),
            "p99_s": _percentile(self.latencies, 0.99),
            "query_p50_s": _percentile(self.query_latencies, 0.50),
            "query_p99_s": _percentile(self.query_latencies, 0.99),
        }


def _run_arm(tmp_path, name, requests_per_worker_s, seconds):
    service = LiveIngestService(
        ServeConfig(
            data_dir=tmp_path / name,
            queue_size=256,
            high_watermark=192,
            low_watermark=64,
            snapshot_every_events=5000,
            apply_delay=APPLY_DELAY,
        ),
        metrics=MetricsRegistry(),
    )
    service.start()
    server = ServeHTTPServer(("127.0.0.1", 0), service)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        arm = _LoadArm(port, requests_per_worker_s)
        arm.run(seconds)
        summary = arm.summary()
        summary["dropped"] = sum(service.dropped_by_feed.values())
        stats = service.stats()
        summary["applied_events"] = stats["summary"]["applied_events"]
        return summary
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


def test_serve_overload_latency(benchmark, tmp_path, write_report):
    # Calibrate empirically: an unthrottled probe arm measures what the
    # applier actually absorbs (requests/s accepted per worker), then the
    # steady arm offers half of that and the overload arm twice it.
    probe = _run_arm(tmp_path, "probe", 500.0, 1.5)
    sustained_rps = max(2.0, probe["accepted"] / 1.5 / INGEST_WORKERS)
    steady = benchmark.pedantic(
        lambda: _run_arm(tmp_path, "steady", sustained_rps / 2, ARM_SECONDS),
        rounds=1, iterations=1,
    )
    overload = _run_arm(tmp_path, "overload", sustained_rps * 2, ARM_SECONDS)

    # Overload must answer fast (refusal is cheap) and actually shed.
    assert overload["p99_s"] is not None
    assert overload["p99_s"] < P99_BOUND_S, (
        f"overload p99 {overload['p99_s']:.3f}s breaches "
        f"{P99_BOUND_S}s bound"
    )
    assert overload["refused"] + overload["dropped"] > 0, (
        "2x offered load never shed - arm is miscalibrated"
    )
    # Steady must mostly get through - otherwise "2x" means nothing.
    assert steady["accepted"] > 0
    assert steady["refusal_rate"] < 0.5, (
        f"steady arm refused {steady['refusal_rate'] * 100:.0f}% - "
        "calibration failed"
    )

    def row(name, arm):
        return (
            f"{name:<9} {arm['requests']:>6} {arm['accepted']:>6} "
            f"{arm['refused']:>6} {arm['dropped']:>6} "
            f"{arm['p50_s'] * 1000:>8.1f} {arm['p99_s'] * 1000:>8.1f} "
            f"{(arm['query_p99_s'] or 0) * 1000:>9.1f}"
        )

    lines = [
        f"Serve load ({INGEST_WORKERS} ingest workers x {BATCH} "
        f"records, {ARM_SECONDS:g}s arms)",
        "",
        f"{'arm':<9} {'reqs':>6} {'ok':>6} {'503':>6} {'drop':>6} "
        f"{'p50_ms':>8} {'p99_ms':>8} {'q_p99_ms':>9}",
        row("steady", steady),
        row("overload", overload),
        "",
        f"overload refusal rate: {overload['refusal_rate'] * 100:.1f}%",
        f"p99 bound: {P99_BOUND_S * 1000:g}ms",
    ]
    write_report("serve_load", "\n".join(lines))
    write_bench_json(
        "serve_load",
        params={
            "ingest_workers": INGEST_WORKERS,
            "batch": BATCH,
            "arm_seconds": ARM_SECONDS,
            "apply_delay_s": APPLY_DELAY,
            "p99_bound_s": P99_BOUND_S,
            "sustained_rps_per_worker": round(sustained_rps, 2),
        },
        wall_s=2 * ARM_SECONDS,
        events_per_s=steady["applied_events"] / ARM_SECONDS,
        extra={"steady": steady, "overload": overload},
    )
