"""Live ingestion service under concurrent load, plus read scale-out.

The serve tentpole's overload contract is *bounded latency, explicit
refusal*: when offered load exceeds what the applier can absorb, the
service must answer quickly (503 + Retry-After or drop-oldest shedding)
instead of letting request latency grow without bound. The replication
tentpole adds a second contract: a ``--replica-of`` follower absorbs the
read load while the primary ingests, so query latency on the follower
must be no worse than querying the ingesting node itself.

Two benches, both driving the real HTTP stack through
:class:`~repro.serve.client.ServeClient` (its un-retried
``request_once`` — retry loops would falsify latency numbers):

* ``serve_load``     — steady vs 2x-capacity ingest arms; overload p99
  must stay under ``P99_BOUND_S`` and the arm must actually shed;
* ``serve_scaleout`` — query p50/p99 against a single ingesting node vs
  against a follower replicating from it; the follower must answer
  within ``SCALEOUT_TOLERANCE`` of the single-node baseline (generous:
  these are sub-millisecond numbers on a loopback socket).

Results land in ``benchmarks/out/serve_load.json`` and
``benchmarks/out/serve_scaleout.json``.
"""

import threading
import time

from bench_util import write_bench_json
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import ServeClient
from repro.serve.http import ServeHTTPServer
from repro.serve.service import LiveIngestService, ServeConfig

INGEST_WORKERS = 4
BATCH = 16
ARM_SECONDS = 3.0
APPLY_DELAY = 0.002  # per-batch applier stall: makes capacity finite
P99_BOUND_S = 0.5    # overload answers (even refusals) must stay under this

SCALEOUT_SECONDS = 3.0
SCALEOUT_RATE_PER_S = 60.0   # primary ingest pressure during query runs
SCALEOUT_TOLERANCE = 3.0     # follower p99 <= max(tol * baseline, floor)
SCALEOUT_FLOOR_S = 0.05      # absolute floor so loopback noise can't flake


def _percentile(samples, q):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _event(i):
    return {
        "source": "telescope",
        "target": (10 << 24) + (i % 8192),
        "start_ts": float(i % 80000),
        "end_ts": float(i % 80000) + 30.0,
        "intensity": 25.0,
    }


class _LoadArm:
    """One measured arm: N ingest workers at a target request rate."""

    def __init__(self, url, requests_per_worker_s):
        self.client = ServeClient([url], timeout=10.0)
        self.interval = 1.0 / requests_per_worker_s
        self.latencies = []
        self.statuses = {202: 0, 503: 0}
        self.query_latencies = []
        self._lock = threading.Lock()
        self._stop = threading.Event()

    def _post(self, worker, sequence):
        body = {
            "records": [
                _event(worker * 1_000_000 + sequence * BATCH + j)
                for j in range(BATCH)
            ]
        }
        start = time.perf_counter()
        response = self.client.request_once(
            "POST", "/ingest/attacks?feed=telescope", body
        )
        elapsed = time.perf_counter() - start
        with self._lock:
            self.latencies.append(elapsed)
            self.statuses[response.status] = (
                self.statuses.get(response.status, 0) + 1
            )

    def _ingest_worker(self, worker):
        sequence = 0
        while not self._stop.is_set():
            began = time.perf_counter()
            self._post(worker, sequence)
            sequence += 1
            remaining = self.interval - (time.perf_counter() - began)
            if remaining > 0:
                self._stop.wait(remaining)

    def _query_worker(self):
        while not self._stop.is_set():
            start = time.perf_counter()
            try:
                self.client.request_once(
                    "GET", "/attacks?prefix=10.0.0.0/16&limit=50"
                )
            except OSError:
                pass
            with self._lock:
                self.query_latencies.append(time.perf_counter() - start)
            self._stop.wait(0.05)

    def run(self, seconds):
        threads = [
            threading.Thread(target=self._ingest_worker, args=(w,),
                             daemon=True)
            for w in range(INGEST_WORKERS)
        ]
        threads.append(
            threading.Thread(target=self._query_worker, daemon=True)
        )
        for thread in threads:
            thread.start()
        time.sleep(seconds)
        self._stop.set()
        for thread in threads:
            thread.join(timeout=10)

    def summary(self):
        total = sum(self.statuses.values())
        refused = self.statuses.get(503, 0)
        return {
            "requests": total,
            "accepted": self.statuses.get(202, 0),
            "refused": refused,
            "refusal_rate": refused / total if total else 0.0,
            "p50_s": _percentile(self.latencies, 0.50),
            "p99_s": _percentile(self.latencies, 0.99),
            "query_p50_s": _percentile(self.query_latencies, 0.50),
            "query_p99_s": _percentile(self.query_latencies, 0.99),
        }


def _spawn_node(tmp_path, name, replica_of=None, follower_id=None,
                queue_size=256, high=192, low=64):
    """An in-process service + HTTP server; returns (service, server, url)."""
    service = LiveIngestService(
        ServeConfig(
            data_dir=tmp_path / name,
            queue_size=queue_size,
            high_watermark=high,
            low_watermark=low,
            snapshot_every_events=5000,
            apply_delay=APPLY_DELAY,
            replica_of=replica_of,
            follower_id=follower_id,
            poll_interval_s=0.05,
        ),
        metrics=MetricsRegistry(),
    )
    service.start()
    server = ServeHTTPServer(("127.0.0.1", 0), service)
    port = server.server_address[1]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return service, server, f"http://127.0.0.1:{port}"


def _teardown(service, server):
    server.shutdown()
    server.server_close()
    service.stop()


def _run_arm(tmp_path, name, requests_per_worker_s, seconds):
    service, server, url = _spawn_node(tmp_path, name)
    try:
        arm = _LoadArm(url, requests_per_worker_s)
        arm.run(seconds)
        summary = arm.summary()
        summary["dropped"] = sum(service.dropped_by_feed.values())
        stats = service.stats()
        summary["applied_events"] = stats["summary"]["applied_events"]
        return summary
    finally:
        _teardown(service, server)


def test_serve_overload_latency(benchmark, tmp_path, write_report):
    # Calibrate empirically: an unthrottled probe arm measures what the
    # applier actually absorbs (requests/s accepted per worker), then the
    # steady arm offers half of that and the overload arm twice it.
    probe = _run_arm(tmp_path, "probe", 500.0, 1.5)
    sustained_rps = max(2.0, probe["accepted"] / 1.5 / INGEST_WORKERS)
    steady = benchmark.pedantic(
        lambda: _run_arm(tmp_path, "steady", sustained_rps / 2, ARM_SECONDS),
        rounds=1, iterations=1,
    )
    overload = _run_arm(tmp_path, "overload", sustained_rps * 2, ARM_SECONDS)

    # Overload must answer fast (refusal is cheap) and actually shed.
    assert overload["p99_s"] is not None
    assert overload["p99_s"] < P99_BOUND_S, (
        f"overload p99 {overload['p99_s']:.3f}s breaches "
        f"{P99_BOUND_S}s bound"
    )
    assert overload["refused"] + overload["dropped"] > 0, (
        "2x offered load never shed - arm is miscalibrated"
    )
    # Steady must mostly get through - otherwise "2x" means nothing.
    assert steady["accepted"] > 0
    assert steady["refusal_rate"] < 0.5, (
        f"steady arm refused {steady['refusal_rate'] * 100:.0f}% - "
        "calibration failed"
    )

    def row(name, arm):
        return (
            f"{name:<9} {arm['requests']:>6} {arm['accepted']:>6} "
            f"{arm['refused']:>6} {arm['dropped']:>6} "
            f"{arm['p50_s'] * 1000:>8.1f} {arm['p99_s'] * 1000:>8.1f} "
            f"{(arm['query_p99_s'] or 0) * 1000:>9.1f}"
        )

    lines = [
        f"Serve load ({INGEST_WORKERS} ingest workers x {BATCH} "
        f"records, {ARM_SECONDS:g}s arms)",
        "",
        f"{'arm':<9} {'reqs':>6} {'ok':>6} {'503':>6} {'drop':>6} "
        f"{'p50_ms':>8} {'p99_ms':>8} {'q_p99_ms':>9}",
        row("steady", steady),
        row("overload", overload),
        "",
        f"overload refusal rate: {overload['refusal_rate'] * 100:.1f}%",
        f"p99 bound: {P99_BOUND_S * 1000:g}ms",
    ]
    write_report("serve_load", "\n".join(lines))
    write_bench_json(
        "serve_load",
        params={
            "ingest_workers": INGEST_WORKERS,
            "batch": BATCH,
            "arm_seconds": ARM_SECONDS,
            "apply_delay_s": APPLY_DELAY,
            "p99_bound_s": P99_BOUND_S,
            "sustained_rps_per_worker": round(sustained_rps, 2),
        },
        wall_s=2 * ARM_SECONDS,
        events_per_s=steady["applied_events"] / ARM_SECONDS,
        extra={"steady": steady, "overload": overload},
    )


# -- read scale-out ------------------------------------------------------------


def _drive_ingest(url, stop, rate_per_s):
    """Steady ingest pressure against *url* until *stop* is set."""
    client = ServeClient([url], timeout=10.0)
    interval = 1.0 / rate_per_s
    sequence = 0
    while not stop.is_set():
        began = time.perf_counter()
        body = {
            "records": [_event(sequence * BATCH + j) for j in range(BATCH)]
        }
        try:
            client.request_once("POST", "/ingest/attacks?feed=telescope",
                                body)
        except OSError:
            pass
        sequence += 1
        remaining = interval - (time.perf_counter() - began)
        if remaining > 0:
            stop.wait(remaining)


def _measure_queries(url, seconds, pace=0.01):
    """Query latencies at a fixed pace against one node."""
    client = ServeClient([url], timeout=10.0)
    latencies = []
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        start = time.perf_counter()
        try:
            client.request_once(
                "GET", "/attacks?prefix=10.0.0.0/16&limit=50"
            )
        except OSError:
            pass
        latencies.append(time.perf_counter() - start)
        time.sleep(pace)
    return latencies


def _queries_under_ingest(query_url, ingest_url, seconds):
    stop = threading.Event()
    driver = threading.Thread(
        target=_drive_ingest, args=(ingest_url, stop, SCALEOUT_RATE_PER_S),
        daemon=True,
    )
    driver.start()
    try:
        return _measure_queries(query_url, seconds)
    finally:
        stop.set()
        driver.join(timeout=10)


def test_serve_follower_read_scaleout(tmp_path, write_report):
    # Baseline: one node both ingests and answers queries.
    solo, solo_server, solo_url = _spawn_node(tmp_path, "solo")
    try:
        baseline = _queries_under_ingest(solo_url, solo_url,
                                         SCALEOUT_SECONDS)
    finally:
        _teardown(solo, solo_server)

    # Scale-out: queries hit a follower replicating off the primary.
    primary, primary_server, primary_url = _spawn_node(tmp_path, "primary")
    follower, follower_server, follower_url = _spawn_node(
        tmp_path, "follower", replica_of=primary_url,
        follower_id="bench-f1",
    )
    try:
        scaled = _queries_under_ingest(follower_url, primary_url,
                                       SCALEOUT_SECONDS)
        lag = follower.shipper.lag() if follower.shipper else None
        follower_applied = follower.applied_seq
    finally:
        _teardown(follower, follower_server)
        _teardown(primary, primary_server)

    base = {
        "queries": len(baseline),
        "p50_s": _percentile(baseline, 0.50),
        "p99_s": _percentile(baseline, 0.99),
    }
    scale = {
        "queries": len(scaled),
        "p50_s": _percentile(scaled, 0.50),
        "p99_s": _percentile(scaled, 0.99),
        "replication_lag_records": lag,
        "follower_applied_seq": follower_applied,
    }
    assert base["p99_s"] is not None and scale["p99_s"] is not None
    bound = max(SCALEOUT_TOLERANCE * base["p99_s"], SCALEOUT_FLOOR_S)
    assert scale["p99_s"] <= bound, (
        f"follower query p99 {scale['p99_s'] * 1000:.1f}ms exceeds "
        f"{bound * 1000:.1f}ms (baseline "
        f"{base['p99_s'] * 1000:.1f}ms x {SCALEOUT_TOLERANCE:g})"
    )
    # The follower must actually be replicating, not idling empty.
    assert follower_applied > 0, "follower applied nothing during the run"

    lines = [
        f"Serve read scale-out ({SCALEOUT_SECONDS:g}s arms, primary "
        f"ingesting {SCALEOUT_RATE_PER_S:g} req/s x {BATCH} records)",
        "",
        f"{'arm':<22} {'queries':>8} {'p50_ms':>8} {'p99_ms':>8}",
        f"{'single-node':<22} {base['queries']:>8} "
        f"{base['p50_s'] * 1000:>8.2f} {base['p99_s'] * 1000:>8.2f}",
        f"{'follower (replica)':<22} {scale['queries']:>8} "
        f"{scale['p50_s'] * 1000:>8.2f} {scale['p99_s'] * 1000:>8.2f}",
        "",
        f"follower applied seq: {follower_applied}, "
        f"end-of-run lag: {lag} records",
        f"bound: p99 <= max({SCALEOUT_TOLERANCE:g} x baseline, "
        f"{SCALEOUT_FLOOR_S * 1000:g}ms)",
    ]
    write_report("serve_scaleout", "\n".join(lines))
    write_bench_json(
        "serve_scaleout",
        params={
            "arm_seconds": SCALEOUT_SECONDS,
            "ingest_rate_per_s": SCALEOUT_RATE_PER_S,
            "batch": BATCH,
            "tolerance": SCALEOUT_TOLERANCE,
            "floor_s": SCALEOUT_FLOOR_S,
        },
        wall_s=2 * SCALEOUT_SECONDS,
        events_per_s=(
            follower_applied / SCALEOUT_SECONDS if follower_applied else 0.0
        ),
        extra={"single_node": base, "follower": scale},
    )
