"""Table 2: the active DNS data set (Web sites and data points per gTLD)."""

from repro.core.report import render_table2
from repro.dns.openintel import OpenIntelPlatform


def test_table2_dns_dataset(benchmark, sim, write_report):
    platform = OpenIntelPlatform(sim.zones, sim.config.n_days)
    dataset = benchmark(platform.measure)
    text = render_table2(
        dataset.zone_stats, dataset.total_web_sites, dataset.total_data_points
    )
    write_report("table2", text)
    by_tld = {z.tld: z for z in dataset.zone_stats}
    assert set(by_tld) == {"com", "net", "org"}
    # .com dominates the namespace, as in the paper (173.7M of 210M).
    assert by_tld["com"].web_sites > by_tld["net"].web_sites
    assert by_tld["com"].web_sites > by_tld["org"].web_sites
    assert by_tld["com"].web_sites / dataset.total_web_sites > 0.7
    assert dataset.total_data_points > dataset.total_web_sites
