"""Figure 11: migration delay after long (>=4h, honeypot-observed) attacks."""

import os

import pytest

from repro.core.migration import MigrationAnalysis
from repro.core.report import render_delay_cdf


@pytest.fixture(scope="module")
def migration(sim, histories, intensity_model):
    return MigrationAnalysis(
        histories, sim.dps_usage.first_day_by_domain(), intensity_model
    )


def test_fig11_long_attack_migration(benchmark, migration, write_report):
    cdf = benchmark(migration.delay_cdf_long_attacks, 4 * 3600.0)
    write_report("fig11", render_delay_cdf({">=4h attacks": cdf}))
    # Paper: 67.64% migrate within a day, 76% within five days, with a
    # long tail (~18% take two weeks or more) — duration alone does not
    # decide. Durations come from the honeypot data only, because a
    # collapsing victim truncates telescope-observed durations. At paper
    # scale almost every migrating site accumulates *some* >=4h prior
    # event over 731 days, diluting the Wix cohort; the bounds relax there.
    paper_scale = os.environ.get("REPRO_BENCH_SCALE") == "paper"
    one_day_floor = 0.10 if paper_scale else 0.35
    five_day_floor = 0.15 if paper_scale else 0.5
    assert cdf.fraction_at_or_below(1) > one_day_floor
    assert cdf.fraction_at_or_below(5) > five_day_floor
    assert cdf.fraction_at_or_below(5) >= cdf.fraction_at_or_below(1)
