"""Table 9: normalized attack-intensity distribution over Web sites."""

from repro.core.intensity import intensity_percentile_table
from repro.core.report import render_table9


def test_table9_intensity_over_sites(
    benchmark, sim, histories, intensity_model, write_report
):
    def compute():
        site_intensity = [
            max(intensity_model.normalized(e) for e in history.events)
            for history in histories.values()
        ]
        return intensity_percentile_table(site_intensity)

    rows = benchmark(compute)
    write_report("table9", render_table9(rows))
    values = [v for _, v in rows]
    # Paper: 11.1% at 0.0, 95% <= 0.07, 99.9% <= 0.85 — a hard skew toward
    # tiny normalized intensities with a thin extreme tail.
    assert values == sorted(values)
    assert values[0] < 0.05
    # The 95th percentile sits below the extreme tail. (The paper reports
    # 0.07; simulation-scale co-hosting concentration shifts mass upward —
    # see EXPERIMENTS.md.)
    assert values[1] < 0.95
    assert values[-1] <= 1.0
