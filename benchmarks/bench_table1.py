"""Table 1: DoS attack events data (events/targets//24s//16s/ASNs)."""

from repro.core.report import render_table1


def test_table1_summary(benchmark, sim, write_report):
    rows = benchmark(sim.fused.summary_rows)
    text = render_table1(rows)
    write_report("table1", text)
    by_source = {r["source"]: r for r in rows}
    combined = by_source["Combined"]
    assert combined["events"] > 0
    assert combined["targets"] >= combined["slash24s"] >= combined["slash16s"]
    # Headline ratio: attacked share of the active /24 census.
    fraction = sim.census.attacked_fraction(
        sim.fused.combined.unique_slash24s()
    )
    write_report(
        "table1_headline",
        f"active /24s attacked at least once: {fraction:.1%} "
        f"(paper: ~33% of ~6.5M active /24s)",
    )
