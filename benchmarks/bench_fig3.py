"""Figure 3: intensity CDF of telescope events (max pps, x256 to victim)."""

from repro.core.distributions import intensity_cdf
from repro.core.report import render_intensity_cdf


def test_fig3_telescope_intensity(benchmark, sim, write_report):
    cdf = benchmark(intensity_cdf, sim.fused.telescope.events)
    write_report("fig3", render_intensity_cdf(cdf, "Telescope (Figure 3)"))
    # Paper: ~70% of attacks peak at <=2 backscatter pps; ~17% exceed
    # 10 pps; mean 107, median 1 — a steep curve with a heavy tail.
    assert cdf.fraction_at_or_below(2.0) > 0.25
    assert cdf.fraction_at_or_below(10.0) > 0.6
    assert 1.0 - cdf.fraction_at_or_below(10.0) > 0.03
    assert cdf.mean > 3 * cdf.median
