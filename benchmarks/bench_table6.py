"""Table 6: reflection protocol distribution in the honeypot data."""

from repro.core.rankings import reflection_protocol_distribution
from repro.core.report import render_table6


def test_table6_reflection_protocols(benchmark, sim, write_report):
    entries = benchmark(reflection_protocol_distribution, sim.fused.honeypot)
    write_report("table6", render_table6(entries))
    # Paper: NTP 40.08%, DNS 26.17%, CharGen 22.37%, SSDP 8.38%, RIPv1 2.27%.
    order = [e.key for e in entries]
    assert order[0] == "NTP"
    assert set(order[:3]) == {"NTP", "DNS", "CharGen"}
    shares = {e.key: e.share for e in entries}
    assert 0.30 < shares["NTP"] < 0.60
    assert shares["DNS"] > shares.get("SSDP", 0.0)
    assert shares.get("SSDP", 0.0) > shares.get("RIPv1", 0.0)
