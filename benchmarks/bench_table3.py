"""Table 3: Web sites per DDoS Protection Service provider."""

from repro.core.report import render_table3
from repro.dps.detection import DPSDetector


def test_table3_dps_use(benchmark, sim, write_report):
    detector = DPSDetector(sim.providers, diversion_log=sim.diversion_log)
    dataset = benchmark(detector.scan, sim.zones, sim.config.n_days)
    counts = dataset.provider_site_counts()
    write_report("table3", render_table3(counts))
    # All ten providers are detectable; market-share order holds at the top.
    assert counts.get("Neustar", 0) >= counts.get("CenturyLink", 0)
    assert counts.get("Neustar", 0) >= counts.get("Level3", 0)
    assert counts.get("VirtualRoad", 0) <= min(
        counts.get("Neustar", 1), counts.get("DOSarrest", 1)
    )
    assert sum(counts.values()) == len(dataset.first_day_by_domain())
