"""Unit tests for zone generation."""

import pytest

from repro.dns.zone import (
    Zone,
    ZoneConfig,
    ZoneGenerator,
    domains_by_hoster,
)
from repro.internet.hosting import HostingConfig, HostingEcosystem
from repro.internet.topology import InternetTopology, TopologyConfig


@pytest.fixture(scope="module")
def ecosystem():
    topology = InternetTopology.generate(TopologyConfig(seed=51, n_ases=60))
    return HostingEcosystem.generate(topology, HostingConfig(seed=52))


@pytest.fixture(scope="module")
def zones_and_gen(ecosystem):
    generator = ZoneGenerator(
        ecosystem, ZoneConfig(seed=53, n_domains=1500, n_days=60)
    )
    return generator.generate(), generator


class TestGeneration:
    def test_three_tlds(self, zones_and_gen):
        zones, _ = zones_and_gen
        assert {z.tld for z in zones} == {"com", "net", "org"}

    def test_com_dominates(self, zones_and_gen):
        zones, _ = zones_and_gen
        by_tld = {z.tld: len(z) for z in zones}
        assert by_tld["com"] > by_tld["net"] > 0
        assert by_tld["com"] > by_tld["org"] > 0
        assert by_tld["com"] / 1500 > 0.7

    def test_total_domain_count(self, zones_and_gen):
        zones, _ = zones_and_gen
        assert sum(len(z) for z in zones) == 1500

    def test_most_domains_have_www(self, zones_and_gen):
        zones, _ = zones_and_gen
        total = sum(len(z) for z in zones)
        web = sum(len(list(z.web_domains())) for z in zones)
        assert 0.8 < web / total < 0.95

    def test_every_domain_has_initial_state(self, zones_and_gen):
        zones, _ = zones_and_gen
        for zone in zones:
            for domain in zone.domains:
                assert domain.state_on(domain.registered_day) is not None

    def test_some_registered_during_window(self, zones_and_gen):
        zones, _ = zones_and_gen
        late = [
            d for z in zones for d in z.domains if d.registered_day > 0
        ]
        assert 0.05 < len(late) / 1500 < 0.25

    def test_self_hosted_ips_tracked(self, zones_and_gen):
        zones, generator = zones_and_gen
        self_hosted = generator.self_hosted_web_ips()
        assert self_hosted
        assert len(set(self_hosted)) == len(self_hosted)

    def test_cloud_platform_customers_get_cnames(self, zones_and_gen, ecosystem):
        zones, _ = zones_and_gen
        wix = ecosystem.hoster_by_name("Wix")
        wix_domains = [
            d
            for z in zones
            for d in z.domains
            if d.states()[0].hoster == "Wix"
        ]
        assert wix_domains
        for domain in wix_domains:
            state = domain.states()[0]
            assert state.cname is not None
            assert state.cname.endswith(wix.cname_suffix)
            assert state.ip in wix.ips

    def test_native_platform_customers_have_no_cname(self, zones_and_gen):
        zones, _ = zones_and_gen
        godaddy_domains = [
            d
            for z in zones
            for d in z.domains
            if d.states()[0].hoster == "GoDaddy"
        ]
        assert godaddy_domains
        assert all(d.states()[0].cname is None for d in godaddy_domains)

    def test_deterministic(self):
        """Same seeds + fresh ecosystems -> identical zones. (Zone
        generation consumes the ecosystem's self-hosting allocator, so the
        ecosystem must be rebuilt, not reused.)"""
        def build():
            topology = InternetTopology.generate(
                TopologyConfig(seed=54, n_ases=40)
            )
            eco = HostingEcosystem.generate(topology, HostingConfig(seed=55))
            config = ZoneConfig(seed=99, n_domains=200, n_days=10)
            return ZoneGenerator(eco, config).generate()

        a = build()
        b = build()
        ips_a = [d.states()[0].ip for z in a for d in z.domains]
        ips_b = [d.states()[0].ip for z in b for d in z.domains]
        assert ips_a == ips_b


class TestValidation:
    def test_rejects_zero_domains(self, ecosystem):
        with pytest.raises(ValueError):
            ZoneGenerator(ecosystem, ZoneConfig(n_domains=0))

    def test_rejects_bad_shares(self, ecosystem):
        with pytest.raises(ValueError):
            ZoneGenerator(
                ecosystem,
                ZoneConfig(tld_shares={"com": 0.5, "net": 0.1}),
            )


class TestGrouping:
    def test_domains_by_hoster(self, zones_and_gen):
        zones, _ = zones_and_gen
        grouped = domains_by_hoster(zones)
        assert None in grouped  # self-hosted
        assert "GoDaddy" in grouped
        total = sum(len(v) for v in grouped.values())
        assert total == 1500
