"""Equivalence tests for the hot-path engine.

Every fast path introduced by the performance layer must be a drop-in
replacement: columnar detection, heap-indexed flow expiry, the packed
LPM/hosting lookups, chunked JSONL serialization, the zlib checkpoint
codec and the cross-run stage cache are each pinned against their
reference implementation — identical events, identical lookups,
identical bytes — across seeded scenarios, randomized streams and
injected fault plans.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults.injectors import FaultInjectorSet
from repro.faults.plan import FaultPlan
from repro.honeypot.amppot import RequestBatch
from repro.honeypot.columnar import RequestColumns
from repro.honeypot.detection import (
    DetectionConfig,
    HoneypotDetector,
    detect_columns as detect_honeypot_columns,
)
from repro.net.columnar import PacketColumns
from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP, PacketBatch
from repro.net.protocols import REFLECTION_PROTOCOLS
from repro.pipeline import datasets
from repro.pipeline.datasets import (
    QuarantinedRecord,
    event_to_dict,
    save_events_jsonl,
    write_quarantine_jsonl,
    _atomic_text_writer,
)
from repro.pipeline.runner import OBSERVATION_STAGES, run_resilient
from repro.pipeline.simulation import (
    detect_honeypot_shard,
    detect_telescope_shard,
    honeypot_capture,
    observe_honeypots,
    observe_telescope,
    telescope_capture,
)
from repro.store.checkpoint import (
    CheckpointCorruptionError,
    CheckpointStore,
    CheckpointVersionError,
)
from repro.store.stagecache import CACHE_MISS, StageCache, stage_fingerprint
from repro.telescope.rsdos import (
    RSDoSDetector,
    detect_columns as detect_telescope_columns,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


# -- shared captures ----------------------------------------------------------


@pytest.fixture(scope="module")
def capture(small_config, sim):
    return telescope_capture(small_config, sim.ground_truth)


@pytest.fixture(scope="module")
def request_log(small_config, sim):
    return honeypot_capture(small_config, sim.ground_truth)


# -- columnar codecs ----------------------------------------------------------


class TestColumnarCodecs:
    def test_packet_columns_round_trip(self, capture):
        columns = PacketColumns.from_batches(capture)
        assert columns.to_batches() == capture
        assert len(columns) == len(capture)

    def test_request_columns_round_trip(self, request_log):
        columns = RequestColumns.from_batches(request_log)
        assert columns.to_batches() == request_log
        assert len(columns) == len(request_log)

    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_telescope_detection_equivalent(
        self, small_config, capture, n_shards
    ):
        columns = PacketColumns.from_batches(capture)
        for shard in range(n_shards):
            assert detect_telescope_shard(
                small_config, columns, shard, n_shards
            ) == detect_telescope_shard(small_config, capture, shard, n_shards)

    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_honeypot_detection_equivalent(
        self, small_config, request_log, n_shards
    ):
        columns = RequestColumns.from_batches(request_log)
        for shard in range(n_shards):
            assert detect_honeypot_shard(
                small_config, columns, shard, n_shards
            ) == detect_honeypot_shard(
                small_config, request_log, shard, n_shards
            )

    def test_observation_stages_codec_identical(self, small_config, sim):
        ground_truth = sim.ground_truth
        assert observe_telescope(
            small_config, ground_truth, codec="columnar"
        ) == observe_telescope(small_config, ground_truth, codec="object")
        assert observe_honeypots(
            small_config, ground_truth, codec="columnar"
        ) == observe_honeypots(small_config, ground_truth, codec="object")

    def test_equivalent_under_fault_plan(self, small_config, sim):
        plan = FaultPlan.standard(
            small_config.n_days, n_honeypots=small_config.n_honeypots
        )
        injectors = FaultInjectorSet(plan)
        degraded = telescope_capture(
            small_config, sim.ground_truth, fault=injectors.telescope
        )
        columns = PacketColumns.from_batches(degraded)
        assert detect_telescope_columns(
            small_config.rsdos_config(), columns
        ) == list(
            RSDoSDetector(small_config.rsdos_config()).run(iter(degraded))
        )
        degraded_log = honeypot_capture(
            small_config, sim.ground_truth, fault=injectors.honeypot
        )
        log_columns = RequestColumns.from_batches(degraded_log)
        assert detect_honeypot_columns(
            small_config.honeypot_detection_config(), log_columns
        ) == list(
            HoneypotDetector(
                small_config.honeypot_detection_config()
            ).run(iter(degraded_log))
        )

    def test_unknown_codec_rejected(self, small_config, sim):
        with pytest.raises(ValueError, match="codec"):
            telescope_capture(small_config, sim.ground_truth, codec="bogus")
        with pytest.raises(ValueError, match="codec"):
            honeypot_capture(small_config, sim.ground_truth, codec="bogus")


# -- heap-indexed expiry ------------------------------------------------------


def _random_backscatter(seed: int, n: int = 4000):
    """A time-sorted stream of synthetic backscatter batches."""
    rng = random.Random(seed)
    ts = 0.0
    batches = []
    for _ in range(n):
        ts += rng.expovariate(1 / 5.0)
        proto = rng.choice((PROTO_TCP, PROTO_ICMP, PROTO_UDP))
        batches.append(
            PacketBatch(
                timestamp=ts,
                src=rng.randrange(12),
                proto=proto,
                count=rng.randrange(1, 50),
                bytes=rng.randrange(40, 4000),
                distinct_dsts=rng.randrange(1, 8),
                src_ports=frozenset(
                    rng.sample(range(1024), rng.randrange(1, 4))
                ),
                tcp_flags=0x12 if proto == PROTO_TCP else 0,
                icmp_type=0 if proto == PROTO_ICMP else -1,
            )
        )
    return batches


def _random_requests(seed: int, n: int = 4000):
    rng = random.Random(seed)
    protocols = sorted(REFLECTION_PROTOCOLS)
    ts = 0.0
    batches = []
    for _ in range(n):
        ts += rng.expovariate(1 / 300.0)
        batches.append(
            RequestBatch(
                timestamp=ts,
                victim=rng.randrange(30),
                honeypot_id=rng.randrange(24),
                protocol=rng.choice(protocols),
                count=rng.randrange(1, 400),
            )
        )
    return batches


class TestIndexedExpiry:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_telescope_heap_matches_scan_random(self, seed):
        from repro.telescope.rsdos import RSDoSConfig

        # Permissive thresholds so the randomized flows actually emit
        # events — otherwise both paths trivially agree on nothing.
        config = RSDoSConfig(
            min_packets=3, min_duration=10.0, min_max_pps=0.01
        )
        batches = _random_backscatter(seed)
        indexed = list(
            RSDoSDetector(config, indexed=True).run(iter(batches))
        )
        reference = list(
            RSDoSDetector(config, indexed=False).run(iter(batches))
        )
        assert indexed
        assert indexed == reference

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_honeypot_heap_matches_scan_random(self, seed):
        config = DetectionConfig(gap_timeout=1800.0, min_requests=10)
        batches = _random_requests(seed)
        indexed = list(
            HoneypotDetector(config, indexed=True).run(iter(batches))
        )
        reference = list(
            HoneypotDetector(config, indexed=False).run(iter(batches))
        )
        assert indexed
        assert indexed == reference

    def test_telescope_heap_matches_scan_scenario(
        self, small_config, capture
    ):
        config = small_config.rsdos_config()
        assert list(
            RSDoSDetector(config, indexed=True).run(iter(capture))
        ) == list(RSDoSDetector(config, indexed=False).run(iter(capture)))

    def test_honeypot_heap_matches_scan_scenario(
        self, small_config, request_log
    ):
        config = small_config.honeypot_detection_config()
        assert list(
            HoneypotDetector(config, indexed=True).run(iter(request_log))
        ) == list(
            HoneypotDetector(config, indexed=False).run(iter(request_log))
        )


# -- packed lookups -----------------------------------------------------------


class TestPackedLookups:
    def test_lpm_matches_reference(self, sim):
        routing = sim.topology.routing
        rng = random.Random(11)
        for _ in range(5000):
            address = rng.randrange(1 << 32)
            assert routing.lookup(address) == routing.lookup_reference(
                address
            )

    def test_lpm_rebuilds_after_withdraw(self, sim):
        routing = sim.topology.routing
        prefix, asn = next(iter(routing.announced_prefixes()))
        address = prefix.network
        assert routing.lookup(address) is not None
        routing.withdraw(prefix)
        assert routing.lookup(address) == routing.lookup_reference(address)
        routing.announce(prefix, asn)
        assert routing.lookup(address) == routing.lookup_reference(address)

    def test_hosting_count_matches_reference(self, sim, small_config):
        index = sim.web_index
        rng = random.Random(12)
        targets = [e.target for e in sim.fused.combined.events]
        for _ in range(5000):
            ip = rng.choice(targets)
            day = rng.randrange(small_config.n_days)
            assert index.count_on(ip, day) == index.count_on_reference(
                ip, day
            )


# -- chunked serialization ----------------------------------------------------


class TestChunkedSerialization:
    def _reference_events(self, events, path):
        with _atomic_text_writer(path) as handle:
            for event in events:
                handle.write(json.dumps(event_to_dict(event)) + "\n")

    def test_events_byte_identical(self, sim, tmp_path):
        events = sim.fused.combined.events
        self._reference_events(events, tmp_path / "ref.jsonl")
        save_events_jsonl(events, tmp_path / "fast.jsonl")
        assert (tmp_path / "fast.jsonl").read_bytes() == (
            tmp_path / "ref.jsonl"
        ).read_bytes()

    def test_events_byte_identical_across_chunks(
        self, sim, tmp_path, monkeypatch
    ):
        # A tiny chunk size forces many joins, covering the chunk
        # boundary and the trailing partial chunk.
        monkeypatch.setattr(datasets, "WRITE_CHUNK_LINES", 7)
        events = sim.fused.combined.events[:100]
        self._reference_events(events, tmp_path / "ref.jsonl")
        assert save_events_jsonl(events, tmp_path / "fast.jsonl") == 100
        assert (tmp_path / "fast.jsonl").read_bytes() == (
            tmp_path / "ref.jsonl"
        ).read_bytes()

    def test_quarantine_byte_identical(self, tmp_path, monkeypatch):
        monkeypatch.setattr(datasets, "WRITE_CHUNK_LINES", 4)
        records = [
            QuarantinedRecord(line_no=i, reason="parse-error", raw=f"x{i}")
            for i in range(11)
        ]
        with _atomic_text_writer(tmp_path / "ref.jsonl") as handle:
            for record in records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True))
                handle.write("\n")
        assert write_quarantine_jsonl(records, tmp_path / "fast.jsonl") == 11
        assert (tmp_path / "fast.jsonl").read_bytes() == (
            tmp_path / "ref.jsonl"
        ).read_bytes()

    def test_empty_inputs(self, tmp_path):
        assert save_events_jsonl([], tmp_path / "events.jsonl") == 0
        assert (tmp_path / "events.jsonl").read_bytes() == b""
        assert write_quarantine_jsonl([], tmp_path / "q.jsonl") == 0
        assert (tmp_path / "q.jsonl").read_bytes() == b""


# -- zlib checkpoint codec ----------------------------------------------------


class TestCheckpointCodec:
    PAYLOAD = {"events": list(range(3000)), "tag": "x" * 500}

    def test_zlib_round_trip_and_compression(self, tmp_path):
        plain = CheckpointStore(tmp_path / "plain")
        packed = CheckpointStore(tmp_path / "zlib", codec="zlib")
        m_plain = plain.save("attacks", self.PAYLOAD)
        m_packed = packed.save("attacks", self.PAYLOAD)
        assert m_packed.codec == "zlib"
        assert m_packed.payload_bytes < m_plain.payload_bytes
        assert packed.load("attacks") == self.PAYLOAD

    def test_codec_read_from_manifest_not_store(self, tmp_path):
        # A store constructed with the default codec must still read a
        # zlib entry: the manifest, not the reader, names the encoding.
        CheckpointStore(tmp_path, codec="zlib").save("attacks", self.PAYLOAD)
        assert CheckpointStore(tmp_path).load("attacks") == self.PAYLOAD

    def test_legacy_manifest_defaults_to_pickle(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("attacks", self.PAYLOAD)
        manifest_path = store.manifest_path("attacks")
        document = json.loads(manifest_path.read_text())
        del document["codec"]
        manifest_path.write_text(json.dumps(document))
        assert store.load("attacks") == self.PAYLOAD

    def test_unknown_codec_is_version_skew(self, tmp_path):
        store = CheckpointStore(tmp_path, codec="zlib")
        store.save("attacks", self.PAYLOAD)
        manifest_path = store.manifest_path("attacks")
        document = json.loads(manifest_path.read_text())
        document["codec"] = "lz4"
        manifest_path.write_text(json.dumps(document))
        with pytest.raises(CheckpointVersionError, match="lz4"):
            store.load("attacks")

    def test_corrupt_compressed_payload_detected(self, tmp_path):
        store = CheckpointStore(tmp_path, codec="zlib")
        store.save("attacks", self.PAYLOAD)
        payload_path = store.payload_path("attacks")
        data = bytearray(payload_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        payload_path.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptionError):
            store.load("attacks")

    def test_unknown_store_codec_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="codec"):
            CheckpointStore(tmp_path, codec="gzip")


# -- cross-run stage cache ----------------------------------------------------


class TestStageFingerprint:
    def test_sensitive_to_every_input(self, small_config):
        base = stage_fingerprint(small_config, "telescope")
        assert stage_fingerprint(small_config, "telescope") == base
        assert stage_fingerprint(small_config, "honeypot") != base
        assert stage_fingerprint(small_config, "telescope", n_shards=3) != base
        assert (
            stage_fingerprint(
                small_config, "telescope", capture_codec="columnar"
            )
            != base
        )
        reseeded = small_config.with_seed(small_config.seed + 1)
        assert stage_fingerprint(reseeded, "telescope") != base


class TestStageCache:
    PAYLOAD = ["event"] * 64

    def test_miss_then_hit_round_trip(self, tmp_path, small_config):
        cache = StageCache(tmp_path)
        fingerprint = stage_fingerprint(small_config, "telescope")
        assert cache.get("telescope", fingerprint) is CACHE_MISS
        cache.put("telescope", fingerprint, self.PAYLOAD)
        assert cache.get("telescope", fingerprint) == self.PAYLOAD
        assert cache.entries() == [("telescope", fingerprint[:16])]

    def test_poisoned_payload_is_a_miss(self, tmp_path, small_config):
        cache = StageCache(tmp_path)
        fingerprint = stage_fingerprint(small_config, "telescope")
        cache.put("telescope", fingerprint, self.PAYLOAD)
        payload_path = cache.payload_path("telescope", fingerprint)
        data = bytearray(payload_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        payload_path.write_bytes(bytes(data))
        assert cache.get("telescope", fingerprint) is CACHE_MISS

    def test_stale_fingerprint_is_a_miss(self, tmp_path, small_config):
        # Same filename prefix, different full fingerprint in the
        # manifest: the entry belongs to another scenario and must not
        # be served.
        cache = StageCache(tmp_path)
        fingerprint = stage_fingerprint(small_config, "telescope")
        cache.put("telescope", fingerprint, self.PAYLOAD)
        manifest_path = cache.manifest_path("telescope", fingerprint)
        document = json.loads(manifest_path.read_text())
        document["fingerprint"] = "0" * 64
        manifest_path.write_text(json.dumps(document))
        assert cache.get("telescope", fingerprint) is CACHE_MISS

    def test_schema_skew_is_a_miss(self, tmp_path, small_config):
        cache = StageCache(tmp_path)
        fingerprint = stage_fingerprint(small_config, "telescope")
        cache.put("telescope", fingerprint, self.PAYLOAD)
        manifest_path = cache.manifest_path("telescope", fingerprint)
        document = json.loads(manifest_path.read_text())
        document["schema_version"] = 999
        manifest_path.write_text(json.dumps(document))
        assert cache.get("telescope", fingerprint) is CACHE_MISS

    def test_warm_run_hits_and_matches(self, tmp_path, small_config):
        cache_dir = tmp_path / "cache"
        cold = run_resilient(small_config, stage_cache=cache_dir)
        warm = run_resilient(small_config, stage_cache=cache_dir)
        assert warm.fused.combined.events == cold.fused.combined.events
        warm_status = {
            s.name: s.status for s in warm.quality.stages
        }
        for stage in OBSERVATION_STAGES:
            assert warm_status[stage] == "cache-hit"
        assert all(
            s.status == "ok" for s in cold.quality.stages
        )

    def test_faulted_plan_bypasses_cache(self, tmp_path, small_config):
        plan = FaultPlan.standard(
            small_config.n_days, n_honeypots=small_config.n_honeypots
        )
        cache_dir = tmp_path / "cache"
        run_resilient(small_config, plan=plan, stage_cache=cache_dir)
        assert list(cache_dir.glob("*.manifest.json")) == []


class TestStageCacheCLI:
    """Crash mid-run with the cache enabled, resume, then re-run warm."""

    @staticmethod
    def run_cli(*args, check_rc=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--preset", "small", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
            timeout=300,
        )
        if check_rc is not None:
            assert proc.returncode == check_rc, proc.stderr
        return proc

    def test_resume_fills_cache_and_warm_run_hits(self, tmp_path):
        cache = tmp_path / "cache"
        crash_dir = tmp_path / "run_crash"
        warm_dir = tmp_path / "run_warm"
        # Crash right after the attacks stage: no observation stage has
        # run yet, so the cache is still cold.
        self.run_cli(
            "simulate", "--run-dir", str(crash_dir),
            "--stage-cache", str(cache), "--crash-after", "attacks",
            check_rc=137,
        )
        assert list(cache.glob("*.manifest.json")) == []
        # Resume finishes the run and publishes the observation stages.
        self.run_cli("resume", str(crash_dir), check_rc=0)
        cached = {stage for stage, _ in StageCache(cache).entries()}
        assert set(OBSERVATION_STAGES) <= cached
        # A second run dir starts cold but serves them from the cache.
        self.run_cli(
            "simulate", "--run-dir", str(warm_dir),
            "--stage-cache", str(cache), "--metrics", check_rc=0,
        )
        quality = json.loads((warm_dir / "quality.json").read_text())
        statuses = {s["name"]: s["status"] for s in quality["stages"]}
        for stage in OBSERVATION_STAGES:
            assert statuses[stage] == "cache-hit"
        metrics = json.loads(
            (warm_dir / "metrics.json").read_text()
        )["metrics"]
        hits = sum(
            series["value"]
            for series in metrics["stage_cache_hits_total"]["series"]
        )
        assert hits == len(OBSERVATION_STAGES)
        assert (warm_dir / "events.jsonl").read_bytes() == (
            crash_dir / "events.jsonl"
        ).read_bytes()
