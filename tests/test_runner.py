"""Unit and integration tests for the resilient stage runner.

The expensive full-pipeline cases reuse the session ``sim`` fixture as the
fault-free reference and run the small scenario through
:class:`ResilientPipeline` under various plans.
"""

import pytest

from repro.faults.plan import (
    ALL_FEEDS,
    FEED_DPS,
    FEED_HONEYPOT,
    FEED_OPENINTEL,
    FEED_TELESCOPE,
    FaultPlan,
    FaultPlanConfig,
)
from repro.pipeline.quality import (
    HeadlineMetrics,
    STATUS_DOWN,
    STATUS_OK,
)
from repro.pipeline.runner import (
    ResilientPipeline,
    RetryPolicy,
    StageFailedError,
    STAGE_ORDER,
    TransientStageError,
    run_resilient,
)


def no_sleep(_delay):
    pass


class TestRetryPolicy:
    def test_backoff_grows(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=0.1,
                             backoff_factor=2.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestHealthyRun:
    def test_matches_plain_simulation(self, small_config, sim):
        result = run_resilient(small_config, sleep=no_sleep)
        assert len(result.fused.combined) == len(sim.fused.combined)
        assert len(result.telescope_events) == len(sim.telescope_events)
        assert len(result.honeypot_events) == len(sim.honeypot_events)
        assert result.quality is not None
        assert not result.quality.degraded
        for feed in ALL_FEEDS:
            assert result.quality.feed(feed).status == STATUS_OK
        assert [s.name for s in result.quality.stages] == list(STAGE_ORDER)
        assert all(s.status == "ok" for s in result.quality.stages)

    def test_plan_window_mismatch_rejected(self, small_config):
        with pytest.raises(ValueError):
            ResilientPipeline(
                small_config,
                plan=FaultPlan.none(small_config.n_days + 1),
            )


class TestTransientFailures:
    def _plan(self, small_config, failures):
        return FaultPlan.generate(
            FaultPlanConfig(
                seed=1,
                n_days=small_config.n_days,
                n_honeypots=small_config.n_honeypots,
                telescope_outage_rate=0.0,
                honeypot_churn_rate=0.0,
                openintel_miss_rate=0.0,
                dps_corruption_rate=0.0,
                transient_failures=failures,
            )
        )

    def test_retry_recovers(self, small_config, sim):
        slept = []
        plan = self._plan(small_config, {"telescope": 2})
        pipeline = ResilientPipeline(
            small_config, plan=plan,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01),
            sleep=slept.append,
        )
        result = pipeline.run()
        stage = {s.name: s for s in result.quality.stages}["telescope"]
        assert stage.status == "ok"
        assert stage.attempts == 3
        # Exponential backoff: one sleep per failed attempt.
        assert slept == pytest.approx([0.01, 0.02])
        # Recovered stage produces the exact healthy output.
        assert len(result.telescope_events) == len(sim.telescope_events)

    def test_feed_stage_degrades_to_empty(self, small_config):
        plan = self._plan(small_config, {"honeypot": 99})
        result = ResilientPipeline(
            small_config, plan=plan,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            sleep=no_sleep,
        ).run()
        assert result.honeypot_events == []
        quality = result.quality.feed(FEED_HONEYPOT)
        assert quality.status == STATUS_DOWN
        assert "stage failed permanently" in quality.detail
        stage = {s.name: s for s in result.quality.stages}["honeypot"]
        assert stage.status == "degraded"
        # The rest of the pipeline still completed.
        assert len(result.telescope_events) > 0

    def test_measurement_stage_degrades_typed_empty(self, small_config):
        plan = self._plan(small_config, {"measurement": 99})
        result = ResilientPipeline(
            small_config, plan=plan,
            retry=RetryPolicy(max_attempts=1), sleep=no_sleep,
        ).run()
        assert result.openintel.hosting_intervals == []
        assert result.openintel.n_days == small_config.n_days
        assert result.dps_usage.usages == []
        assert result.quality.feed(FEED_OPENINTEL).status == STATUS_DOWN
        assert result.quality.headline is not None

    def test_core_stage_failure_fatal_then_resumable(self, small_config):
        plan = self._plan(small_config, {"attacks": 3})
        pipeline = ResilientPipeline(
            small_config, plan=plan,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            sleep=no_sleep,
        )
        with pytest.raises(StageFailedError) as excinfo:
            pipeline.run()
        assert excinfo.value.stage == "attacks"
        # Resume: the internet stage is checkpointed, the one remaining
        # injected failure is absorbed by a retry, and the run completes.
        result = pipeline.run()
        stages = {s.name: s for s in result.quality.stages}
        assert stages["internet"].status == "cached"
        assert stages["attacks"].status == "ok"
        assert stages["attacks"].attempts == 2
        assert len(result.fused.combined) > 0


class TestFeedDownSweep:
    @pytest.fixture(scope="class")
    def baseline(self, sim):
        return HeadlineMetrics.from_result(sim)

    def test_telescope_down(self, small_config, baseline):
        plan = FaultPlan.feed_down(
            FEED_TELESCOPE, small_config.n_days, small_config.n_honeypots
        )
        result = run_resilient(
            small_config, plan=plan, baseline=baseline, sleep=no_sleep
        )
        assert result.telescope_events == []
        assert len(result.honeypot_events) > 0
        quality = result.quality.feed(FEED_TELESCOPE)
        assert quality.uptime == 0.0 and quality.status == STATUS_DOWN
        drift = result.quality.headline_drift()
        assert drift["attacked_slash24_fraction"] > 0

    def test_honeypot_down(self, small_config, baseline):
        plan = FaultPlan.feed_down(
            FEED_HONEYPOT, small_config.n_days, small_config.n_honeypots
        )
        result = run_resilient(
            small_config, plan=plan, baseline=baseline, sleep=no_sleep
        )
        assert result.honeypot_events == []
        assert result.quality.feed(FEED_HONEYPOT).status == STATUS_DOWN

    def test_openintel_down(self, small_config, baseline):
        plan = FaultPlan.feed_down(
            FEED_OPENINTEL, small_config.n_days, small_config.n_honeypots
        )
        result = run_resilient(
            small_config, plan=plan, baseline=baseline, sleep=no_sleep
        )
        assert result.openintel.hosting_intervals == []
        assert result.openintel.first_seen == {}
        assert result.quality.feed(FEED_OPENINTEL).status == STATUS_DOWN
        # No Web index left: the site-impact ratio collapses to zero.
        assert result.quality.headline.attacked_site_fraction == 0.0

    def test_dps_down(self, small_config, baseline):
        plan = FaultPlan.feed_down(
            FEED_DPS, small_config.n_days, small_config.n_honeypots
        )
        result = run_resilient(
            small_config, plan=plan, baseline=baseline, sleep=no_sleep
        )
        quality = result.quality.feed(FEED_DPS)
        assert quality.status == STATUS_DOWN
        assert len(result.dps_usage.usages) < quality.events_dropped + 1


class TestReportDeterminism:
    def test_identical_reports_across_runs(self, small_config):
        plan = FaultPlan.standard(
            small_config.n_days, seed=7, n_honeypots=small_config.n_honeypots
        )
        renders = []
        for _ in range(2):
            result = run_resilient(small_config, plan=plan, sleep=no_sleep)
            renders.append(result.quality.render())
        assert renders[0] == renders[1]
