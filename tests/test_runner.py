"""Unit and integration tests for the resilient stage runner.

The expensive full-pipeline cases reuse the session ``sim`` fixture as the
fault-free reference and run the small scenario through
:class:`ResilientPipeline` under various plans.
"""

import pytest

from repro.core.events import AttackEvent, SOURCE_TELESCOPE
from repro.exec.breaker import BREAKER_OPEN
from repro.exec.deadline import RunDeadline, RunDeadlineExceeded
from repro.exec.interrupt import InterruptGuard, RunInterrupted
from repro.exec.pool import ExecConfig
from repro.exec.shard import shard_checkpoint_name
from repro.faults.exec import ExecFaultPlan, KIND_CRASH, KIND_HUNG, KIND_POISON
from repro.faults.fileio import flip_bits
from repro.faults.plan import (
    ALL_FEEDS,
    FEED_DPS,
    FEED_HONEYPOT,
    FEED_OPENINTEL,
    FEED_TELESCOPE,
    FaultPlan,
    FaultPlanConfig,
)
from repro.pipeline.datasets import read_events_jsonl, save_events_jsonl
from repro.pipeline.quality import (
    HeadlineMetrics,
    STATUS_DOWN,
    STATUS_OK,
)
from repro.pipeline.runner import (
    ResilientPipeline,
    RetryPolicy,
    StageFailedError,
    STAGE_ORDER,
    TransientStageError,
    run_resilient,
)
from repro.store import CheckpointStore


def no_sleep(_delay):
    pass


class TestRetryPolicy:
    def test_backoff_grows(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=0.1,
                             backoff_factor=2.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_max=-1.0)

    def test_delay_capped(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=10.0,
                             backoff_max=5.0)
        assert policy.delay(1) == pytest.approx(1.0)
        assert policy.delay(2) == pytest.approx(5.0)
        assert policy.delay(9) == pytest.approx(5.0)

    def test_delay_never_overflows_at_high_attempt_counts(self):
        """2.0 ** 2000 raises OverflowError; the cap must absorb it."""
        policy = RetryPolicy(backoff_base=0.05, backoff_factor=2.0,
                             backoff_max=30.0)
        for attempt in (100, 1030, 10_000, 10**6):
            assert policy.delay(attempt) == pytest.approx(30.0)

    def test_zero_base_is_free(self):
        policy = RetryPolicy(backoff_base=0.0)
        assert policy.delay(1) == 0.0
        assert policy.delay(10**9) == 0.0


class TestDecorrelatedJitter:
    def test_off_by_default_keeps_exponential_sequence(self):
        plain = RetryPolicy(max_attempts=5, backoff_base=0.1)
        assert not plain.jitter
        assert plain.delays() == [
            pytest.approx(0.1), pytest.approx(0.2),
            pytest.approx(0.4), pytest.approx(0.8),
        ]

    def test_same_seed_same_sequence(self):
        a = RetryPolicy(max_attempts=6, backoff_base=0.1, jitter=True,
                        jitter_seed=42)
        b = RetryPolicy(max_attempts=6, backoff_base=0.1, jitter=True,
                        jitter_seed=42)
        assert a.delays() == b.delays()
        # And each delay(n) call is self-consistent with the sequence.
        for attempt in range(1, 6):
            assert a.delay(attempt) == a.delays()[attempt - 1]

    def test_different_seeds_decorrelate(self):
        a = RetryPolicy(max_attempts=6, backoff_base=0.1, jitter=True,
                        jitter_seed=1)
        b = RetryPolicy(max_attempts=6, backoff_base=0.1, jitter=True,
                        jitter_seed=2)
        assert a.delays() != b.delays()

    def test_jitter_bounded_by_base_and_cap(self):
        policy = RetryPolicy(max_attempts=30, backoff_base=0.1,
                             backoff_max=2.0, jitter=True, jitter_seed=7)
        for delay in policy.delays(29):
            assert 0.1 <= delay <= 2.0

    def test_jitter_spreads_within_decorrelated_envelope(self):
        """Each delay lies in [base, 3 * previous delay], capped."""
        policy = RetryPolicy(max_attempts=10, backoff_base=0.1,
                             backoff_max=60.0, jitter=True, jitter_seed=3)
        delays = policy.delays(9)
        previous = policy.backoff_base
        for delay in delays:
            assert delay <= min(
                policy.backoff_max,
                previous * RetryPolicy.JITTER_SPREAD,
            ) + 1e-12
            previous = delay

    def test_zero_base_still_free_with_jitter(self):
        policy = RetryPolicy(backoff_base=0.0, jitter=True)
        assert policy.delay(5) == 0.0

    def test_max_attempts_one_never_sleeps(self, small_config):
        slept = []
        plan = FaultPlan.generate(
            FaultPlanConfig(
                seed=1,
                n_days=small_config.n_days,
                n_honeypots=small_config.n_honeypots,
                telescope_outage_rate=0.0,
                honeypot_churn_rate=0.0,
                openintel_miss_rate=0.0,
                dps_corruption_rate=0.0,
                transient_failures={"attacks": 1},
            )
        )
        pipeline = ResilientPipeline(
            small_config, plan=plan,
            retry=RetryPolicy(max_attempts=1), sleep=slept.append,
        )
        with pytest.raises(StageFailedError):
            pipeline.run()
        assert slept == []

    def test_sleep_sequence_on_exhausted_retries(self, small_config):
        """One sleep per failed attempt except the last."""
        slept = []
        plan = FaultPlan.generate(
            FaultPlanConfig(
                seed=1,
                n_days=small_config.n_days,
                n_honeypots=small_config.n_honeypots,
                telescope_outage_rate=0.0,
                honeypot_churn_rate=0.0,
                openintel_miss_rate=0.0,
                dps_corruption_rate=0.0,
                transient_failures={"internet": 99},
            )
        )
        pipeline = ResilientPipeline(
            small_config, plan=plan,
            retry=RetryPolicy(max_attempts=4, backoff_base=0.01,
                              backoff_factor=3.0),
            sleep=slept.append,
        )
        with pytest.raises(StageFailedError):
            pipeline.run()
        assert slept == pytest.approx([0.01, 0.03, 0.09])


class TestHealthyRun:
    def test_matches_plain_simulation(self, small_config, sim):
        result = run_resilient(small_config, sleep=no_sleep)
        assert len(result.fused.combined) == len(sim.fused.combined)
        assert len(result.telescope_events) == len(sim.telescope_events)
        assert len(result.honeypot_events) == len(sim.honeypot_events)
        assert result.quality is not None
        assert not result.quality.degraded
        for feed in ALL_FEEDS:
            assert result.quality.feed(feed).status == STATUS_OK
        assert [s.name for s in result.quality.stages] == list(STAGE_ORDER)
        assert all(s.status == "ok" for s in result.quality.stages)

    def test_plan_window_mismatch_rejected(self, small_config):
        with pytest.raises(ValueError):
            ResilientPipeline(
                small_config,
                plan=FaultPlan.none(small_config.n_days + 1),
            )


class TestTransientFailures:
    def _plan(self, small_config, failures):
        return FaultPlan.generate(
            FaultPlanConfig(
                seed=1,
                n_days=small_config.n_days,
                n_honeypots=small_config.n_honeypots,
                telescope_outage_rate=0.0,
                honeypot_churn_rate=0.0,
                openintel_miss_rate=0.0,
                dps_corruption_rate=0.0,
                transient_failures=failures,
            )
        )

    def test_retry_recovers(self, small_config, sim):
        slept = []
        plan = self._plan(small_config, {"telescope": 2})
        pipeline = ResilientPipeline(
            small_config, plan=plan,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01),
            sleep=slept.append,
        )
        result = pipeline.run()
        stage = {s.name: s for s in result.quality.stages}["telescope"]
        assert stage.status == "ok"
        assert stage.attempts == 3
        # Exponential backoff: one sleep per failed attempt.
        assert slept == pytest.approx([0.01, 0.02])
        # Recovered stage produces the exact healthy output.
        assert len(result.telescope_events) == len(sim.telescope_events)

    def test_feed_stage_degrades_to_empty(self, small_config):
        plan = self._plan(small_config, {"honeypot": 99})
        result = ResilientPipeline(
            small_config, plan=plan,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            sleep=no_sleep,
        ).run()
        assert result.honeypot_events == []
        quality = result.quality.feed(FEED_HONEYPOT)
        assert quality.status == STATUS_DOWN
        assert "stage failed permanently" in quality.detail
        stage = {s.name: s for s in result.quality.stages}["honeypot"]
        assert stage.status == "degraded"
        # The rest of the pipeline still completed.
        assert len(result.telescope_events) > 0

    def test_measurement_stage_degrades_typed_empty(self, small_config):
        plan = self._plan(small_config, {"measurement": 99})
        result = ResilientPipeline(
            small_config, plan=plan,
            retry=RetryPolicy(max_attempts=1), sleep=no_sleep,
        ).run()
        assert result.openintel.hosting_intervals == []
        assert result.openintel.n_days == small_config.n_days
        assert result.dps_usage.usages == []
        assert result.quality.feed(FEED_OPENINTEL).status == STATUS_DOWN
        assert result.quality.headline is not None

    def test_core_stage_failure_fatal_then_resumable(self, small_config):
        plan = self._plan(small_config, {"attacks": 3})
        pipeline = ResilientPipeline(
            small_config, plan=plan,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            sleep=no_sleep,
        )
        with pytest.raises(StageFailedError) as excinfo:
            pipeline.run()
        assert excinfo.value.stage == "attacks"
        # Resume: the internet stage is checkpointed, the one remaining
        # injected failure is absorbed by a retry, and the run completes.
        result = pipeline.run()
        stages = {s.name: s for s in result.quality.stages}
        assert stages["internet"].status == "cached"
        assert stages["attacks"].status == "ok"
        assert stages["attacks"].attempts == 2
        assert len(result.fused.combined) > 0


class TestFeedDownSweep:
    @pytest.fixture(scope="class")
    def baseline(self, sim):
        return HeadlineMetrics.from_result(sim)

    def test_telescope_down(self, small_config, baseline):
        plan = FaultPlan.feed_down(
            FEED_TELESCOPE, small_config.n_days, small_config.n_honeypots
        )
        result = run_resilient(
            small_config, plan=plan, baseline=baseline, sleep=no_sleep
        )
        assert result.telescope_events == []
        assert len(result.honeypot_events) > 0
        quality = result.quality.feed(FEED_TELESCOPE)
        assert quality.uptime == 0.0 and quality.status == STATUS_DOWN
        drift = result.quality.headline_drift()
        assert drift["attacked_slash24_fraction"] > 0

    def test_honeypot_down(self, small_config, baseline):
        plan = FaultPlan.feed_down(
            FEED_HONEYPOT, small_config.n_days, small_config.n_honeypots
        )
        result = run_resilient(
            small_config, plan=plan, baseline=baseline, sleep=no_sleep
        )
        assert result.honeypot_events == []
        assert result.quality.feed(FEED_HONEYPOT).status == STATUS_DOWN

    def test_openintel_down(self, small_config, baseline):
        plan = FaultPlan.feed_down(
            FEED_OPENINTEL, small_config.n_days, small_config.n_honeypots
        )
        result = run_resilient(
            small_config, plan=plan, baseline=baseline, sleep=no_sleep
        )
        assert result.openintel.hosting_intervals == []
        assert result.openintel.first_seen == {}
        assert result.quality.feed(FEED_OPENINTEL).status == STATUS_DOWN
        # No Web index left: the site-impact ratio collapses to zero.
        assert result.quality.headline.attacked_site_fraction == 0.0

    def test_dps_down(self, small_config, baseline):
        plan = FaultPlan.feed_down(
            FEED_DPS, small_config.n_days, small_config.n_honeypots
        )
        result = run_resilient(
            small_config, plan=plan, baseline=baseline, sleep=no_sleep
        )
        quality = result.quality.feed(FEED_DPS)
        assert quality.status == STATUS_DOWN
        assert len(result.dps_usage.usages) < quality.events_dropped + 1


class TestReportDeterminism:
    def test_identical_reports_across_runs(self, small_config):
        plan = FaultPlan.standard(
            small_config.n_days, seed=7, n_honeypots=small_config.n_honeypots
        )
        renders = []
        for _ in range(2):
            result = run_resilient(small_config, plan=plan, sleep=no_sleep)
            renders.append(result.quality.render())
        assert renders[0] == renders[1]


class TestDurableRuns:
    """In-process crash-recovery semantics (the CLI drill lives in
    tests/test_recovery.py)."""

    def _run(self, config, run_dir, plan=None):
        return ResilientPipeline(
            config, plan=plan, run_dir=run_dir, sleep=no_sleep
        )

    def test_fresh_process_resumes_from_checkpoints(
        self, small_config, tmp_path
    ):
        run_dir = tmp_path / "run"
        first = self._run(small_config, run_dir).run()
        resumed = self._run(small_config, run_dir).run()
        statuses = [s.status for s in resumed.quality.stages]
        assert statuses == ["cached"] * len(STAGE_ORDER)
        assert (
            HeadlineMetrics.from_result(resumed)
            == HeadlineMetrics.from_result(first)
        )

    def test_partial_prefix_recomputes_remaining_stages(
        self, small_config, tmp_path
    ):
        run_dir = tmp_path / "run"
        reference = self._run(small_config, run_dir).run()
        store = CheckpointStore(run_dir)
        for stage in STAGE_ORDER[2:]:
            store.discard(stage)
        resumed_pipeline = self._run(small_config, run_dir)
        resumed = resumed_pipeline.run()
        statuses = {s.name: s.status for s in resumed.quality.stages}
        assert statuses["internet"] == "cached"
        assert statuses["attacks"] == "cached"
        assert all(statuses[s] == "ok" for s in STAGE_ORDER[2:])
        assert (
            HeadlineMetrics.from_result(resumed)
            == HeadlineMetrics.from_result(reference)
        )

    def test_corrupt_checkpoint_falls_back_and_recomputes(
        self, small_config, tmp_path
    ):
        run_dir = tmp_path / "run"
        reference = self._run(small_config, run_dir).run()
        store = CheckpointStore(run_dir)
        flip_bits(store.payload_path("attacks"), seed=3, n_flips=1)
        pipeline = self._run(small_config, run_dir)
        kinds = {i.stage: i.kind for i in pipeline.checkpoint_issues}
        assert kinds["attacks"] == "corrupt"
        assert all(
            kinds[s] == "orphaned" for s in STAGE_ORDER[2:]
        )
        resumed = pipeline.run()
        statuses = {s.name: s.status for s in resumed.quality.stages}
        assert statuses["internet"] == "cached"
        assert statuses["attacks"] == "ok"
        assert (
            HeadlineMetrics.from_result(resumed)
            == HeadlineMetrics.from_result(reference)
        )

    def test_injector_counters_survive_resume(self, small_config, tmp_path):
        """Quality feed accounting must match an uninterrupted faulty run."""
        def plan():
            return FaultPlan.standard(
                small_config.n_days,
                seed=7,
                n_honeypots=small_config.n_honeypots,
            )

        uninterrupted = run_resilient(
            small_config, plan=plan(), sleep=no_sleep
        )
        run_dir = tmp_path / "run"
        self._run(small_config, run_dir, plan=plan()).run()
        # Drop everything after the honeypot stage, as a crash would.
        store = CheckpointStore(run_dir)
        for stage in STAGE_ORDER[5:]:
            store.discard(stage)
        resumed = self._run(small_config, run_dir, plan=plan()).run()
        statuses = {s.name: s.status for s in resumed.quality.stages}
        assert statuses["honeypot"] == "cached"
        assert statuses["measurement"] == "ok"
        for feed in ALL_FEEDS:
            a = resumed.quality.feed(feed)
            b = uninterrupted.quality.feed(feed)
            assert (a.uptime, a.events_observed, a.events_dropped) == (
                b.uptime, b.events_observed, b.events_dropped
            ), feed

    def test_record_reports_surface_in_quality(
        self, small_config, tmp_path
    ):
        feed_path = tmp_path / "feed.jsonl"
        save_events_jsonl(
            [
                AttackEvent(SOURCE_TELESCOPE, 1, 0.0, 1.0, 1.0),
            ],
            feed_path,
        )
        with open(feed_path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
        _events, report = read_events_jsonl(feed_path)
        pipeline = ResilientPipeline(small_config, sleep=no_sleep)
        pipeline.attach_record_report(report)
        result = pipeline.run()
        assert result.quality.degraded
        (record,) = result.quality.records
        assert record.loaded == 1 and record.quarantined == 1
        rendered = result.quality.render()
        assert "record validation:" in rendered
        assert "unparseable-json×1" in rendered

    def test_crash_after_validation(self, small_config, tmp_path):
        with pytest.raises(ValueError):
            ResilientPipeline(
                small_config,
                run_dir=tmp_path / "run",
                crash_after="no-such-stage",
            )


class TestSupervisedExecution:
    """The executor tentpole, in process: sharding, breakers, deadlines."""

    def test_sharded_run_matches_serial(self, small_config, sim):
        result = run_resilient(
            small_config,
            exec_config=ExecConfig(workers=2, shards=3),
            sleep=no_sleep,
        )
        assert result.fused.combined.events == sim.fused.combined.events
        assert result.openintel.zone_stats == sim.openintel.zone_stats
        assert all(s.status == STATUS_OK for s in result.quality.stages)

    def test_poison_shard_degrades_feed_and_trips_breaker(
        self, small_config
    ):
        result = run_resilient(
            small_config,
            exec_config=ExecConfig(shards=3),
            exec_faults=ExecFaultPlan.single(
                KIND_POISON, "honeypot", shard=0
            ),
            sleep=no_sleep,
        )
        # The unprocessable shard fails every attempt; the stage must fall
        # back to the empty-typed feed, not crash the run.
        assert result.quality.feed("honeypot").status == STATUS_DOWN
        assert result.quality.feed("telescope").status == STATUS_OK
        breaker = next(
            b for b in result.quality.breakers if b.name == "honeypot"
        )
        assert breaker.state == BREAKER_OPEN
        assert any(t.to_state == BREAKER_OPEN for t in breaker.transitions)
        assert "circuit breakers:" in result.quality.render()

    def test_crash_shard_recovers_byte_identical(self, small_config, sim):
        result = run_resilient(
            small_config,
            exec_config=ExecConfig(workers=2, shards=3),
            exec_faults=ExecFaultPlan.single(
                KIND_CRASH, "telescope", shard=1
            ),
            sleep=no_sleep,
        )
        assert result.fused.combined.events == sim.fused.combined.events
        telescope = next(
            s for s in result.quality.stages if s.name == "telescope"
        )
        assert telescope.status == STATUS_OK and telescope.attempts == 2

    def test_deadline_aborts_mid_stage_and_resumes_identically(
        self, small_config, sim, tmp_path
    ):
        """Kill a run between shard attempts; resume must finish the stage.

        The run deadline uses an injected clock advanced only by the
        retry backoff sleep, so expiry lands deterministically right
        after telescope's first (hung-shard) attempt — when two of three
        shard checkpoints are already on disk.
        """
        run_dir = tmp_path / "run"
        fake_now = [0.0]

        def clock():
            return fake_now[0]

        def sleep_advancing(_delay):
            fake_now[0] += 10.0

        with pytest.raises(RunDeadlineExceeded):
            ResilientPipeline(
                small_config,
                run_dir=run_dir,
                exec_config=ExecConfig(shards=3, task_deadline=0.5),
                exec_faults=ExecFaultPlan.single(
                    KIND_HUNG, "telescope", shard=1
                ),
                deadline=RunDeadline(5.0, clock=clock),
                sleep=sleep_advancing,
            ).run()
        on_disk = set(CheckpointStore(run_dir).stages())
        assert "telescope" not in on_disk
        assert shard_checkpoint_name("telescope", 0, 3) in on_disk
        assert shard_checkpoint_name("telescope", 2, 3) in on_disk

        resumed = ResilientPipeline(
            small_config,
            run_dir=run_dir,
            exec_config=ExecConfig(shards=3),
            sleep=no_sleep,
        )
        # The surviving shard partials were adopted before the run.
        assert shard_checkpoint_name("telescope", 0, 3) in resumed._shard_cache
        result = resumed.run()
        assert result.fused.combined.events == sim.fused.combined.events
        # Completed stages retire their shard partials.
        assert not any(
            ".shard" in name
            for name in CheckpointStore(run_dir).stages()
        )

    def test_mismatched_shard_count_partials_are_discarded(
        self, small_config, sim, tmp_path
    ):
        run_dir = tmp_path / "run"
        fake_now = [0.0]
        with pytest.raises(RunDeadlineExceeded):
            ResilientPipeline(
                small_config,
                run_dir=run_dir,
                exec_config=ExecConfig(shards=3, task_deadline=0.5),
                exec_faults=ExecFaultPlan.single(
                    KIND_HUNG, "telescope", shard=1
                ),
                deadline=RunDeadline(
                    5.0, clock=lambda: fake_now[0]
                ),
                sleep=lambda _d: fake_now.__setitem__(
                    0, fake_now[0] + 10.0
                ),
            ).run()
        # Resume under a different partition: the 3-shard partials must
        # not be reused (the name bakes the count in), and the run must
        # still come out byte-identical.
        resumed = ResilientPipeline(
            small_config,
            run_dir=run_dir,
            exec_config=ExecConfig(shards=2),
            sleep=no_sleep,
        )
        assert not resumed._shard_cache
        result = resumed.run()
        assert result.fused.combined.events == sim.fused.combined.events


class TestPerFeedQuarantineCounts:
    def test_per_feed_counts_surface_in_quality(
        self, small_config, tmp_path
    ):
        bad = tmp_path / "shared.jsonl"
        bad.write_text('{"garbage": true}\nnot json\n', encoding="utf-8")
        _events, telescope = read_events_jsonl(bad, feed="telescope")
        _events, honeypot = read_events_jsonl(bad, feed="honeypot")
        pipeline = ResilientPipeline(small_config, sleep=no_sleep)
        pipeline.attach_record_report(telescope)
        pipeline.attach_record_report(honeypot)
        result = pipeline.run()
        counts = result.quality.per_feed_quarantine_counts()
        assert counts == {"telescope": 2, "honeypot": 2}
        rendered = result.quality.render()
        assert "per feed: honeypot=2, telescope=2" in rendered
        # The namespaced dead-letter files both survive side by side.
        assert (record.feed for record in result.quality.records)
        paths = {r.quarantine_path for r in result.quality.records}
        assert len(paths) == 2


class TestInterruptGuard:
    def test_unarmed_guard_is_a_noop(self):
        guard = InterruptGuard()
        guard.check("anywhere")  # no signal, no handlers: nothing raised

    def test_triggered_guard_raises_with_exit_code(self):
        guard = InterruptGuard()
        guard.trigger(15)
        with pytest.raises(RunInterrupted) as caught:
            guard.check("stage 'fusion'")
        assert caught.value.signum == 15
        assert caught.value.exit_code == 143
        assert "stage 'fusion'" in str(caught.value)

    def test_interrupted_durable_run_stays_resumable(
        self, small_config, tmp_path, sim
    ):
        run_dir = tmp_path / "run"
        guard = InterruptGuard()
        guard.trigger()  # signal arrives before the first stage boundary
        pipeline = ResilientPipeline(
            small_config, run_dir=run_dir, interrupt=guard, sleep=no_sleep
        )
        with pytest.raises(RunInterrupted):
            pipeline.run()
        # A fresh pipeline without the interrupt finishes the run and
        # matches the uninterrupted reference exactly.
        resumed = ResilientPipeline(
            small_config, run_dir=run_dir, sleep=no_sleep
        )
        result = resumed.run()
        assert result.fused.combined.events == sim.fused.combined.events

    def test_interrupt_outranks_stage_failures(self, small_config):
        guard = InterruptGuard()
        guard.trigger()
        pipeline = ResilientPipeline(
            small_config,
            interrupt=guard,
            exec_config=ExecConfig(workers=2, mode="thread"),
            sleep=no_sleep,
        )
        with pytest.raises(RunInterrupted):
            pipeline.run()
