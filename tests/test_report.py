"""Unit tests for the textual table/figure renderers."""

from repro.core.cohosting import CoHostingBin
from repro.core.distributions import EmpiricalCDF
from repro.core.events import AttackDataset, AttackEvent, SOURCE_TELESCOPE
from repro.core.ports import PortCardinality
from repro.core.rankings import RankedEntry
from repro.core.report import (
    render_cohosting,
    render_delay_cdf,
    render_duration_cdf,
    render_intensity_cdf,
    render_series_summary,
    render_table,
    render_table1,
    render_table3,
    render_table4,
    render_table5,
    render_table7,
    render_table8,
    render_table9,
    render_taxonomy,
)
from repro.core.taxonomy import classify_sites, taxonomy_counts
from repro.core.timeseries import daily_series


class TestGenericTable:
    def test_alignment_and_title(self):
        text = render_table(["a", "bb"], [["x", 1], ["yy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestPaperTables:
    def test_table1(self):
        dataset = AttackDataset(
            [AttackEvent(SOURCE_TELESCOPE, 1, 0, 1, 1.0)], "Network Telescope"
        )
        text = render_table1([dataset.summary()])
        assert "Table 1" in text
        assert "Network Telescope" in text

    def test_table3(self):
        text = render_table3({"Akamai": 12, "Neustar": 30})
        assert "Akamai" in text and "30" in text

    def test_table4(self):
        entries = [RankedEntry("US", 10, 0.5), RankedEntry("Other", 10, 0.5)]
        text = render_table4(entries, "Telescope")
        assert "US" in text and "50.00%" in text

    def test_table5(self):
        text = render_table5({"TCP": 0.794, "UDP": 0.159})
        assert text.splitlines()[3].startswith("TCP")

    def test_table7(self):
        text = render_table7(PortCardinality(60, 40))
        assert "single-port" in text and "60.00%" in text

    def test_table8(self):
        tcp = [RankedEntry("HTTP", 5, 0.5), RankedEntry("Other", 5, 0.5)]
        udp = [RankedEntry("27015", 2, 1.0)]
        text = render_table8(tcp, udp)
        assert "Table 8a" in text and "Table 8b" in text

    def test_table9(self):
        text = render_table9([(11.1, 0.0), (100.0, 1.0)])
        assert "11.1" in text and "1.00" in text


class TestFigures:
    def test_series_summary(self):
        events = [AttackEvent(SOURCE_TELESCOPE, 1, 0, 1, 1.0)]
        series = daily_series(events, 2, label="Combined")
        text = render_series_summary(series)
        assert "Figure 1" in text and "Combined" in text

    def test_duration_cdf(self):
        text = render_duration_cdf(EmpiricalCDF([60, 300, 3600]), "Telescope")
        assert "Figure 2" in text
        assert "mean" in text and "median" in text

    def test_intensity_cdf(self):
        text = render_intensity_cdf(EmpiricalCDF([1, 10, 100]), "Telescope")
        assert "Intensity CDF" in text

    def test_cohosting(self):
        text = render_cohosting([CoHostingBin("n=1", 0, 1, 42)])
        assert "n=1" in text and "42" in text

    def test_taxonomy(self):
        counts = taxonomy_counts(
            classify_sites({"www.a.com": 0}, {"www.a.com": 1}, {})
        )
        text = render_taxonomy(counts)
        assert "attack observed" in text
        assert "(100.00%)" in text

    def test_delay_cdf(self):
        text = render_delay_cdf({"All": EmpiricalCDF([1, 2, 10])})
        assert "Migration delay" in text
        assert "All" in text
