"""Unit tests for the direct (randomly spoofed) attack generator."""

import math
from random import Random

import pytest

from repro.attacks.attacker import ATTACK_DIRECT, GroundTruthAttack
from repro.attacks.direct import DirectAttackConfig, DirectAttackGenerator
from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP


@pytest.fixture
def generator():
    return DirectAttackGenerator(DirectAttackConfig(), Random(1))


def draw_many(generator, n=4000):
    return [
        generator.generate(attack_id=i, target=i + 1, start=float(i))
        for i in range(n)
    ]


class TestDistributionShapes:
    def test_tcp_dominates(self, generator):
        attacks = draw_many(generator)
        tcp = sum(1 for a in attacks if a.ip_proto == PROTO_TCP)
        assert 0.74 < tcp / len(attacks) < 0.85

    def test_udp_second(self, generator):
        attacks = draw_many(generator)
        udp = sum(1 for a in attacks if a.ip_proto == PROTO_UDP)
        assert 0.10 < udp / len(attacks) < 0.22

    def test_single_port_fraction(self, generator):
        attacks = [a for a in draw_many(generator)
                   if a.ip_proto in (PROTO_TCP, PROTO_UDP)]
        single = sum(1 for a in attacks if len(a.ports) == 1)
        assert 0.55 < single / len(attacks) < 0.67

    def test_http_dominates_single_port_tcp(self, generator):
        attacks = draw_many(generator, 6000)
        single_tcp = [
            a for a in attacks if a.ip_proto == PROTO_TCP and len(a.ports) == 1
        ]
        http = sum(1 for a in single_tcp if a.ports == (80,))
        https = sum(1 for a in single_tcp if a.ports == (443,))
        assert 0.40 < http / len(single_tcp) < 0.58
        assert 0.14 < https / len(single_tcp) < 0.28

    def test_udp_27015_leads(self, generator):
        attacks = draw_many(generator, 8000)
        single_udp = [
            a for a in attacks if a.ip_proto == PROTO_UDP and len(a.ports) == 1
        ]
        leading = sum(1 for a in single_udp if a.ports == (27015,))
        assert 0.10 < leading / len(single_udp) < 0.30

    def test_icmp_attacks_have_no_ports(self, generator):
        attacks = draw_many(generator)
        assert all(
            a.ports == () for a in attacks if a.ip_proto == PROTO_ICMP
        )

    def test_duration_median_in_minutes_range(self, generator):
        durations = sorted(a.duration for a in draw_many(generator))
        median = durations[len(durations) // 2]
        assert 120 < median < 1200  # paper median 454 s

    def test_rate_median_near_256(self, generator):
        rates = sorted(a.rate for a in draw_many(generator))
        median = rates[len(rates) // 2]
        assert 100 < median < 700

    def test_web_attacks_more_intense_and_shorter(self, generator):
        attacks = draw_many(generator, 8000)
        web = [
            a for a in attacks
            if a.ip_proto == PROTO_TCP and a.ports in ((80,), (443,))
        ]
        other = [a for a in attacks if a not in web]
        mean = lambda xs: sum(xs) / len(xs)
        assert mean([a.rate for a in web]) > mean([a.rate for a in other])
        assert mean([a.duration for a in web]) < mean([a.duration for a in other])


class TestForcing:
    def test_force_ports(self, generator):
        attack = generator.generate(1, 2, 0.0, force_ports=(27015,),
                                    force_proto=PROTO_UDP)
        assert attack.ports == (27015,)
        assert attack.ip_proto == PROTO_UDP

    def test_joint_id_carried(self, generator):
        attack = generator.generate(1, 2, 0.0, joint_id=77)
        assert attack.joint_id == 77

    def test_kind_is_direct(self, generator):
        assert generator.generate(1, 2, 0.0).kind == ATTACK_DIRECT


class TestGroundTruthInvariants:
    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            GroundTruthAttack(1, "weird", 1, 0.0, 10.0, 1.0, "syn-flood")

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            GroundTruthAttack(1, ATTACK_DIRECT, 1, 0.0, 0.0, 1.0, "syn-flood")

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            GroundTruthAttack(1, ATTACK_DIRECT, 1, 0.0, 10.0, 0.0, "syn-flood")

    def test_overlaps(self):
        a = GroundTruthAttack(1, ATTACK_DIRECT, 1, 0.0, 100.0, 1.0, "syn-flood")
        b = GroundTruthAttack(2, ATTACK_DIRECT, 1, 50.0, 100.0, 1.0, "syn-flood")
        c = GroundTruthAttack(3, ATTACK_DIRECT, 1, 200.0, 100.0, 1.0, "syn-flood")
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_shifted(self):
        a = GroundTruthAttack(1, ATTACK_DIRECT, 1, 0.0, 100.0, 1.0, "syn-flood")
        assert a.shifted(10.0).start == 10.0
        assert a.shifted(10.0).end == 110.0
