"""Unit tests for the packet model and batch compression."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import (
    BACKSCATTER_ICMP_TYPES,
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REPLY,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
    PacketBatch,
    TCP_ACK,
    TCP_RST,
    TCP_SYN,
    batch_from_packet,
    expand_batch,
    ip_proto_name,
)


class TestProtoNames:
    def test_known(self):
        assert ip_proto_name(PROTO_TCP) == "TCP"
        assert ip_proto_name(PROTO_UDP) == "UDP"
        assert ip_proto_name(PROTO_ICMP) == "ICMP"

    def test_unknown_maps_to_other(self):
        assert ip_proto_name(99) == "Other"


class TestPacketSignatures:
    def test_syn_ack_is_tcp_response(self):
        packet = Packet(0.0, 1, 2, PROTO_TCP, tcp_flags=TCP_SYN | TCP_ACK)
        assert packet.is_tcp_response

    def test_rst_is_tcp_response(self):
        packet = Packet(0.0, 1, 2, PROTO_TCP, tcp_flags=TCP_RST)
        assert packet.is_tcp_response

    def test_plain_syn_is_not_response(self):
        packet = Packet(0.0, 1, 2, PROTO_TCP, tcp_flags=TCP_SYN)
        assert not packet.is_tcp_response

    def test_icmp_echo_reply_is_response(self):
        packet = Packet(0.0, 1, 2, PROTO_ICMP, icmp_type=ICMP_ECHO_REPLY)
        assert packet.is_icmp_response

    def test_icmp_echo_request_is_not_response(self):
        packet = Packet(0.0, 1, 2, PROTO_ICMP, icmp_type=8)
        assert not packet.is_icmp_response

    def test_nine_backscatter_icmp_types(self):
        assert len(BACKSCATTER_ICMP_TYPES) == 9


class TestPacketBatch:
    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            PacketBatch(0.0, 1, PROTO_TCP, count=0, bytes=0)

    def test_rejects_nonpositive_dsts(self):
        with pytest.raises(ValueError):
            PacketBatch(0.0, 1, PROTO_TCP, count=1, bytes=40, distinct_dsts=0)

    def test_syn_ack_batch_is_backscatter(self):
        batch = PacketBatch(
            0.0, 1, PROTO_TCP, count=5, bytes=200, tcp_flags=TCP_SYN | TCP_ACK
        )
        assert batch.is_backscatter

    def test_syn_scan_batch_is_not_backscatter(self):
        batch = PacketBatch(0.0, 1, PROTO_TCP, count=5, bytes=200, tcp_flags=TCP_SYN)
        assert not batch.is_backscatter

    def test_udp_batch_is_not_backscatter(self):
        batch = PacketBatch(0.0, 1, PROTO_UDP, count=5, bytes=200)
        assert not batch.is_backscatter

    def test_attack_proto_tcp(self):
        batch = PacketBatch(
            0.0, 1, PROTO_TCP, count=1, bytes=40, tcp_flags=TCP_RST
        )
        assert batch.attack_proto == PROTO_TCP

    def test_attack_proto_quoted_udp(self):
        """ICMP unreachable quoting a UDP packet attributes a UDP attack."""
        batch = PacketBatch(
            0.0,
            1,
            PROTO_ICMP,
            count=1,
            bytes=54,
            icmp_type=ICMP_DEST_UNREACH,
            quoted_proto=PROTO_UDP,
        )
        assert batch.attack_proto == PROTO_UDP

    def test_attack_proto_ping_flood(self):
        batch = PacketBatch(
            0.0, 1, PROTO_ICMP, count=1, bytes=54, icmp_type=ICMP_ECHO_REPLY
        )
        assert batch.attack_proto == PROTO_ICMP


class TestBatchConversion:
    def test_batch_from_packet_preserves_shape(self):
        packet = Packet(
            5.0, 9, 7, PROTO_TCP, length=44, src_port=80,
            tcp_flags=TCP_SYN | TCP_ACK,
        )
        batch = batch_from_packet(packet)
        assert batch.count == 1
        assert batch.src == 9
        assert batch.bytes == 44
        assert batch.src_ports == frozenset({80})
        assert batch.is_backscatter == packet.is_tcp_response

    @given(st.integers(min_value=1, max_value=200))
    def test_expand_batch_count_roundtrip(self, count):
        batch = PacketBatch(
            10.0, 3, PROTO_TCP, count=count, bytes=count * 40,
            src_ports=frozenset({80, 443}), tcp_flags=TCP_RST,
        )
        packets = list(expand_batch(batch))
        assert len(packets) == count
        assert all(p.src == 3 for p in packets)
        assert all(10.0 <= p.timestamp < 11.0 for p in packets)
        assert {p.src_port for p in packets} <= {80, 443}
