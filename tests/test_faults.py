"""Unit tests for fault plans and per-feed injectors."""

import pytest

from repro.core.events import AttackEvent, SOURCE_TELESCOPE
from repro.core.streaming import StreamingFusion
from repro.dns.openintel import OpenIntelDataset
from repro.dps.detection import DPSUsage, DPSUsageDataset
from repro.faults.injectors import (
    DPSFaultInjector,
    HoneypotFaultInjector,
    OpenIntelFaultInjector,
    StreamFaultInjector,
    TelescopeFaultInjector,
)
from repro.faults.plan import (
    ALL_FEEDS,
    FaultPlan,
    FaultPlanConfig,
    OutageWindow,
)
from repro.honeypot.amppot import RequestBatch
from repro.net.packet import PacketBatch

DAY = 86400.0


def packet(day, frac=0.5, count=10):
    return PacketBatch(
        timestamp=day * DAY + frac * DAY, src=1, proto=6, count=count,
        bytes=count * 40, distinct_dsts=count,
    )


def request(day, honeypot_id, count=50):
    return RequestBatch(
        timestamp=day * DAY + 0.5 * DAY, victim=9, honeypot_id=honeypot_id,
        protocol="NTP", count=count,
    )


class TestOutageWindow:
    def test_covers(self):
        window = OutageWindow(3, 5)
        assert window.covers_day(3) and window.covers_day(4)
        assert not window.covers_day(5) and not window.covers_day(2)
        assert window.covers_ts(3.5 * DAY)
        assert window.n_days == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            OutageWindow(5, 5)
        with pytest.raises(ValueError):
            OutageWindow(-1, 2)


class TestFaultPlan:
    def test_deterministic_under_fixed_seed(self):
        config = FaultPlanConfig(seed=123, n_days=200, n_honeypots=24)
        assert FaultPlan.generate(config) == FaultPlan.generate(config)

    def test_different_seeds_differ(self):
        a = FaultPlan.generate(FaultPlanConfig(seed=1, n_days=500))
        b = FaultPlan.generate(FaultPlanConfig(seed=2, n_days=500))
        assert a != b

    def test_none_plan_is_healthy(self):
        plan = FaultPlan.none(100)
        for feed in ALL_FEEDS:
            assert plan.uptime(feed) == 1.0

    def test_feed_down_zeroes_uptime(self):
        for feed in ALL_FEEDS:
            plan = FaultPlan.feed_down(feed, 60)
            assert plan.uptime(feed) == 0.0
            for other in ALL_FEEDS:
                if other != feed:
                    assert plan.uptime(other) == 1.0

    def test_feed_down_rejects_unknown(self):
        with pytest.raises(ValueError):
            FaultPlan.feed_down("carrier-pigeon", 60)

    def test_outages_stay_inside_window(self):
        plan = FaultPlan.generate(
            FaultPlanConfig(seed=9, n_days=50, telescope_outage_rate=0.3)
        )
        for window in plan.telescope_outages:
            assert 0 <= window.start_day < window.end_day <= 50

    def test_telescope_outage_days(self):
        plan = FaultPlan(
            seed=0, n_days=10, n_honeypots=4,
            telescope_outages=(OutageWindow(2, 4), OutageWindow(7, 8)),
        )
        assert plan.telescope_outage_days() == frozenset({2, 3, 7})

    def test_describe_is_deterministic(self):
        config = FaultPlanConfig(seed=5, n_days=120)
        assert (
            FaultPlan.generate(config).describe()
            == FaultPlan.generate(config).describe()
        )


class TestTelescopeInjector:
    def test_drops_only_outage_days(self):
        plan = FaultPlan(
            seed=0, n_days=10, n_honeypots=4,
            telescope_outages=(OutageWindow(2, 4),),
        )
        injector = TelescopeFaultInjector(plan)
        batches = [packet(d) for d in range(6)]
        kept = injector.filter(batches)
        assert [int(b.timestamp // DAY) for b in kept] == [0, 1, 4, 5]
        assert injector.dropped_batches == 2
        assert injector.dropped_packets == 20


class TestHoneypotInjector:
    def test_per_instance_schedules(self):
        plan = FaultPlan(
            seed=0, n_days=10, n_honeypots=3,
            honeypot_outages=((1, (OutageWindow(0, 10),)),),
        )
        injector = HoneypotFaultInjector(plan)
        batches = [request(3, hp) for hp in (0, 1, 2)]
        kept = injector.filter(batches)
        assert [b.honeypot_id for b in kept] == [0, 2]
        assert injector.dropped_batches == 1
        assert injector.dropped_requests == 50


class TestOpenIntelInjector:
    def _plan(self, missed, n_days=10):
        return FaultPlan(
            seed=0, n_days=n_days, n_honeypots=4,
            openintel_missed_days=frozenset(missed),
        )

    def _dataset(self, intervals, first_seen):
        return OpenIntelDataset(
            n_days=10, zone_stats=[], hosting_intervals=intervals,
            first_seen=first_seen,
        )

    def test_interval_split_around_missed_days(self):
        injector = OpenIntelFaultInjector(self._plan({3, 4, 7}))
        degraded = injector.degrade(
            self._dataset([("www.a.com", 99, 0, 10)], {"www.a.com": 0})
        )
        assert degraded.hosting_intervals == [
            ("www.a.com", 99, 0, 3),
            ("www.a.com", 99, 5, 7),
            ("www.a.com", 99, 8, 10),
        ]
        assert injector.dropped_interval_days == 3

    def test_interval_outside_missed_days_untouched(self):
        injector = OpenIntelFaultInjector(self._plan({8}))
        degraded = injector.degrade(
            self._dataset([("www.a.com", 99, 0, 5)], {})
        )
        assert degraded.hosting_intervals == [("www.a.com", 99, 0, 5)]

    def test_first_seen_shifts_past_missed_days(self):
        injector = OpenIntelFaultInjector(self._plan({0, 1}))
        degraded = injector.degrade(
            self._dataset([], {"www.a.com": 0, "www.b.com": 5})
        )
        assert degraded.first_seen == {"www.a.com": 2, "www.b.com": 5}
        assert injector.shifted_first_seen == 1

    def test_domain_never_observed_dropped(self):
        injector = OpenIntelFaultInjector(self._plan({8, 9}))
        degraded = injector.degrade(self._dataset([], {"www.a.com": 8}))
        assert degraded.first_seen == {}
        assert injector.dropped_domains == 1

    def test_all_days_missed_empties_feed(self):
        injector = OpenIntelFaultInjector(self._plan(set(range(10))))
        degraded = injector.degrade(
            self._dataset([("www.a.com", 99, 0, 10)], {"www.a.com": 0})
        )
        assert degraded.hosting_intervals == []
        assert degraded.first_seen == {}


class TestDPSInjector:
    def _dataset(self, n=200):
        usages = [
            DPSUsage(domain=f"www.d{i}.com", provider="cloudshield",
                     first_day=i % 50)
            for i in range(n)
        ]
        return DPSUsageDataset(usages=usages, n_days=60)

    def test_full_corruption_with_drop_only_is_bounded(self):
        plan = FaultPlan(seed=3, n_days=60, n_honeypots=4,
                         dps_corruption_rate=1.0)
        injector = DPSFaultInjector(plan)
        degraded = injector.corrupt(self._dataset())
        assert injector.dropped_records + injector.jittered_records == 200
        assert len(degraded.usages) == 200 - injector.dropped_records
        for usage in degraded.usages:
            assert 0 <= usage.first_day < 60

    def test_zero_rate_is_identity(self):
        plan = FaultPlan(seed=3, n_days=60, n_honeypots=4)
        dataset = self._dataset()
        assert DPSFaultInjector(plan).corrupt(dataset) is dataset

    def test_deterministic(self):
        plan = FaultPlan(seed=3, n_days=60, n_honeypots=4,
                         dps_corruption_rate=0.3)
        a = DPSFaultInjector(plan).corrupt(self._dataset())
        b = DPSFaultInjector(plan).corrupt(self._dataset())
        assert a.usages == b.usages


class TestStreamInjector:
    def _events(self, n=300):
        return [
            AttackEvent(SOURCE_TELESCOPE, target=i, start_ts=i * 600.0,
                        end_ts=i * 600.0 + 60.0, intensity=1.0)
            for i in range(n)
        ]

    def _plan(self, fraction=0.5, delay=6 * 3600.0):
        return FaultPlan(
            seed=11, n_days=60, n_honeypots=4,
            stream_late_fraction=fraction, stream_max_delay=delay,
        )

    def test_no_events_lost(self):
        injector = StreamFaultInjector(self._plan())
        events = self._events()
        delivered = injector.deliver(events)
        assert sorted(delivered, key=lambda e: e.start_ts) == events
        assert injector.late_events > 0

    def test_disorder_stays_within_fusion_tolerance(self):
        injector = StreamFaultInjector(self._plan())
        fusion = StreamingFusion()
        for event in injector.deliver(self._events()):
            fusion.ingest(event)  # must not raise the disorder ValueError
        fusion.finish()
        assert fusion.total_events == 300

    def test_rejects_delay_beyond_tolerance(self):
        with pytest.raises(ValueError):
            StreamFaultInjector(self._plan(delay=DAY))

    def test_zero_fraction_preserves_order(self):
        injector = StreamFaultInjector(self._plan(fraction=0.0))
        events = self._events(50)
        assert injector.deliver(events) == events
        assert injector.late_events == 0
