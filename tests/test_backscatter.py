"""Unit tests for backscatter synthesis."""

import pytest

from repro.attacks.attacker import (
    ATTACK_DIRECT,
    ATTACK_REFLECTION,
    GroundTruthAttack,
    VECTOR_ICMP_FLOOD,
    VECTOR_SYN_FLOOD,
    VECTOR_UDP_FLOOD,
)
from repro.net.packet import (
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REPLY,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
)
from repro.telescope.backscatter import BackscatterConfig, BackscatterModel


def direct_attack(vector=VECTOR_SYN_FLOOD, proto=PROTO_TCP, rate=10_000.0,
                  duration=600.0, ports=(80,), target=0x0A000001):
    return GroundTruthAttack(
        attack_id=1, kind=ATTACK_DIRECT, target=target, start=1000.0,
        duration=duration, rate=rate, vector=vector, ip_proto=proto,
        ports=ports,
    )


def reflection_attack():
    return GroundTruthAttack(
        attack_id=2, kind=ATTACK_REFLECTION, target=0x0A000002, start=0.0,
        duration=300.0, rate=100.0, vector="reflection-ntp",
        ip_proto=PROTO_UDP, ports=(123,), reflector_protocol="NTP",
    )


class TestObservation:
    def test_reflection_attacks_produce_no_backscatter(self):
        model = BackscatterModel(BackscatterConfig(seed=1))
        assert list(model.observe(reflection_attack())) == []

    def test_syn_flood_yields_tcp_batches(self):
        model = BackscatterModel(BackscatterConfig(seed=2))
        batches = list(model.observe(direct_attack()))
        assert batches
        assert all(b.proto == PROTO_TCP for b in batches)
        assert all(b.is_backscatter for b in batches)

    def test_source_is_victim(self):
        model = BackscatterModel(BackscatterConfig(seed=3))
        batches = list(model.observe(direct_attack(target=0x0B0B0B0B)))
        assert all(b.src == 0x0B0B0B0B for b in batches)

    def test_udp_flood_yields_icmp_unreachable_quoting_udp(self):
        model = BackscatterModel(BackscatterConfig(seed=4))
        batches = list(
            model.observe(direct_attack(VECTOR_UDP_FLOOD, PROTO_UDP))
        )
        assert batches
        assert all(b.proto == PROTO_ICMP for b in batches)
        assert all(b.icmp_type == ICMP_DEST_UNREACH for b in batches)
        assert all(b.quoted_proto == PROTO_UDP for b in batches)
        assert all(b.attack_proto == PROTO_UDP for b in batches)

    def test_icmp_flood_yields_echo_replies(self):
        model = BackscatterModel(BackscatterConfig(seed=5))
        batches = list(
            model.observe(direct_attack(VECTOR_ICMP_FLOOD, PROTO_ICMP, ports=()))
        )
        assert batches
        assert all(b.icmp_type == ICMP_ECHO_REPLY for b in batches)

    def test_ports_carried_on_batches(self):
        model = BackscatterModel(BackscatterConfig(seed=6))
        batches = list(model.observe(direct_attack(ports=(80, 443))))
        assert all(b.src_ports == frozenset({80, 443}) for b in batches)

    def test_timestamps_inside_attack(self):
        model = BackscatterModel(BackscatterConfig(seed=7))
        attack = direct_attack(duration=300.0)
        for batch in model.observe(attack):
            assert attack.start <= batch.timestamp <= attack.end + 1.0


class TestRateScaling:
    def test_telescope_sees_1_256th(self):
        config = BackscatterConfig(
            seed=8, response_probability=1.0, capacity_mu=25.0,
            capacity_sigma=0.0001,
        )
        model = BackscatterModel(config)
        attack = direct_attack(rate=256_000.0, duration=1800.0)
        batches = list(model.observe(attack))
        total = sum(b.count for b in batches)
        expected = 256_000.0 / 256.0 * attack.duration
        assert 0.9 * expected < total < 1.1 * expected

    def test_low_rate_attack_yields_little(self):
        model = BackscatterModel(BackscatterConfig(seed=9))
        attack = direct_attack(rate=30.0, duration=120.0)
        total = sum(b.count for b in model.observe(attack))
        assert total < 60

    def test_capacity_caps_response(self):
        config = BackscatterConfig(
            seed=10, response_probability=1.0,
            capacity_mu=5.0, capacity_sigma=0.0001,  # ~148 pps capacity
            collapse_load_factor=1e9,
        )
        model = BackscatterModel(config)
        attack = direct_attack(rate=1e6, duration=600.0)
        total = sum(b.count for b in model.observe(attack))
        capped = 148.4 / 256.0 * attack.duration
        assert total < capped * 1.3

    def test_collapse_truncates_duration(self):
        config = BackscatterConfig(
            seed=11, capacity_mu=5.0, capacity_sigma=0.0001,
            collapse_load_factor=2.0, collapse_after_fraction=0.5,
        )
        model = BackscatterModel(config)
        attack = direct_attack(rate=1e6, duration=3600.0)
        batches = list(model.observe(attack))
        last = max(b.timestamp for b in batches)
        assert last < attack.start + attack.duration * 0.55
