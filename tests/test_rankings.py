"""Unit tests for country/protocol/AS rankings."""

import pytest

from repro.core.events import AttackEvent, SOURCE_HONEYPOT, SOURCE_TELESCOPE
from repro.core.rankings import (
    asn_ranking,
    country_rank_of,
    country_ranking,
    ip_protocol_distribution,
    reflection_protocol_distribution,
)
from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP


def tel(target, country="US", proto=PROTO_TCP, asn=None):
    return AttackEvent(
        SOURCE_TELESCOPE, target, 0.0, 60.0, 1.0, ip_proto=proto,
        country=country, asn=asn,
    )


def hp(target, protocol="NTP"):
    return AttackEvent(
        SOURCE_HONEYPOT, target, 0.0, 60.0, 1.0, reflector_protocol=protocol
    )


class TestCountryRanking:
    def test_counts_unique_targets_not_events(self):
        events = [tel(1, "US"), tel(1, "US"), tel(2, "CN")]
        ranking = country_ranking(events, top_n=2)
        by_key = {e.key: e for e in ranking}
        assert by_key["US"].count == 1
        assert by_key["CN"].count == 1

    def test_other_row_completes_distribution(self):
        events = [tel(i, c) for i, c in enumerate(["US", "US", "CN", "RU", "FR"])]
        ranking = country_ranking(events, top_n=2)
        assert ranking[-1].key == "Other"
        assert sum(e.share for e in ranking) == pytest.approx(1.0)

    def test_order_descending(self):
        events = [tel(i, "US") for i in range(5)] + [tel(10, "CN")]
        ranking = country_ranking(events, top_n=2)
        assert ranking[0].key == "US"

    def test_empty(self):
        assert country_ranking([]) == []

    def test_rank_of(self):
        events = [tel(i, "US") for i in range(3)] + [tel(9, "JP")]
        assert country_rank_of(events, "US") == 1
        assert country_rank_of(events, "JP") == 2
        assert country_rank_of(events, "DE") is None


class TestProtocolDistributions:
    def test_ip_protocol_shares(self):
        events = [tel(1), tel(2), tel(3, proto=PROTO_UDP), tel(4, proto=PROTO_ICMP)]
        dist = ip_protocol_distribution(events)
        assert dist["TCP"] == pytest.approx(0.5)
        assert dist["UDP"] == pytest.approx(0.25)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_unknown_proto_grouped_as_other(self):
        dist = ip_protocol_distribution([tel(1, proto=99)])
        assert dist == {"Other": 1.0}

    def test_reflection_distribution_sorted(self):
        events = [hp(1, "NTP"), hp(2, "NTP"), hp(3, "DNS")]
        entries = reflection_protocol_distribution(events)
        assert entries[0].key == "NTP"
        assert entries[0].count == 2
        assert entries[0].share == pytest.approx(2 / 3)

    def test_reflection_ignores_telescope_events(self):
        assert reflection_protocol_distribution([tel(1)]) == []


class TestAsnRanking:
    def test_counts_unique_targets(self):
        events = [tel(1, asn=10), tel(1, asn=10), tel(2, asn=10), tel(3, asn=20)]
        ranking = asn_ranking(events, top_n=5)
        assert ranking[0].key == "10"
        assert ranking[0].count == 2

    def test_unannotated_excluded(self):
        assert asn_ranking([tel(1)]) == []
