"""Unit tests for the structured logging module."""

import io
import json
import logging

import pytest

from repro.log import (
    ROOT_LOGGER,
    configure_logging,
    get_logger,
)


@pytest.fixture
def clean_logging():
    """Restore the repro root logger after each test."""
    root = logging.getLogger(ROOT_LOGGER)
    saved_handlers = list(root.handlers)
    saved_level = root.level
    saved_propagate = root.propagate
    yield root
    root.handlers = saved_handlers
    root.setLevel(saved_level)
    root.propagate = saved_propagate


class TestGetLogger:
    def test_namespacing(self):
        assert get_logger("store").name == "repro.store"
        assert get_logger().name == "repro"
        assert get_logger("repro.runner").name == "repro.runner"

    def test_null_handler_by_default(self):
        # Library etiquette: importing repro must not print log records.
        root = logging.getLogger(ROOT_LOGGER)
        assert any(
            isinstance(h, logging.NullHandler) for h in root.handlers
        )


class TestConsoleOutput:
    def test_fields_rendered_as_key_value(self, clean_logging):
        stream = io.StringIO()
        configure_logging(stream=stream)
        get_logger("test").info("stage completed", stage="attacks", n=7)
        line = stream.getvalue()
        assert "repro.test" in line
        assert "stage completed" in line
        assert "stage=attacks" in line
        assert "n=7" in line

    def test_debug_suppressed_unless_verbose(self, clean_logging):
        stream = io.StringIO()
        configure_logging(verbose=False, stream=stream)
        get_logger("test").debug("hidden", x=1)
        assert stream.getvalue() == ""
        configure_logging(verbose=True, stream=stream)
        get_logger("test").debug("visible", x=1)
        assert "visible" in stream.getvalue()


class TestJsonOutput:
    def test_records_are_json_lines(self, clean_logging):
        stream = io.StringIO()
        configure_logging(json_mode=True, stream=stream)
        get_logger("store").warning(
            "checkpoint rejected", stage="attacks", kind="corrupt"
        )
        payload = json.loads(stream.getvalue())
        assert payload["event"] == "checkpoint rejected"
        assert payload["level"] == "warning"
        assert payload["logger"] == "repro.store"
        assert payload["stage"] == "attacks"
        assert payload["kind"] == "corrupt"
        assert isinstance(payload["ts"], float)

    def test_non_serializable_fields_stringified(self, clean_logging):
        stream = io.StringIO()
        configure_logging(json_mode=True, stream=stream)
        get_logger("test").info("path", where=object())
        payload = json.loads(stream.getvalue())
        assert "object" in payload["where"]


class TestReconfiguration:
    def test_idempotent_no_duplicate_handlers(self, clean_logging):
        stream = io.StringIO()
        for _ in range(3):
            configure_logging(stream=stream)
        get_logger("test").info("once")
        assert stream.getvalue().count("once") == 1

    def test_foreign_handlers_survive(self, clean_logging):
        root = logging.getLogger(ROOT_LOGGER)
        foreign = logging.NullHandler()
        root.addHandler(foreign)
        configure_logging(stream=io.StringIO())
        assert foreign in root.handlers

    def test_replaced_managed_handler_is_closed(self, clean_logging):
        """Reconfiguration must release the old handler's resources, not
        just unhook it — a CLI invoked twice in-process (or a test
        harness) would otherwise accumulate open handlers."""
        configure_logging(stream=io.StringIO())
        root = logging.getLogger(ROOT_LOGGER)
        (first,) = [
            h for h in root.handlers
            if getattr(h, "repro_managed_handler", False)
        ]
        closed = []
        first.close = lambda: closed.append(True)  # spy on the instance
        configure_logging(stream=io.StringIO())
        assert first not in root.handlers
        assert closed == [True]

    def test_cli_reentry_does_not_stack_output(self, clean_logging):
        """Two verbose CLI entries in one process log each line once."""
        stream = io.StringIO()
        configure_logging(verbose=True, stream=stream)
        configure_logging(verbose=True, stream=stream)
        get_logger("reentry").info("solo")
        assert stream.getvalue().count("solo") == 1
