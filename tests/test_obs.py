"""Unit and integration tests for the unified telemetry layer.

Covers the metrics registry (labeled counters/gauges/histograms and both
exposition formats), the span tracer, the stage profiler, the bundled
:class:`~repro.obs.Telemetry` life cycle, byte-deterministic artifacts
under an injected clock, exact counter values after a deterministic
fault scenario, and the CLI surface (``--metrics`` artifacts, the
``metrics``/``trace`` subcommands and the flight report).
"""

import json
import time

import pytest

from repro.cli import main
from repro.core.events import AttackEvent, SOURCE_TELESCOPE
from repro.exec.pool import (
    MODE_THREAD,
    STATUS_DEADLINE,
    SupervisedPool,
    TaskSpec,
)
from repro.faults.plan import FaultPlan, FaultPlanConfig
from repro.obs import (
    METRICS_FILE,
    PROFILE_FILE,
    TRACE_FILE,
    TRACE_JSONL_FILE,
    Telemetry,
    get_telemetry,
    set_telemetry,
)
from repro.obs.console import render_dashboard
from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    get_registry,
    prometheus_from_snapshot,
    set_registry,
)
from repro.obs.profile import NULL_PROFILER, StageProfiler
from repro.obs.timeseries import (
    MetricsHistory,
    RequestLog,
    histogram_quantile,
    series_key,
)
from repro.obs.trace import NULL_TRACER, SpanTracer
from repro.pipeline.datasets import (
    REASON_DUPLICATE,
    REASON_UNPARSEABLE,
    event_to_dict,
    read_events_jsonl,
)
from repro.pipeline.runner import RetryPolicy, run_resilient


class FakeClock:
    """Deterministic clock: advances a fixed step per call."""

    def __init__(self, start: float = 0.0, step: float = 0.001) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture(autouse=True)
def _reset_global_telemetry():
    """Tests installing process-wide telemetry must not leak it."""
    yield
    set_telemetry(None)


def no_sleep(_delay: float) -> None:
    pass


class TestMetricsRegistry:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        hits = registry.counter("hits_total", "hits", ("kind",))
        hits.inc(kind="a")
        hits.inc(2, kind="a")
        hits.inc(kind="b")
        assert registry.value("hits_total", kind="a") == 3
        assert registry.value("hits_total", kind="b") == 1
        assert registry.value("hits_total", kind="absent") == 0
        assert registry.value("never_registered") == 0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_label_set_enforced_exactly(self):
        registry = MetricsRegistry()
        c = registry.counter("c_total", "", ("stage",))
        with pytest.raises(ValueError):
            c.inc()  # missing label
        with pytest.raises(ValueError):
            c.inc(stage="x", extra="y")  # surplus label

    def test_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "", ("stage",))
        again = registry.counter("c_total", "", ("stage",))
        assert first is again
        with pytest.raises(ValueError):
            registry.gauge("c_total", "", ("stage",))  # kind conflict
        with pytest.raises(ValueError):
            registry.counter("c_total", "", ("other",))  # label conflict

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        depth = registry.gauge("queue_depth")
        depth.set(5)
        depth.inc()
        depth.dec(3)
        assert registry.value("queue_depth") == 3

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(1.0, 5.0))
        for value in (0.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(103.5)
        series = registry.snapshot()["metrics"]["lat_seconds"]["series"][0]
        assert series["buckets"] == {"1.0": 1.0, "5.0": 2.0}
        assert series["count"] == 3

    def test_snapshot_deterministic_with_fake_clock(self):
        def build():
            registry = MetricsRegistry(clock=FakeClock())
            registry.counter("a_total", "help a", ("k",)).inc(k="v")
            registry.histogram("h_seconds").observe(0.02)
            return registry.to_json()

        assert build() == build()

    def test_prometheus_rendering(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.counter("hits_total", "hits", ("kind",)).inc(kind="a")
        registry.gauge("depth").set(2)
        registry.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP hits_total hits" in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{kind="a"} 1' in text
        assert "depth 2" in text
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text
        assert "lat_seconds_sum 0.5" in text

    def test_prometheus_roundtrips_through_json_snapshot(self):
        """metrics.json re-renders to the same Prometheus text."""
        registry = MetricsRegistry(clock=lambda: 1.0)
        registry.counter("c_total", "c", ("x",)).inc(x='we"ird\nname')
        registry.histogram("h_seconds", buckets=(0.1, 1.0)).observe(0.05)
        reloaded = json.loads(registry.to_json())
        assert prometheus_from_snapshot(reloaded) == (
            registry.render_prometheus()
        )

    def test_null_registry_is_free_and_silent(self):
        handle = NULL_REGISTRY.counter("anything_total", "", ("a", "b"))
        assert handle is NULL_REGISTRY.gauge("other")
        assert handle is NULL_REGISTRY.histogram("third")
        handle.inc(a=1, b=2)
        handle.set(9)
        handle.observe(1.0)
        assert NULL_REGISTRY.value("anything_total", a=1, b=2) == 0
        assert NULL_REGISTRY.render_prometheus() == ""
        assert NULL_REGISTRY.snapshot()["metrics"] == {}
        assert not NULL_REGISTRY.enabled


class TestSpanTracer:
    def test_parent_child_links_and_completion_order(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("outer", stage="x"):
            with tracer.span("inner", attempt=1):
                pass
        inner, outer = tracer.spans
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.start > outer.start
        assert inner.end < outer.end
        assert inner.duration > 0

    def test_error_recorded_and_reraised(self):
        tracer = SpanTracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.attrs["error"] == "RuntimeError: boom"
        assert span.end > span.start

    def test_chrome_export_shape(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("stage", stage="attacks"):
            pass
        doc = tracer.to_chrome()
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["pid"] == 1
        assert event["tid"] == 0
        assert event["name"] == "stage"
        assert event["args"]["stage"] == "attacks"
        assert event["args"]["span_id"] == 1
        assert event["dur"] > 0
        assert doc["metadata"]["threads"]["0"]

    def test_jsonl_export(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        lines = tracer.to_jsonl().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert [p["name"] for p in parsed] == ["a", "b"]
        assert all(p["duration"] > 0 for p in parsed)

    def test_null_tracer_noop(self):
        with NULL_TRACER.span("anything", k="v") as span:
            span.set_attr(more="attrs")
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.to_jsonl() == ""
        assert NULL_TRACER.to_chrome()["traceEvents"] == []


class TestStageProfiler:
    def test_profile_records_wall_cpu_rss_events(self):
        profiler = StageProfiler(
            clock=FakeClock(step=1.0),
            cpu_clock=FakeClock(step=0.25),
            rss_fn=lambda: 4096,
        )
        with profiler.profile("attacks") as handle:
            handle.set_events(500)
        (profile,) = profiler.profiles
        assert profile.stage == "attacks"
        assert profile.wall_s == pytest.approx(1.0)
        assert profile.cpu_s == pytest.approx(0.25)
        assert profile.peak_rss_kb == 4096
        assert profile.events == 500
        assert profile.events_per_s == pytest.approx(500.0)

    def test_note_records_externally_measured_cost(self):
        profiler = StageProfiler(rss_fn=lambda: 1)
        profiler.note("telescope", wall_s=2.0, events=100, shard="0/3")
        snapshot = profiler.snapshot()["profiles"][0]
        assert snapshot["shard"] == "0/3"
        assert snapshot["events_per_s"] == pytest.approx(50.0)

    def test_null_profiler_noop(self):
        with NULL_PROFILER.profile("x") as handle:
            handle.set_events(9)
        NULL_PROFILER.note("x", wall_s=1.0)
        assert NULL_PROFILER.snapshot() == {"profiles": []}


class TestTelemetryBundle:
    def test_disabled_is_shared_singleton(self):
        assert Telemetry.disabled() is Telemetry.disabled()
        assert not Telemetry.disabled().enabled
        assert get_telemetry() is Telemetry.disabled()

    def test_create_shares_one_clock(self):
        clock = FakeClock()
        telemetry = Telemetry.create(clock=clock)
        assert telemetry.enabled
        assert telemetry.clock is clock
        assert telemetry.metrics._clock is clock
        assert telemetry.tracer._clock is clock
        assert telemetry.profiler._clock is clock

    def test_set_telemetry_installs_shared_registry(self):
        telemetry = Telemetry.create()
        set_telemetry(telemetry)
        assert get_telemetry() is telemetry
        assert get_registry() is telemetry.metrics
        set_telemetry(None)
        assert get_telemetry() is Telemetry.disabled()
        assert get_registry() is NULL_REGISTRY

    def test_write_artifacts(self, tmp_path):
        telemetry = Telemetry.create(
            clock=FakeClock(), cpu_clock=FakeClock(), rss_fn=lambda: 0
        )
        with telemetry.tracer.span("run"):
            telemetry.metrics.counter("c_total").inc()
        written = telemetry.write_artifacts(tmp_path / "run")
        assert sorted(written) == [
            METRICS_FILE, PROFILE_FILE, TRACE_FILE, TRACE_JSONL_FILE
        ]
        for path in written.values():
            assert (tmp_path / "run").joinpath(path.split("/")[-1]).exists()
        chrome = json.loads((tmp_path / "run" / TRACE_FILE).read_text())
        assert chrome["traceEvents"][0]["name"] == "run"


class TestDeterministicArtifacts:
    def _artifacts(self, small_config):
        telemetry = Telemetry.create(
            clock=FakeClock(),
            cpu_clock=FakeClock(step=0.0005),
            rss_fn=lambda: 1024,
        )
        run_resilient(small_config, telemetry=telemetry, sleep=no_sleep)
        return (
            telemetry.metrics.to_json(),
            telemetry.tracer.to_chrome_json(),
            telemetry.profiler.to_json(),
        )

    def test_two_serial_runs_export_identical_bytes(self, small_config):
        """The acceptance bar: same seed + same injected clock ->
        byte-identical metrics.json and trace.json (serial runs)."""
        first = self._artifacts(small_config)
        second = self._artifacts(small_config)
        assert first[0] == second[0]  # metrics.json
        assert first[1] == second[1]  # trace.json
        assert first[2] == second[2]  # profile.json


class TestExactCountersUnderFaults:
    """A deterministic fault scenario must yield exact counter values."""

    def _run(self, small_config):
        plan = FaultPlan.generate(
            FaultPlanConfig(
                seed=1,
                n_days=small_config.n_days,
                n_honeypots=small_config.n_honeypots,
                telescope_outage_rate=0.0,
                honeypot_churn_rate=0.0,
                openintel_miss_rate=0.0,
                dps_corruption_rate=0.0,
                transient_failures={"honeypot": 3},
            )
        )
        telemetry = Telemetry.create(clock=FakeClock())
        result = run_resilient(
            small_config,
            plan=plan,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            sleep=no_sleep,
            telemetry=telemetry,
        )
        return result, telemetry.metrics

    def test_exact_counter_values(self, small_config):
        result, metrics = self._run(small_config)
        value = metrics.value
        # Three injected failures exhaust the retry budget exactly.
        assert value(
            "pipeline_stage_attempts_total", stage="honeypot"
        ) == 3
        assert value(
            "pipeline_stage_attempt_failures_total", stage="honeypot"
        ) == 3
        assert value(
            "pipeline_stage_outcomes_total",
            stage="honeypot", status="degraded",
        ) == 1
        # Breaker threshold == retry budget: trips open on failure #3.
        assert value("breaker_failures_total", breaker="honeypot") == 3
        assert value(
            "breaker_transitions_total", breaker="honeypot", to_state="open"
        ) == 1
        assert value("breaker_state", breaker="honeypot") == 1  # open
        # Every other stage completed cleanly on the first attempt.
        for stage in ("internet", "attacks", "migration", "telescope",
                      "measurement", "fusion"):
            assert value(
                "pipeline_stage_outcomes_total", stage=stage, status="ok"
            ) == 1, stage
            assert value(
                "pipeline_stage_attempt_failures_total", stage=stage
            ) == 0, stage
        # The quality report agrees with the counters.
        stage = {s.name: s for s in result.quality.stages}["honeypot"]
        assert stage.status == "degraded"
        assert stage.attempts == 3
        # One stage-seconds observation per finished stage.
        seconds = metrics._families["pipeline_stage_seconds"]
        assert seconds.count(stage="honeypot") == 1
        assert seconds.count(stage="fusion") == 1


class TestSupervisedPoolCounters:
    def test_watchdog_kill_is_counted(self):
        registry = MetricsRegistry()
        pool = SupervisedPool(
            max_workers=2, mode=MODE_THREAD, metrics=registry
        )
        hung, fine = pool.run([
            TaskSpec("hung", lambda: time.sleep(120), deadline=0.2),
            TaskSpec("fine", lambda: 42),
        ])
        assert hung.status == STATUS_DEADLINE
        assert fine.value == 42
        assert registry.value("exec_tasks_queued_total") == 2
        assert registry.value("exec_workers_killed_total") == 1
        assert registry.value(
            "exec_task_outcomes_total", status="deadline"
        ) == 1
        assert registry.value("exec_task_outcomes_total", status="ok") == 1
        assert registry.value("exec_inflight_workers") == 0


class TestQuarantineCounters:
    def _write_feed(self, path):
        event = AttackEvent(SOURCE_TELESCOPE, 123, 0.0, 60.0, 2.5)
        good = json.dumps(event_to_dict(event))
        path.write_text(
            good + "\n" + "{not json}\n" + good + "\n", encoding="utf-8"
        )

    def test_drops_counted_per_feed_and_reason(self, tmp_path):
        path = tmp_path / "telescope.jsonl"
        self._write_feed(path)
        registry = MetricsRegistry()
        set_registry(registry)
        events, report = read_events_jsonl(path, feed="telescope")
        assert len(events) == 1
        assert report.rejected == 2
        assert registry.value(
            "records_quarantined_total",
            feed="telescope", reason=REASON_UNPARSEABLE,
        ) == 1
        assert registry.value(
            "records_quarantined_total",
            feed="telescope", reason=REASON_DUPLICATE,
        ) == 1

    def test_feedless_load_counts_under_unknown(self, tmp_path):
        path = tmp_path / "anon.jsonl"
        self._write_feed(path)
        registry = MetricsRegistry()
        set_registry(registry)
        read_events_jsonl(path)
        assert registry.value(
            "records_quarantined_total",
            feed="unknown", reason=REASON_UNPARSEABLE,
        ) == 1

    def test_disabled_registry_stays_silent(self, tmp_path):
        path = tmp_path / "telescope.jsonl"
        self._write_feed(path)
        events, report = read_events_jsonl(path, feed="telescope")
        assert len(events) == 1  # quarantine works without telemetry
        assert get_registry() is NULL_REGISTRY


class TestCLITelemetry:
    def test_simulate_metrics_writes_artifacts(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        code = main([
            "--preset", "small", "simulate",
            "--run-dir", str(run_dir), "--metrics",
        ])
        assert code == 0
        capsys.readouterr()
        for name in (METRICS_FILE, TRACE_FILE, TRACE_JSONL_FILE,
                     PROFILE_FILE, "quality.json"):
            assert (run_dir / name).exists(), name
        snapshot = json.loads((run_dir / METRICS_FILE).read_text())
        outcomes = snapshot["metrics"]["pipeline_stage_outcomes_total"]
        ok_stages = {
            series["labels"]["stage"]
            for series in outcomes["series"]
            if series["labels"]["status"] == "ok"
        }
        assert "fusion" in ok_stages

        # The flight report renders from the persisted artifacts.
        assert main(["report", "--run-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "Flight report" in out
        assert "fusion" in out

        # `metrics` serves Prometheus text and raw JSON from the run dir.
        assert main(["metrics", str(run_dir)]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE pipeline_stage_outcomes_total counter" in prom
        assert main(["metrics", str(run_dir), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["metrics"]

        # `trace` serves both export shapes.
        assert main(["trace", str(run_dir)]) == 0
        chrome = json.loads(capsys.readouterr().out)
        assert any(
            e["name"] == "run" for e in chrome["traceEvents"]
        )
        assert main(["trace", str(run_dir), "--format", "jsonl"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert any(json.loads(l)["name"] == "stage" for l in lines)

    def test_metrics_command_without_artifact(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path)]) == 2
        assert METRICS_FILE in capsys.readouterr().err

    def test_trace_command_without_artifact(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path)]) == 2
        assert TRACE_FILE in capsys.readouterr().err

    def test_simulate_without_metrics_writes_no_artifacts(
        self, tmp_path, capsys
    ):
        run_dir = tmp_path / "plain"
        assert main([
            "--preset", "small", "simulate", "--run-dir", str(run_dir),
        ]) == 0
        capsys.readouterr()
        assert not (run_dir / METRICS_FILE).exists()
        assert not (run_dir / TRACE_FILE).exists()


class TestHistogramQuantile:
    def test_interpolates_within_the_containing_bucket(self):
        # 10 obs <= 1, 10 more <= 2, 20 more <= 4; the median rank (20)
        # lands exactly at the top of the second bucket.
        assert histogram_quantile((1, 2, 4), (10, 20, 40), 40, 0.5) == 2.0
        # Rank 30 is halfway through the (2, 4] bucket.
        assert histogram_quantile((1, 2, 4), (10, 20, 40), 40, 0.75) == 3.0

    def test_first_bucket_interpolates_from_zero(self):
        assert histogram_quantile((10,), (4,), 4, 0.5) == 5.0

    def test_rank_in_inf_bucket_clamps_to_highest_finite_bound(self):
        # All 10 observations exceed every finite bound.
        assert histogram_quantile((1, 2), (0, 0), 10, 0.9) == 2.0

    def test_empty_histogram_returns_none(self):
        assert histogram_quantile((1, 2), (0, 0), 0, 0.5) is None
        assert histogram_quantile((), (), 5, 0.5) is None

    def test_quantile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            histogram_quantile((1,), (1,), 1, 1.5)
        with pytest.raises(ValueError):
            histogram_quantile((1,), (1,), 1, -0.1)

    def test_series_key_sorts_labels(self):
        assert series_key("m", {}) == "m"
        assert series_key("m", {"b": 2, "a": 1}) == 'm{a="1",b="2"}'


class TestMetricsHistory:
    def test_first_window_has_gauges_but_no_rates(self):
        registry = MetricsRegistry()
        registry.gauge("depth", "").set(7)
        registry.counter("hits_total", "").inc(3)
        history = MetricsHistory(registry, FakeClock(step=1.0))
        window = history.sample()
        assert window["dt"] == 0.0
        assert window["gauges"] == {"depth": 7.0}
        assert window["rates"] == {}

    def test_counter_rates_are_per_second_deltas(self):
        registry = MetricsRegistry()
        hits = registry.counter("hits_total", "", ("kind",))
        history = MetricsHistory(registry, FakeClock(step=2.0))
        history.sample()
        hits.inc(10, kind="a")
        window = history.sample()  # dt == 2.0s
        assert window["rates"] == {'hits_total{kind="a"}': 5.0}
        # No new increments: the next window reports a zero rate.
        assert history.sample()["rates"] == {'hits_total{kind="a"}': 0.0}

    def test_histogram_quantiles_cover_only_the_window(self):
        registry = MetricsRegistry()
        latency = registry.histogram("lat_seconds", "", (), buckets=(1, 2, 4))
        history = MetricsHistory(registry, FakeClock(step=1.0))
        for _ in range(4):
            latency.observe(0.5)
        history.sample()
        # Second window sees only the four new, slower observations.
        for _ in range(4):
            latency.observe(3.0)
        row = history.sample()["quantiles"]["lat_seconds"]
        assert row["count"] == 4.0
        assert 2.0 < row["p50"] <= 4.0

    def test_ring_evicts_oldest_windows(self):
        registry = MetricsRegistry()
        history = MetricsHistory(registry, FakeClock(step=1.0), capacity=3)
        for _ in range(5):
            history.sample()
        windows = history.windows()
        assert len(windows) == 3
        assert [w["ts"] for w in windows] == [3.0, 4.0, 5.0]
        assert [w["ts"] for w in history.windows(last=2)] == [4.0, 5.0]
        assert history.windows(last=0) == []
        doc = history.history_doc(last=2)
        assert doc["window_count"] == 2 and doc["capacity"] == 3

    def test_maybe_sample_respects_the_interval(self):
        registry = MetricsRegistry()
        clock = FakeClock(step=1.0)
        history = MetricsHistory(registry, clock, interval_s=5.0)
        assert history.maybe_sample() is not None  # first call always fires
        assert history.maybe_sample() is None      # 1s later: too soon
        clock.now += 10.0
        assert history.maybe_sample() is not None

    def test_identical_schedules_export_identical_jsonl(self):
        def run():
            registry = MetricsRegistry()
            hits = registry.counter("hits_total", "")
            history = MetricsHistory(registry, FakeClock(step=1.0))
            for i in range(4):
                hits.inc(i + 1)
                history.sample()
            return history.to_jsonl()

        first, second = run(), run()
        assert first == second
        assert [json.loads(line) for line in first.splitlines()]

    def test_rejects_degenerate_configuration(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            MetricsHistory(registry, FakeClock(), capacity=0)
        with pytest.raises(ValueError):
            MetricsHistory(registry, FakeClock(), interval_s=0)


class TestRequestLog:
    def test_recent_ring_evicts_but_total_keeps_counting(self):
        log = RequestLog(FakeClock(step=1.0), capacity=3)
        for i in range(5):
            log.record(f"t-{i:06d}", "/attacks", "GET", 200, 0.01)
        assert log.total == 5
        assert [r["trace_id"] for r in log.recent()] == [
            "t-000002", "t-000003", "t-000004",
        ]
        assert [r["trace_id"] for r in log.recent(last=1)] == ["t-000004"]
        assert log.recent(last=0) == []

    def test_slow_requests_are_captured_separately(self):
        log = RequestLog(FakeClock(step=1.0), slow_threshold_s=0.5)
        log.record("fast", "/healthz", "GET", 200, 0.01)
        slow_entry = log.record("slow", "/ingest/attacks", "POST", 202, 0.9)
        assert [r["trace_id"] for r in log.slow()] == ["slow"]
        assert slow_entry["duration_s"] == 0.9

    def test_extra_attrs_are_sorted_and_none_dropped(self):
        log = RequestLog(FakeClock(step=1.0))
        entry = log.record(
            "t", "/x", "GET", 200, 0.1, node="f1", role=None, zone="a",
        )
        assert entry["node"] == "f1" and entry["zone"] == "a"
        assert "role" not in entry


class TestPrometheusEscaping:
    def test_help_escapes_backslash_and_newline_not_quotes(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", 'path "C:\\tmp"\nsecond line').inc()
        text = prometheus_from_snapshot(registry.snapshot())
        assert (
            '# HELP odd_total path "C:\\\\tmp"\\nsecond line' in text
        )
        assert "\nsecond line" not in text.replace("\\nsecond", "")

    def test_label_values_escape_quotes_backslashes_newlines(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", "", ("path",)).inc(
            path='a"b\\c\nd'
        )
        text = prometheus_from_snapshot(registry.snapshot())
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_round_trips_through_metrics_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("odd_total", "line1\nline2").inc()
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(registry.snapshot()), encoding="utf-8")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert prometheus_from_snapshot(loaded) == prometheus_from_snapshot(
            registry.snapshot()
        )


class TestConsoleRenderer:
    @staticmethod
    def _status(node, role="primary", **overrides):
        doc = {
            "node": node,
            "role": role,
            "epoch": 3,
            "seq": 120,
            "applied_seq": 120,
            "queue_depth": 0,
            "shedding": False,
            "draining": False,
            "degraded": False,
            "uptime_s": 42.5,
            "wal": {"segments": 2, "bytes": 2048, "oldest_seq": 1},
            "snapshots": {"seqs": [100], "newest_age_s": 7.0},
            "followers": {},
            "requests": {"total": 9, "slow_threshold_s": 0.5, "slow": []},
        }
        doc.update(overrides)
        return doc

    def test_renders_nodes_replication_and_down_peers(self):
        nodes = [
            {
                "url": "http://p:1",
                "status": self._status(
                    "p",
                    followers={
                        "f1": {"committed_seq": 118, "seq_lag": 2,
                               "age_s": 0.4},
                    },
                ),
                "error": None,
            },
            {"url": "http://f2:1", "status": None,
             "error": "connection refused"},
        ]
        frame = render_dashboard(nodes)
        assert frame.startswith("repro cluster console — 1/2 nodes up")
        assert "p -> f1: committed=118 lag=2 age=0.4s" in frame
        assert "DOWN" in frame and "connection refused" in frame
        assert frame == render_dashboard(nodes)  # pure: same bytes out

    def test_renders_slow_requests_and_history(self):
        slow = [{
            "trace_id": "burst-000007", "endpoint": "/ingest/attacks",
            "method": "POST", "status": 202, "duration_s": 0.8,
            "node": "p",
        }]
        nodes = [{
            "url": "http://p:1",
            "status": self._status(
                "p",
                degraded=True,
                requests={"total": 9, "slow_threshold_s": 0.5,
                          "slow": slow},
            ),
            "error": None,
        }]
        history = {
            "interval_s": 5.0, "capacity": 240, "window_count": 1,
            "windows": [{
                "ts": 10.0, "dt": 5.0,
                "gauges": {},
                "rates": {"serve_wal_appends_total": 12.5},
                "quantiles": {
                    "serve_http_request_seconds": {
                        "count": 4.0, "p50": 0.02, "p99": 0.5,
                    },
                },
            }],
        }
        frame = render_dashboard(nodes, history)
        assert "800.0ms POST /ingest/attacks" in frame
        assert "trace=burst-000007" in frame
        assert "degraded" in frame
        assert "12.5/s  serve_wal_appends_total" in frame
        assert "p50=20.0ms" in frame and "p99=500.0ms" in frame
