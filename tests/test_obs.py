"""Unit and integration tests for the unified telemetry layer.

Covers the metrics registry (labeled counters/gauges/histograms and both
exposition formats), the span tracer, the stage profiler, the bundled
:class:`~repro.obs.Telemetry` life cycle, byte-deterministic artifacts
under an injected clock, exact counter values after a deterministic
fault scenario, and the CLI surface (``--metrics`` artifacts, the
``metrics``/``trace`` subcommands and the flight report).
"""

import json
import time

import pytest

from repro.cli import main
from repro.core.events import AttackEvent, SOURCE_TELESCOPE
from repro.exec.pool import (
    MODE_THREAD,
    STATUS_DEADLINE,
    SupervisedPool,
    TaskSpec,
)
from repro.faults.plan import FaultPlan, FaultPlanConfig
from repro.obs import (
    METRICS_FILE,
    PROFILE_FILE,
    TRACE_FILE,
    TRACE_JSONL_FILE,
    Telemetry,
    get_telemetry,
    set_telemetry,
)
from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    get_registry,
    prometheus_from_snapshot,
    set_registry,
)
from repro.obs.profile import NULL_PROFILER, StageProfiler
from repro.obs.trace import NULL_TRACER, SpanTracer
from repro.pipeline.datasets import (
    REASON_DUPLICATE,
    REASON_UNPARSEABLE,
    event_to_dict,
    read_events_jsonl,
)
from repro.pipeline.runner import RetryPolicy, run_resilient


class FakeClock:
    """Deterministic clock: advances a fixed step per call."""

    def __init__(self, start: float = 0.0, step: float = 0.001) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture(autouse=True)
def _reset_global_telemetry():
    """Tests installing process-wide telemetry must not leak it."""
    yield
    set_telemetry(None)


def no_sleep(_delay: float) -> None:
    pass


class TestMetricsRegistry:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        hits = registry.counter("hits_total", "hits", ("kind",))
        hits.inc(kind="a")
        hits.inc(2, kind="a")
        hits.inc(kind="b")
        assert registry.value("hits_total", kind="a") == 3
        assert registry.value("hits_total", kind="b") == 1
        assert registry.value("hits_total", kind="absent") == 0
        assert registry.value("never_registered") == 0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)

    def test_label_set_enforced_exactly(self):
        registry = MetricsRegistry()
        c = registry.counter("c_total", "", ("stage",))
        with pytest.raises(ValueError):
            c.inc()  # missing label
        with pytest.raises(ValueError):
            c.inc(stage="x", extra="y")  # surplus label

    def test_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "", ("stage",))
        again = registry.counter("c_total", "", ("stage",))
        assert first is again
        with pytest.raises(ValueError):
            registry.gauge("c_total", "", ("stage",))  # kind conflict
        with pytest.raises(ValueError):
            registry.counter("c_total", "", ("other",))  # label conflict

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        depth = registry.gauge("queue_depth")
        depth.set(5)
        depth.inc()
        depth.dec(3)
        assert registry.value("queue_depth") == 3

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", buckets=(1.0, 5.0))
        for value in (0.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(103.5)
        series = registry.snapshot()["metrics"]["lat_seconds"]["series"][0]
        assert series["buckets"] == {"1.0": 1.0, "5.0": 2.0}
        assert series["count"] == 3

    def test_snapshot_deterministic_with_fake_clock(self):
        def build():
            registry = MetricsRegistry(clock=FakeClock())
            registry.counter("a_total", "help a", ("k",)).inc(k="v")
            registry.histogram("h_seconds").observe(0.02)
            return registry.to_json()

        assert build() == build()

    def test_prometheus_rendering(self):
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.counter("hits_total", "hits", ("kind",)).inc(kind="a")
        registry.gauge("depth").set(2)
        registry.histogram("lat_seconds", buckets=(1.0,)).observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP hits_total hits" in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{kind="a"} 1' in text
        assert "depth 2" in text
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text
        assert "lat_seconds_sum 0.5" in text

    def test_prometheus_roundtrips_through_json_snapshot(self):
        """metrics.json re-renders to the same Prometheus text."""
        registry = MetricsRegistry(clock=lambda: 1.0)
        registry.counter("c_total", "c", ("x",)).inc(x='we"ird\nname')
        registry.histogram("h_seconds", buckets=(0.1, 1.0)).observe(0.05)
        reloaded = json.loads(registry.to_json())
        assert prometheus_from_snapshot(reloaded) == (
            registry.render_prometheus()
        )

    def test_null_registry_is_free_and_silent(self):
        handle = NULL_REGISTRY.counter("anything_total", "", ("a", "b"))
        assert handle is NULL_REGISTRY.gauge("other")
        assert handle is NULL_REGISTRY.histogram("third")
        handle.inc(a=1, b=2)
        handle.set(9)
        handle.observe(1.0)
        assert NULL_REGISTRY.value("anything_total", a=1, b=2) == 0
        assert NULL_REGISTRY.render_prometheus() == ""
        assert NULL_REGISTRY.snapshot()["metrics"] == {}
        assert not NULL_REGISTRY.enabled


class TestSpanTracer:
    def test_parent_child_links_and_completion_order(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("outer", stage="x"):
            with tracer.span("inner", attempt=1):
                pass
        inner, outer = tracer.spans
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.start > outer.start
        assert inner.end < outer.end
        assert inner.duration > 0

    def test_error_recorded_and_reraised(self):
        tracer = SpanTracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.attrs["error"] == "RuntimeError: boom"
        assert span.end > span.start

    def test_chrome_export_shape(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("stage", stage="attacks"):
            pass
        doc = tracer.to_chrome()
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["pid"] == 1
        assert event["tid"] == 0
        assert event["name"] == "stage"
        assert event["args"]["stage"] == "attacks"
        assert event["args"]["span_id"] == 1
        assert event["dur"] > 0
        assert doc["metadata"]["threads"]["0"]

    def test_jsonl_export(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        lines = tracer.to_jsonl().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert [p["name"] for p in parsed] == ["a", "b"]
        assert all(p["duration"] > 0 for p in parsed)

    def test_null_tracer_noop(self):
        with NULL_TRACER.span("anything", k="v") as span:
            span.set_attr(more="attrs")
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.to_jsonl() == ""
        assert NULL_TRACER.to_chrome()["traceEvents"] == []


class TestStageProfiler:
    def test_profile_records_wall_cpu_rss_events(self):
        profiler = StageProfiler(
            clock=FakeClock(step=1.0),
            cpu_clock=FakeClock(step=0.25),
            rss_fn=lambda: 4096,
        )
        with profiler.profile("attacks") as handle:
            handle.set_events(500)
        (profile,) = profiler.profiles
        assert profile.stage == "attacks"
        assert profile.wall_s == pytest.approx(1.0)
        assert profile.cpu_s == pytest.approx(0.25)
        assert profile.peak_rss_kb == 4096
        assert profile.events == 500
        assert profile.events_per_s == pytest.approx(500.0)

    def test_note_records_externally_measured_cost(self):
        profiler = StageProfiler(rss_fn=lambda: 1)
        profiler.note("telescope", wall_s=2.0, events=100, shard="0/3")
        snapshot = profiler.snapshot()["profiles"][0]
        assert snapshot["shard"] == "0/3"
        assert snapshot["events_per_s"] == pytest.approx(50.0)

    def test_null_profiler_noop(self):
        with NULL_PROFILER.profile("x") as handle:
            handle.set_events(9)
        NULL_PROFILER.note("x", wall_s=1.0)
        assert NULL_PROFILER.snapshot() == {"profiles": []}


class TestTelemetryBundle:
    def test_disabled_is_shared_singleton(self):
        assert Telemetry.disabled() is Telemetry.disabled()
        assert not Telemetry.disabled().enabled
        assert get_telemetry() is Telemetry.disabled()

    def test_create_shares_one_clock(self):
        clock = FakeClock()
        telemetry = Telemetry.create(clock=clock)
        assert telemetry.enabled
        assert telemetry.clock is clock
        assert telemetry.metrics._clock is clock
        assert telemetry.tracer._clock is clock
        assert telemetry.profiler._clock is clock

    def test_set_telemetry_installs_shared_registry(self):
        telemetry = Telemetry.create()
        set_telemetry(telemetry)
        assert get_telemetry() is telemetry
        assert get_registry() is telemetry.metrics
        set_telemetry(None)
        assert get_telemetry() is Telemetry.disabled()
        assert get_registry() is NULL_REGISTRY

    def test_write_artifacts(self, tmp_path):
        telemetry = Telemetry.create(
            clock=FakeClock(), cpu_clock=FakeClock(), rss_fn=lambda: 0
        )
        with telemetry.tracer.span("run"):
            telemetry.metrics.counter("c_total").inc()
        written = telemetry.write_artifacts(tmp_path / "run")
        assert sorted(written) == [
            METRICS_FILE, PROFILE_FILE, TRACE_FILE, TRACE_JSONL_FILE
        ]
        for path in written.values():
            assert (tmp_path / "run").joinpath(path.split("/")[-1]).exists()
        chrome = json.loads((tmp_path / "run" / TRACE_FILE).read_text())
        assert chrome["traceEvents"][0]["name"] == "run"


class TestDeterministicArtifacts:
    def _artifacts(self, small_config):
        telemetry = Telemetry.create(
            clock=FakeClock(),
            cpu_clock=FakeClock(step=0.0005),
            rss_fn=lambda: 1024,
        )
        run_resilient(small_config, telemetry=telemetry, sleep=no_sleep)
        return (
            telemetry.metrics.to_json(),
            telemetry.tracer.to_chrome_json(),
            telemetry.profiler.to_json(),
        )

    def test_two_serial_runs_export_identical_bytes(self, small_config):
        """The acceptance bar: same seed + same injected clock ->
        byte-identical metrics.json and trace.json (serial runs)."""
        first = self._artifacts(small_config)
        second = self._artifacts(small_config)
        assert first[0] == second[0]  # metrics.json
        assert first[1] == second[1]  # trace.json
        assert first[2] == second[2]  # profile.json


class TestExactCountersUnderFaults:
    """A deterministic fault scenario must yield exact counter values."""

    def _run(self, small_config):
        plan = FaultPlan.generate(
            FaultPlanConfig(
                seed=1,
                n_days=small_config.n_days,
                n_honeypots=small_config.n_honeypots,
                telescope_outage_rate=0.0,
                honeypot_churn_rate=0.0,
                openintel_miss_rate=0.0,
                dps_corruption_rate=0.0,
                transient_failures={"honeypot": 3},
            )
        )
        telemetry = Telemetry.create(clock=FakeClock())
        result = run_resilient(
            small_config,
            plan=plan,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            sleep=no_sleep,
            telemetry=telemetry,
        )
        return result, telemetry.metrics

    def test_exact_counter_values(self, small_config):
        result, metrics = self._run(small_config)
        value = metrics.value
        # Three injected failures exhaust the retry budget exactly.
        assert value(
            "pipeline_stage_attempts_total", stage="honeypot"
        ) == 3
        assert value(
            "pipeline_stage_attempt_failures_total", stage="honeypot"
        ) == 3
        assert value(
            "pipeline_stage_outcomes_total",
            stage="honeypot", status="degraded",
        ) == 1
        # Breaker threshold == retry budget: trips open on failure #3.
        assert value("breaker_failures_total", breaker="honeypot") == 3
        assert value(
            "breaker_transitions_total", breaker="honeypot", to_state="open"
        ) == 1
        assert value("breaker_state", breaker="honeypot") == 1  # open
        # Every other stage completed cleanly on the first attempt.
        for stage in ("internet", "attacks", "migration", "telescope",
                      "measurement", "fusion"):
            assert value(
                "pipeline_stage_outcomes_total", stage=stage, status="ok"
            ) == 1, stage
            assert value(
                "pipeline_stage_attempt_failures_total", stage=stage
            ) == 0, stage
        # The quality report agrees with the counters.
        stage = {s.name: s for s in result.quality.stages}["honeypot"]
        assert stage.status == "degraded"
        assert stage.attempts == 3
        # One stage-seconds observation per finished stage.
        seconds = metrics._families["pipeline_stage_seconds"]
        assert seconds.count(stage="honeypot") == 1
        assert seconds.count(stage="fusion") == 1


class TestSupervisedPoolCounters:
    def test_watchdog_kill_is_counted(self):
        registry = MetricsRegistry()
        pool = SupervisedPool(
            max_workers=2, mode=MODE_THREAD, metrics=registry
        )
        hung, fine = pool.run([
            TaskSpec("hung", lambda: time.sleep(120), deadline=0.2),
            TaskSpec("fine", lambda: 42),
        ])
        assert hung.status == STATUS_DEADLINE
        assert fine.value == 42
        assert registry.value("exec_tasks_queued_total") == 2
        assert registry.value("exec_workers_killed_total") == 1
        assert registry.value(
            "exec_task_outcomes_total", status="deadline"
        ) == 1
        assert registry.value("exec_task_outcomes_total", status="ok") == 1
        assert registry.value("exec_inflight_workers") == 0


class TestQuarantineCounters:
    def _write_feed(self, path):
        event = AttackEvent(SOURCE_TELESCOPE, 123, 0.0, 60.0, 2.5)
        good = json.dumps(event_to_dict(event))
        path.write_text(
            good + "\n" + "{not json}\n" + good + "\n", encoding="utf-8"
        )

    def test_drops_counted_per_feed_and_reason(self, tmp_path):
        path = tmp_path / "telescope.jsonl"
        self._write_feed(path)
        registry = MetricsRegistry()
        set_registry(registry)
        events, report = read_events_jsonl(path, feed="telescope")
        assert len(events) == 1
        assert report.rejected == 2
        assert registry.value(
            "records_quarantined_total",
            feed="telescope", reason=REASON_UNPARSEABLE,
        ) == 1
        assert registry.value(
            "records_quarantined_total",
            feed="telescope", reason=REASON_DUPLICATE,
        ) == 1

    def test_feedless_load_counts_under_unknown(self, tmp_path):
        path = tmp_path / "anon.jsonl"
        self._write_feed(path)
        registry = MetricsRegistry()
        set_registry(registry)
        read_events_jsonl(path)
        assert registry.value(
            "records_quarantined_total",
            feed="unknown", reason=REASON_UNPARSEABLE,
        ) == 1

    def test_disabled_registry_stays_silent(self, tmp_path):
        path = tmp_path / "telescope.jsonl"
        self._write_feed(path)
        events, report = read_events_jsonl(path, feed="telescope")
        assert len(events) == 1  # quarantine works without telemetry
        assert get_registry() is NULL_REGISTRY


class TestCLITelemetry:
    def test_simulate_metrics_writes_artifacts(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        code = main([
            "--preset", "small", "simulate",
            "--run-dir", str(run_dir), "--metrics",
        ])
        assert code == 0
        capsys.readouterr()
        for name in (METRICS_FILE, TRACE_FILE, TRACE_JSONL_FILE,
                     PROFILE_FILE, "quality.json"):
            assert (run_dir / name).exists(), name
        snapshot = json.loads((run_dir / METRICS_FILE).read_text())
        outcomes = snapshot["metrics"]["pipeline_stage_outcomes_total"]
        ok_stages = {
            series["labels"]["stage"]
            for series in outcomes["series"]
            if series["labels"]["status"] == "ok"
        }
        assert "fusion" in ok_stages

        # The flight report renders from the persisted artifacts.
        assert main(["report", "--run-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "Flight report" in out
        assert "fusion" in out

        # `metrics` serves Prometheus text and raw JSON from the run dir.
        assert main(["metrics", str(run_dir)]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE pipeline_stage_outcomes_total counter" in prom
        assert main(["metrics", str(run_dir), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["metrics"]

        # `trace` serves both export shapes.
        assert main(["trace", str(run_dir)]) == 0
        chrome = json.loads(capsys.readouterr().out)
        assert any(
            e["name"] == "run" for e in chrome["traceEvents"]
        )
        assert main(["trace", str(run_dir), "--format", "jsonl"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert any(json.loads(l)["name"] == "stage" for l in lines)

    def test_metrics_command_without_artifact(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path)]) == 2
        assert METRICS_FILE in capsys.readouterr().err

    def test_trace_command_without_artifact(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path)]) == 2
        assert TRACE_FILE in capsys.readouterr().err

    def test_simulate_without_metrics_writes_no_artifacts(
        self, tmp_path, capsys
    ):
        run_dir = tmp_path / "plain"
        assert main([
            "--preset", "small", "simulate", "--run-dir", str(run_dir),
        ]) == 0
        capsys.readouterr()
        assert not (run_dir / METRICS_FILE).exists()
        assert not (run_dir / TRACE_FILE).exists()
