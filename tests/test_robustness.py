"""Unit tests for the boundary-sensitivity analysis."""

import pytest

from repro.core.events import AttackEvent, SOURCE_TELESCOPE
from repro.core.robustness import boundary_sensitivity, trim_events
from repro.core.webmap import WebHostingIndex, WebImpactAnalysis

DAY = 86400.0


def event(target, day):
    start = day * DAY + 100.0
    return AttackEvent(SOURCE_TELESCOPE, target, start, start + 60.0, 1.0)


class TestTrim:
    def test_trim_drops_edges(self):
        events = [event(1, d) for d in (0, 15, 29, 30, 59, 89, 90, 119)]
        trimmed = trim_events(events, n_days=120, trim_days=30)
        assert [e.start_day for e in trimmed] == [30, 59, 89]

    def test_zero_trim_keeps_all(self):
        events = [event(1, d) for d in (0, 119)]
        assert len(trim_events(events, 120, 0)) == 2

    def test_rejects_overlong_trim(self):
        with pytest.raises(ValueError):
            trim_events([], n_days=60, trim_days=30)

    def test_rejects_negative_trim(self):
        with pytest.raises(ValueError):
            trim_events([], n_days=60, trim_days=-1)


class TestBoundarySensitivity:
    def _setup(self):
        index = WebHostingIndex(
            [("www.a.com", 100, 0, 120), ("www.b.com", 200, 0, 120)]
        )
        impact = WebImpactAnalysis(index)
        first_seen = {"www.a.com": 0, "www.b.com": 0, "www.c.com": 0}
        return impact, first_seen

    def test_edge_attack_changes_classification(self):
        impact, first_seen = self._setup()
        # a.com attacked only on day 2 (inside the trim); migrates day 20.
        events = [event(100, 2)]
        drift = boundary_sensitivity(
            events, impact, first_seen, {"www.a.com": 20}, n_days=120,
            trim_days=30,
        )
        assert drift.full.attacked == 1
        assert drift.trimmed.attacked == 0
        assert drift.full.attacked_migrating == 1
        assert drift.attacked_fraction_drift > 0

    def test_mid_window_attack_stable(self):
        impact, first_seen = self._setup()
        events = [event(100, 60)]
        drift = boundary_sensitivity(
            events, impact, first_seen, {}, n_days=120, trim_days=30
        )
        assert drift.full.attacked == drift.trimmed.attacked == 1
        assert drift.is_negligible(tolerance=1e-9)

    def test_simulation_boundary_drift_negligible(self, sim):
        """The paper's validation: one-month trims barely move the tree."""
        impact = WebImpactAnalysis(sim.web_index)
        drift = boundary_sensitivity(
            sim.fused.combined.events,
            impact,
            sim.openintel.first_seen,
            sim.dps_usage.first_day_by_domain(),
            n_days=sim.n_days,
            trim_days=max(1, sim.n_days // 12),
        )
        assert drift.is_negligible(tolerance=0.08)
