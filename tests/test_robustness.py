"""Unit tests for the boundary-sensitivity analysis."""

import pytest

from repro.core.events import AttackEvent, SOURCE_TELESCOPE
from repro.core.robustness import boundary_sensitivity, trim_events
from repro.core.webmap import WebHostingIndex, WebImpactAnalysis

DAY = 86400.0


def event(target, day):
    start = day * DAY + 100.0
    return AttackEvent(SOURCE_TELESCOPE, target, start, start + 60.0, 1.0)


class TestTrim:
    def test_trim_drops_edges(self):
        events = [event(1, d) for d in (0, 15, 29, 30, 59, 89, 90, 119)]
        trimmed = trim_events(events, n_days=120, trim_days=30)
        assert [e.start_day for e in trimmed] == [30, 59, 89]

    def test_zero_trim_keeps_all(self):
        events = [event(1, d) for d in (0, 119)]
        assert len(trim_events(events, 120, 0)) == 2

    def test_rejects_overlong_trim(self):
        with pytest.raises(ValueError):
            trim_events([], n_days=60, trim_days=30)

    def test_rejects_negative_trim(self):
        with pytest.raises(ValueError):
            trim_events([], n_days=60, trim_days=-1)

    def test_zero_trim_keeps_boundary_days(self):
        """trim_days=0 is the identity, including both window edges."""
        events = [event(1, d) for d in (0, 1, 58, 59)]
        trimmed = trim_events(events, n_days=60, trim_days=0)
        assert trimmed == events

    def test_trim_covering_whole_window_rejected(self):
        # 2*trim == n_days leaves an empty window.
        with pytest.raises(ValueError):
            trim_events([event(1, 10)], n_days=60, trim_days=30)

    def test_largest_legal_trim_keeps_middle_day(self):
        # 2*trim == n_days - 1: exactly one day survives.
        events = [event(1, d) for d in (29, 30, 31)]
        trimmed = trim_events(events, n_days=61, trim_days=30)
        assert [e.start_day for e in trimmed] == [30]

    def test_boundary_events_half_open(self):
        """Day `trim_days` is kept; day `n_days - trim_days` is dropped."""
        events = [event(1, 9), event(2, 10), event(3, 49), event(4, 50)]
        trimmed = trim_events(events, n_days=60, trim_days=10)
        assert [e.target for e in trimmed] == [2, 3]

    def test_exact_midnight_start_classified_by_start_day(self):
        # An event starting exactly at the trim boundary's midnight.
        boundary = AttackEvent(
            SOURCE_TELESCOPE, 7, 10 * DAY, 10 * DAY + 60.0, 1.0
        )
        assert trim_events([boundary], n_days=60, trim_days=10) == [boundary]
        assert trim_events([boundary], n_days=60, trim_days=11) == []

    def test_matches_naive_filter_property(self):
        """Random windows agree with the obvious per-event predicate."""
        import random

        rng = random.Random(99)
        for _ in range(25):
            n_days = rng.randint(2, 120)
            trim = rng.randint(0, (n_days - 1) // 2)
            events = [
                event(t, rng.randint(0, n_days - 1)) for t in range(40)
            ]
            expected = [
                e for e in events
                if trim <= e.start_day < n_days - trim
            ]
            assert trim_events(events, n_days, trim) == expected


class TestBoundarySensitivity:
    def _setup(self):
        index = WebHostingIndex(
            [("www.a.com", 100, 0, 120), ("www.b.com", 200, 0, 120)]
        )
        impact = WebImpactAnalysis(index)
        first_seen = {"www.a.com": 0, "www.b.com": 0, "www.c.com": 0}
        return impact, first_seen

    def test_edge_attack_changes_classification(self):
        impact, first_seen = self._setup()
        # a.com attacked only on day 2 (inside the trim); migrates day 20.
        events = [event(100, 2)]
        drift = boundary_sensitivity(
            events, impact, first_seen, {"www.a.com": 20}, n_days=120,
            trim_days=30,
        )
        assert drift.full.attacked == 1
        assert drift.trimmed.attacked == 0
        assert drift.full.attacked_migrating == 1
        assert drift.attacked_fraction_drift > 0

    def test_mid_window_attack_stable(self):
        impact, first_seen = self._setup()
        events = [event(100, 60)]
        drift = boundary_sensitivity(
            events, impact, first_seen, {}, n_days=120, trim_days=30
        )
        assert drift.full.attacked == drift.trimmed.attacked == 1
        assert drift.is_negligible(tolerance=1e-9)

    def test_simulation_boundary_drift_negligible(self, sim):
        """The paper's validation: one-month trims barely move the tree."""
        impact = WebImpactAnalysis(sim.web_index)
        drift = boundary_sensitivity(
            sim.fused.combined.events,
            impact,
            sim.openintel.first_seen,
            sim.dps_usage.first_day_by_domain(),
            n_days=sim.n_days,
            trim_days=max(1, sim.n_days // 12),
        )
        assert drift.is_negligible(tolerance=0.08)
