"""Unit tests for multi-source fusion and joint-attack detection."""

import pytest

from repro.core.events import AttackDataset, AttackEvent, SOURCE_HONEYPOT, SOURCE_TELESCOPE
from repro.core.fusion import FusedDataset
from repro.net.packet import PROTO_TCP, PROTO_UDP


def tel(target, start, end, ports=(80,), proto=PROTO_TCP, asn=None, country="US"):
    return AttackEvent(
        SOURCE_TELESCOPE, target, start, end, 1.0, ip_proto=proto,
        ports=ports, country=country, asn=asn,
    )


def hp(target, start, end, protocol="NTP"):
    return AttackEvent(
        SOURCE_HONEYPOT, target, start, end, 10.0,
        reflector_protocol=protocol,
    )


def fused(tel_events, hp_events):
    return FusedDataset(
        AttackDataset(tel_events, "Network Telescope"),
        AttackDataset(hp_events, "Amplification Honeypot"),
    )


class TestSummary:
    def test_three_rows(self):
        dataset = fused([tel(1, 0, 10)], [hp(2, 0, 10)])
        rows = dataset.summary_rows()
        assert [r["source"] for r in rows] == [
            "Network Telescope", "Amplification Honeypot", "Combined"
        ]
        assert rows[2]["events"] == 2
        assert rows[2]["targets"] == 2

    def test_combined_targets_not_double_counted(self):
        dataset = fused([tel(1, 0, 10)], [hp(1, 100, 110)])
        assert dataset.summary_rows()[2]["targets"] == 1


class TestSharedAndJoint:
    def test_shared_targets(self):
        dataset = fused(
            [tel(1, 0, 10), tel(2, 0, 10)],
            [hp(1, 5000, 5010), hp(3, 0, 10)],
        )
        assert dataset.shared_targets() == {1}

    def test_shared_but_not_joint(self):
        dataset = fused([tel(1, 0, 10)], [hp(1, 5000, 5010)])
        assert dataset.shared_targets() == {1}
        assert dataset.joint_targets() == set()

    def test_joint_when_overlapping(self):
        dataset = fused([tel(1, 0, 100)], [hp(1, 50, 150)])
        joints = dataset.joint_attacks()
        assert len(joints) == 1
        assert joints[0].target == 1

    def test_touching_intervals_are_joint(self):
        dataset = fused([tel(1, 0, 100)], [hp(1, 100, 200)])
        assert len(dataset.joint_attacks()) == 1

    def test_multiple_overlaps_counted_per_pair(self):
        dataset = fused(
            [tel(1, 0, 100), tel(1, 60, 160)],
            [hp(1, 50, 150)],
        )
        assert len(dataset.joint_attacks()) == 2
        assert dataset.joint_targets() == {1}

    def test_different_targets_never_joint(self):
        dataset = fused([tel(1, 0, 100)], [hp(2, 0, 100)])
        assert dataset.joint_attacks() == []


class TestJointAnalysis:
    def test_analysis_shapes(self):
        tel_events = [
            tel(1, 0, 100, ports=(27015,), proto=PROTO_UDP, asn=16276, country="FR"),
            tel(2, 0, 100, ports=(80,), proto=PROTO_TCP, asn=4134, country="CN"),
            tel(3, 0, 100, ports=(80, 443), proto=PROTO_TCP, asn=4134, country="CN"),
        ]
        hp_events = [
            hp(1, 50, 150, "NTP"),
            hp(2, 50, 150, "NTP"),
            hp(3, 50, 150, "DNS"),
        ]
        analysis = fused(tel_events, hp_events).joint_analysis()
        assert analysis.n_joint_targets == 3
        assert analysis.n_shared_targets == 3
        assert analysis.single_port_fraction == pytest.approx(2 / 3)
        assert analysis.udp_27015_fraction == 1.0
        assert analysis.tcp_http_fraction == 1.0
        assert analysis.reflection_protocol_shares["NTP"] == pytest.approx(2 / 3)
        top_asns = dict(analysis.top_asns)
        assert top_asns[4134] == pytest.approx(2 / 3)

    def test_analysis_with_no_joints(self):
        analysis = fused([tel(1, 0, 10)], [hp(2, 0, 10)]).joint_analysis()
        assert analysis.n_joint_targets == 0
        assert analysis.single_port_fraction == 0.0
        assert analysis.reflection_protocol_shares == {}
