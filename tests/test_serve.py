"""Unit tests for the live service's building blocks.

WAL (append/replay/rotation/torn tails/shed tombstones), rolling
snapshots (retention, corrupt fall-back), admission control (watermark
hysteresis, drop-oldest), the fused store (apply/query/state roundtrip)
and the service itself (validation, accounting, drain, recovery).
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionQueue, QueueEntry
from repro.serve.service import LiveIngestService, ServeConfig
from repro.serve.snapshot import SnapshotManager, snapshot_stage_name
from repro.serve.state import (
    LiveFusedStore,
    normalize_dps_record,
    validate_dps_record,
)
from repro.serve.wal import (
    KIND_ATTACK,
    KIND_DPS,
    KIND_SHED,
    WriteAheadLog,
    segment_first_seq,
    segment_name,
)
from repro.store.checkpoint import CheckpointStore


def attack(i, *, day=0):
    """A valid serialized attack event; strictly ordered by *i*."""
    base = day * 86400.0
    return {
        "source": "telescope",
        "target": (10 << 24) + i,
        "start_ts": base + float(i),
        "end_ts": base + float(i) + 30.0,
        "intensity": 50.0 + i,
    }


def entry(seq, feed="telescope"):
    return QueueEntry(seq=seq, kind=KIND_ATTACK, feed=feed, record=attack(seq))


class TestWriteAheadLog:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for seq in range(1, 6):
            wal.append(seq, KIND_ATTACK, attack(seq))
        wal.close()
        records, report = WriteAheadLog(tmp_path).replay()
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]
        assert records[0].record == attack(1)
        assert report.torn_lines == 0

    def test_replay_after_seq_skips_covered_prefix(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for seq in range(1, 6):
            wal.append(seq, KIND_ATTACK, attack(seq))
        wal.close()
        records, _report = WriteAheadLog(tmp_path).replay(after_seq=3)
        assert [r.seq for r in records] == [4, 5]

    def test_shed_tombstone_excludes_dropped_seqs(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for seq in range(1, 5):
            wal.append(seq, KIND_ATTACK, attack(seq))
        wal.append(5, KIND_SHED, {"seqs": [1, 2], "feed": "telescope"})
        wal.close()
        records, report = WriteAheadLog(tmp_path).replay()
        assert [r.seq for r in records] == [3, 4]
        assert report.shed_seqs == 2

    def test_torn_tail_discarded_not_fatal(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, KIND_ATTACK, attack(1))
        wal.append(2, KIND_ATTACK, attack(2))
        wal.close()
        segment = next(tmp_path.glob("wal-*.jsonl"))
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "kind": "att')  # crash mid-append
        records, report = WriteAheadLog(tmp_path).replay()
        assert [r.seq for r in records] == [1, 2]
        assert report.torn_lines == 1

    def test_repair_tail_truncates_torn_bytes(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(1, KIND_ATTACK, attack(1))
        wal.append(2, KIND_ATTACK, attack(2))
        wal.close()
        segment = next(tmp_path.glob("wal-*.jsonl"))
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "kind": "att')  # crash mid-append
        trimmed = WriteAheadLog(tmp_path).repair_tail(segment)
        assert trimmed > 0
        # The file now ends at the last complete line: appending to it
        # is safe, and a second repair is a no-op.
        assert segment.read_text(encoding="utf-8").endswith("\n")
        assert WriteAheadLog(tmp_path).repair_tail(segment) == 0
        records, report = WriteAheadLog(tmp_path).replay()
        assert [r.seq for r in records] == [1, 2]
        assert report.torn_lines == 0

    def test_repair_tail_then_append_survives_second_replay(self, tmp_path):
        """The double-crash scenario: a torn tail must not swallow
        records appended after recovery continues the segment."""
        wal = WriteAheadLog(tmp_path)
        wal.append(1, KIND_ATTACK, attack(1))
        wal.close()
        segment = next(tmp_path.glob("wal-*.jsonl"))
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 2, "kind": "att')  # crash mid-append
        recovered = WriteAheadLog(tmp_path)
        recovered.repair_tail(segment)
        recovered.open_segment(segment_first_seq(segment.name))
        recovered.append(2, KIND_ATTACK, attack(2))
        recovered.append(3, KIND_ATTACK, attack(3))
        recovered.close()
        records, report = WriteAheadLog(tmp_path).replay()
        assert [r.seq for r in records] == [1, 2, 3]
        assert report.torn_lines == 0
        assert WriteAheadLog(tmp_path).max_seq() == 3

    def test_rotate_and_prune_respect_coverage(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.open_segment(1)
        for seq in (1, 2, 3):
            wal.append(seq, KIND_ATTACK, attack(seq))
        wal.rotate(4)
        for seq in (4, 5):
            wal.append(seq, KIND_ATTACK, attack(seq))
        assert len(wal.segments()) == 2
        # A snapshot at 2 does not cover seq 3: nothing prunable.
        assert wal.prune(2) == 0
        # A snapshot at 3 covers the whole first segment.
        assert wal.prune(3) == 1
        records, _report = wal.replay(after_seq=3)
        assert [r.seq for r in records] == [4, 5]
        wal.close()

    def test_current_segment_never_pruned(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.open_segment(1)
        wal.append(1, KIND_ATTACK, attack(1))
        assert wal.prune(100) == 0
        wal.close()

    def test_max_seq_spans_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.open_segment(1)
        wal.append(1, KIND_ATTACK, attack(1))
        wal.rotate(2)
        wal.append(2, KIND_DPS, {"domain": "x", "provider": "p", "day": 0})
        wal.close()
        assert WriteAheadLog(tmp_path).max_seq() == 2

    def test_segment_naming_roundtrip(self):
        assert segment_first_seq(segment_name(42)) == 42
        assert segment_first_seq("other.jsonl") is None
        assert segment_first_seq("wal-notanum.jsonl") is None

    def test_unknown_kind_refused(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        with pytest.raises(ValueError):
            wal.append(1, "mystery", {})


class TestSnapshotManager:
    def test_rolling_retention(self, tmp_path):
        manager = SnapshotManager(tmp_path, keep=2)
        for seq in (10, 20, 30):
            manager.save(seq, {"seq": seq})
        assert manager.seqs() == [20, 30]

    def test_load_newest(self, tmp_path):
        manager = SnapshotManager(tmp_path, keep=2)
        manager.save(10, {"seq": 10})
        manager.save(20, {"seq": 20})
        loaded = manager.load_newest_valid()
        assert loaded.found and loaded.seq == 20
        assert loaded.payload == {"seq": 20}

    def test_empty_store(self, tmp_path):
        loaded = SnapshotManager(tmp_path).load_newest_valid()
        assert not loaded.found and loaded.seq == 0

    def test_corrupt_newest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path)
        manager = SnapshotManager(store, keep=2)
        manager.save(10, {"seq": 10})
        manager.save(20, {"seq": 20})
        payload = store.payload_path(snapshot_stage_name(20))
        payload.write_bytes(b"garbage" + payload.read_bytes())
        loaded = manager.load_newest_valid()
        assert loaded.found and loaded.seq == 10
        assert loaded.discarded == [snapshot_stage_name(20)]
        # The corrupt snapshot was discarded on disk too.
        assert manager.seqs() == [10]


class TestAdmissionQueue:
    def test_watermark_hysteresis(self):
        queue = AdmissionQueue(maxsize=10, high_watermark=6, low_watermark=2)
        assert queue.refuse("telescope", 1) is None
        queue.push([entry(seq) for seq in range(1, 7)])  # depth 6 == high
        assert queue.shedding
        assert queue.refuse("telescope", 1) == queue.retry_after
        # Draining to 3 (> low) keeps shedding on; to 2 (== low) clears it.
        queue.take(max_items=3, timeout=0)
        assert queue.shedding
        queue.take(max_items=1, timeout=0)
        assert not queue.shedding
        assert queue.refuse("telescope", 1) is None

    def test_drop_oldest_returns_evicted(self):
        queue = AdmissionQueue(maxsize=4, high_watermark=3, low_watermark=1)
        queue.push([entry(1), entry(2)])
        dropped = queue.push([entry(3), entry(4), entry(5), entry(6)])
        assert [e.seq for e in dropped] == [1, 2]
        assert queue.depth == 4
        assert [e.seq for e in queue.take(max_items=10, timeout=0)] == [
            3, 4, 5, 6,
        ]

    def test_take_batches_fifo(self):
        queue = AdmissionQueue(maxsize=10)
        queue.push([entry(seq) for seq in (1, 2, 3)])
        assert [e.seq for e in queue.take(max_items=2, timeout=0)] == [1, 2]
        assert [e.seq for e in queue.take(max_items=2, timeout=0)] == [3]
        assert queue.take(max_items=2, timeout=0) == []

    def test_bad_watermarks_refused(self):
        with pytest.raises(ValueError):
            AdmissionQueue(maxsize=10, high_watermark=2, low_watermark=5)
        with pytest.raises(ValueError):
            AdmissionQueue(maxsize=1)


class TestDpsValidation:
    def test_valid(self):
        record = {"domain": "x.com", "provider": "p", "day": 3}
        assert validate_dps_record(record) is None
        assert normalize_dps_record(record)["active"] is True

    @pytest.mark.parametrize(
        "record,reason",
        [
            ("nope", "not-an-object"),
            ({"provider": "p", "day": 0}, "bad-type:domain"),
            ({"domain": "x", "day": 0}, "bad-type:provider"),
            ({"domain": "x", "provider": "p"}, "bad-type:day"),
            ({"domain": "x", "provider": "p", "day": True}, "bad-type:day"),
            ({"domain": "x", "provider": "p", "day": -1}, "out-of-range:day"),
            (
                {"domain": "x", "provider": "p", "day": 0, "active": 1},
                "bad-type:active",
            ),
        ],
    )
    def test_rejections(self, record, reason):
        assert validate_dps_record(record) == reason


class TestLiveFusedStore:
    def test_apply_and_query(self):
        store = LiveFusedStore(metrics=MetricsRegistry())
        for i in range(5):
            store.apply_attack(attack(i))
        victim = (10 << 24) + 2
        events = store.events_for_ip(victim)
        assert len(events) == 1 and events[0]["target"] == victim
        by_prefix = store.events_for_prefix(10 << 24, 24, limit=3)
        assert len(by_prefix) == 3
        # Newest first.
        assert by_prefix[0]["start_ts"] > by_prefix[-1]["start_ts"]
        assert store.victims_in_prefix(10 << 24, 16) == [
            (10 << 24) + i for i in range(5)
        ]

    def test_dps_latest_by_day_wins(self):
        store = LiveFusedStore(metrics=MetricsRegistry())
        store.apply_dps({"domain": "x", "provider": "old", "day": 1})
        store.apply_dps({"domain": "x", "provider": "new", "day": 5})
        store.apply_dps({"domain": "x", "provider": "stale", "day": 2})
        assert store.domain_status("x")["provider"] == "new"
        store.apply_dps(
            {"domain": "x", "provider": "off", "day": 6, "active": False}
        )
        assert store.protected_domains() == 0

    def test_per_victim_ring_bounded(self):
        store = LiveFusedStore(
            max_events_per_victim=3, metrics=MetricsRegistry()
        )
        victim = (10 << 24) + 1
        for i in range(10):
            record = attack(1)
            record["start_ts"] += i
            record["end_ts"] += i
            store.apply_attack(record)
        assert len(store.events_for_ip(victim, limit=100)) == 3

    def test_state_roundtrip_preserves_digest(self):
        store = LiveFusedStore(metrics=MetricsRegistry())
        for i in range(8):
            store.apply_attack(attack(i))
        store.apply_dps({"domain": "x", "provider": "p", "day": 0})
        restored = LiveFusedStore.from_state_dict(
            json.loads(json.dumps(store.state_dict())),
            metrics=MetricsRegistry(),
        )
        assert restored.state_digest() == store.state_digest()
        assert restored.summary() == store.summary()

    def test_state_version_mismatch_raises(self):
        store = LiveFusedStore(metrics=MetricsRegistry())
        state = store.state_dict()
        state["version"] = 999
        with pytest.raises(ValueError):
            LiveFusedStore.from_state_dict(state)

    def test_rejected_apply_leaves_store_untouched(self):
        store = LiveFusedStore(metrics=MetricsRegistry())
        store.apply_attack(attack(0, day=5))
        digest = store.state_digest()
        with pytest.raises(ValueError):
            store.apply_attack(attack(0, day=1))  # beyond disorder tolerance
        assert store.state_digest() == digest


class TestLiveIngestService:
    def make(self, tmp_path, **overrides):
        defaults = dict(
            data_dir=tmp_path / "serve",
            snapshot_every_events=10,
            queue_size=256,
        )
        defaults.update(overrides)
        return LiveIngestService(
            ServeConfig(**defaults), metrics=MetricsRegistry()
        )

    def test_submit_validates_and_accounts(self, tmp_path):
        service = self.make(tmp_path)
        service.start()
        try:
            result = service.submit(
                "telescope", KIND_ATTACK,
                [attack(1), {"source": "telescope"}, "junk"],
            )
            assert result.accepted == 1
            assert result.rejected == 2
            assert result.reasons["not-an-object"] == 1
            assert service.quiesce(timeout=10)
            assert service.store.applied_events == 1
        finally:
            service.stop()

    def test_unknown_feed_rejected_whole(self, tmp_path):
        service = self.make(tmp_path)
        service.start()
        try:
            result = service.submit("mystery", KIND_ATTACK, [attack(1)])
            assert result.accepted == 0
            assert result.reasons == {"unknown-feed": 1}
        finally:
            service.stop()

    def test_drain_then_recover_identical(self, tmp_path):
        service = self.make(tmp_path)
        service.start()
        service.submit("telescope", KIND_ATTACK, [attack(i) for i in range(25)])
        assert service.quiesce(timeout=10)
        digest = service.store.state_digest()
        assert service.drain(timeout=10)
        recovered = self.make(tmp_path)
        info = recovered.start()
        try:
            assert not info.fresh_start
            assert recovered.store.state_digest() == digest
            # Sequence numbering continues; no seq is ever reused.
            result = recovered.submit("telescope", KIND_ATTACK, [attack(30)])
            assert result.accepted == 1
            assert recovered._seq > 25
        finally:
            recovered.stop()

    def test_draining_service_refuses(self, tmp_path):
        service = self.make(tmp_path)
        service.start()
        service.drain(timeout=10)
        result = service.submit("telescope", KIND_ATTACK, [attack(1)])
        assert result.refused

    def test_breaker_opens_on_apply_failures(self, tmp_path):
        service = self.make(tmp_path, breaker_threshold=2)
        service.start()
        try:
            # Establish day 5, then feed records that deterministically
            # fail at apply (older than the disorder tolerance).
            service.submit("telescope", KIND_ATTACK, [attack(0, day=5)])
            service.submit(
                "telescope", KIND_ATTACK,
                [attack(1, day=0), attack(2, day=0)],
            )
            assert service.quiesce(timeout=10)
            assert service.apply_rejected == 2
            assert service.breakers["telescope"].state == "open"
            refused = service.submit("telescope", KIND_ATTACK, [attack(3, day=5)])
            assert refused.refused
        finally:
            service.stop()

    def test_stats_shape(self, tmp_path):
        service = self.make(tmp_path)
        service.start()
        try:
            service.submit("telescope", KIND_ATTACK, [attack(1)])
            assert service.quiesce(timeout=10)
            stats = service.stats()
            assert stats["accepted"] == {"telescope": 1}
            assert stats["queue_depth"] == 0
            assert stats["recovery"]["fresh_start"] is True
            assert stats["summary"]["applied_events"] == 1
            assert set(stats["breakers"]) == {"dps", "honeypot", "telescope"}
        finally:
            service.stop()

    def test_metrics_flow(self, tmp_path):
        service = self.make(tmp_path)
        service.start()
        try:
            service.submit("telescope", KIND_ATTACK, [attack(i) for i in range(3)])
            assert service.quiesce(timeout=10)
            registry = service.metrics
            assert registry.value("serve_admitted_total", feed="telescope") == 3
            assert registry.value("serve_wal_appends_total", kind="attack") == 3
            assert registry.value("serve_applied_total", kind="attack") == 3
            text = registry.render_prometheus()
            assert "serve_queue_depth" in text
        finally:
            service.stop()
