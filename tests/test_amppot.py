"""Unit tests for the AmpPot fleet."""

from random import Random

import pytest

from repro.attacks.attacker import ATTACK_DIRECT, ATTACK_REFLECTION, GroundTruthAttack
from repro.honeypot.amppot import (
    AmpPotFleet,
    FleetConfig,
    HoneypotInstance,
    RequestBatch,
    REPLY_RATE_LIMIT_PER_MINUTE,
)
from repro.net.packet import PROTO_TCP, PROTO_UDP


def reflection(rate=100.0, duration=300.0, protocol="NTP", target=0x0A000001):
    return GroundTruthAttack(
        attack_id=1, kind=ATTACK_REFLECTION, target=target, start=0.0,
        duration=duration, rate=rate, vector=f"reflection-{protocol.lower()}",
        ip_proto=PROTO_UDP, ports=(123,), reflector_protocol=protocol,
    )


class TestFleetDeployment:
    def test_default_fleet_size(self):
        assert len(AmpPotFleet().instances) == 24

    def test_region_plan(self):
        fleet = AmpPotFleet(FleetConfig(seed=1))
        regions = [i.region for i in fleet.instances]
        assert regions.count("america") == 11
        assert regions.count("europe") == 8
        assert regions.count("asia") == 4
        assert regions.count("australia") == 1

    def test_custom_fleet_size(self):
        fleet = AmpPotFleet(FleetConfig(seed=1, n_instances=8))
        assert len(fleet.instances) == 8

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            AmpPotFleet(FleetConfig(n_instances=0))

    def test_rate_limit_rule(self):
        instance = HoneypotInstance(0, 1, "europe", "cloud")
        assert instance.would_reply(REPLY_RATE_LIMIT_PER_MINUTE - 1)
        assert not instance.would_reply(REPLY_RATE_LIMIT_PER_MINUTE)


class TestObservation:
    def test_direct_attacks_unobserved(self):
        fleet = AmpPotFleet(FleetConfig(seed=2))
        direct = GroundTruthAttack(
            attack_id=1, kind=ATTACK_DIRECT, target=1, start=0.0,
            duration=60.0, rate=100.0, vector="syn-flood", ip_proto=PROTO_TCP,
        )
        assert list(fleet.observe(direct)) == []

    def test_reflection_attack_logged_by_several_instances(self):
        fleet = AmpPotFleet(FleetConfig(seed=3))
        batches = list(fleet.observe(reflection()))
        honeypots = {b.honeypot_id for b in batches}
        assert len(honeypots) >= 5  # p=0.45 over 24 instances

    def test_victim_recorded_from_spoofed_source(self):
        fleet = AmpPotFleet(FleetConfig(seed=4))
        batches = list(fleet.observe(reflection(target=0x0C0C0C0C)))
        assert all(b.victim == 0x0C0C0C0C for b in batches)

    def test_protocol_preserved(self):
        fleet = AmpPotFleet(FleetConfig(seed=5))
        batches = list(fleet.observe(reflection(protocol="CharGen")))
        assert all(b.protocol == "CharGen" for b in batches)

    def test_request_volume_tracks_rate(self):
        fleet = AmpPotFleet(FleetConfig(seed=6, rate_jitter_sigma=0.01))
        attack = reflection(rate=50.0, duration=600.0)
        batches = list(fleet.observe(attack))
        n_instances = len({b.honeypot_id for b in batches})
        total = sum(b.count for b in batches)
        expected = 50.0 * 600.0 * n_instances
        assert 0.8 * expected < total < 1.2 * expected

    def test_abused_instances_vary_per_attack(self):
        fleet = AmpPotFleet(FleetConfig(seed=7))
        rng = Random(0)
        draws = {tuple(i.instance_id for i in fleet.abused_instances(rng))
                 for _ in range(10)}
        assert len(draws) > 1


class TestScannerNoise:
    def test_scans_below_event_threshold(self):
        fleet = AmpPotFleet(FleetConfig(seed=8, scan_max_requests=30))
        assert all(b.count <= 30 for b in fleet.scanner_noise(2))

    def test_capture_merges_and_sorts(self):
        fleet = AmpPotFleet(FleetConfig(seed=9))
        batches = fleet.capture([reflection()], n_days=1)
        timestamps = [b.timestamp for b in batches]
        assert timestamps == sorted(timestamps)


class TestRequestBatch:
    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            RequestBatch(0.0, 1, 0, "NTP", 0)

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            RequestBatch(0.0, 1, 0, "SMURF", 5)
