"""Edge cases and failure injection across subsystems."""

import pytest

from repro.attacks.attacker import ATTACK_DIRECT, GroundTruthAttack
from repro.attacks.schedule import ScheduleConfig, TargetPools
from repro.core.events import AttackDataset, AttackEvent, SOURCE_TELESCOPE
from repro.core.fusion import FusedDataset
from repro.core.timeseries import daily_series
from repro.dns.records import DomainTimeline, HostingState
from repro.dns.zone import Zone
from repro.dps.detection import DPSDetector
from repro.dps.providers import build_providers
from repro.honeypot.amppot import AmpPotFleet, FleetConfig
from repro.honeypot.detection import HoneypotDetector
from repro.internet.topology import InternetTopology, TopologyConfig
from repro.net.packet import PROTO_TCP, PacketBatch, TCP_ACK, TCP_SYN
from repro.telescope.rsdos import RSDoSDetector


class TestEmptyInputs:
    def test_empty_fusion(self):
        fused = FusedDataset(
            AttackDataset([], "Network Telescope"),
            AttackDataset([], "Amplification Honeypot"),
        )
        assert fused.shared_targets() == set()
        assert fused.joint_attacks() == []
        analysis = fused.joint_analysis()
        assert analysis.n_joint_targets == 0

    def test_empty_detector_runs(self):
        assert list(RSDoSDetector().run(iter([]))) == []
        assert list(HoneypotDetector().run(iter([]))) == []

    def test_empty_daily_series(self):
        series = daily_series([], 10)
        assert series.attacks.sum() == 0
        assert series.mean_daily_attacks() == 0.0

    def test_fleet_with_no_attacks(self):
        fleet = AmpPotFleet(FleetConfig(seed=1))
        assert fleet.capture([], n_days=0) == []

    def test_dps_scan_empty_zone(self):
        topology = InternetTopology.generate(TopologyConfig(seed=1, n_ases=10))
        providers = build_providers(topology)
        dataset = DPSDetector(providers).scan([Zone("com")], n_days=10)
        assert dataset.usages == []
        assert dataset.provider_site_counts() == {}


class TestBoundaryValues:
    def test_event_of_zero_duration(self):
        event = AttackEvent(SOURCE_TELESCOPE, 1, 100.0, 100.0, 1.0)
        assert event.duration == 0.0
        assert event.overlaps(event)

    def test_attack_exactly_at_window_edge(self):
        series = daily_series(
            [AttackEvent(SOURCE_TELESCOPE, 1, 10 * 86400.0 - 1, 10 * 86400.0, 1.0)],
            10,
        )
        assert series.attacks[9] == 1

    def test_flow_at_exact_timeout_boundary(self):
        from repro.telescope.flows import FlowTable

        table = FlowTable(timeout=300.0)

        def batch(ts):
            return PacketBatch(
                timestamp=ts, src=1, proto=PROTO_TCP, count=5, bytes=270,
                distinct_dsts=5, tcp_flags=TCP_SYN | TCP_ACK,
            )

        table.add(batch(0.0))
        # Exactly at the timeout is NOT expired (strict > in the rule).
        assert table.add(batch(300.0)) == []
        assert len(table) == 1

    def test_timeline_change_on_registration_day(self):
        domain = DomainTimeline("x.com", "com", 5, True)
        domain.set_state(5, HostingState(ip=1))
        assert domain.state_on(4) is None
        assert domain.state_on(5).ip == 1

    def test_single_day_simulation_window(self):
        from repro.dns.openintel import OpenIntelPlatform

        zone = Zone("com")
        domain = DomainTimeline("x.com", "com", 0, True)
        domain.set_state(0, HostingState(ip=1))
        zone.domains = [domain]
        dataset = OpenIntelPlatform([zone], n_days=1).measure()
        assert dataset.hosting_intervals == [("www.x.com", 1, 0, 1)]


class TestMisuseRejection:
    def test_pools_require_shared_hosting(self):
        topology = InternetTopology.generate(TopologyConfig(seed=2, n_ases=10))
        with pytest.raises(ValueError):
            TargetPools(
                web_shared=[], web_self=[], mail=[], dps_infra=[],
                topology=topology, named_hoster_ips={},
            )

    def test_unspoofed_attack_flag_roundtrip(self):
        attack = GroundTruthAttack(
            attack_id=1, kind=ATTACK_DIRECT, target=1, start=0.0,
            duration=60.0, rate=10.0, vector="syn-flood", spoofed=False,
        )
        assert not attack.spoofed
        assert attack.shifted(5.0).spoofed is False

    def test_schedule_config_zero_unspoofed(self):
        config = ScheduleConfig(unspoofed_fraction=0.0)
        assert config.unspoofed_fraction == 0.0


class TestDisorderTolerance:
    def test_flow_table_tolerates_slight_reordering(self):
        """Batches 1 s out of order must not corrupt flow accounting."""
        from repro.telescope.flows import FlowTable

        table = FlowTable(timeout=300.0)

        def batch(ts, src=1):
            return PacketBatch(
                timestamp=ts, src=src, proto=PROTO_TCP, count=5, bytes=270,
                distinct_dsts=5, tcp_flags=TCP_SYN | TCP_ACK,
            )

        flows = []
        for ts in (0.0, 10.0, 9.5, 20.0):
            flows.extend(table.add(batch(ts)))
        flows.extend(table.flush())
        assert len(flows) == 1
        assert flows[0].packets == 20
        assert flows[0].first_ts == 0.0
        assert flows[0].last_ts == 20.0
