"""Cross-layer consistency: independent code paths must agree.

The OpenINTEL substrate exposes the same facts through two interfaces —
raw daily snapshots (what a crawl consumer sees) and compiled hosting
intervals (what the analysis joins against). These tests verify the two
views are identical, and that the DPS detector reaches the same verdicts
from either input shape.
"""

import random

import pytest

from repro.dns.openintel import OpenIntelPlatform
from repro.dns.records import RRTYPE_A, RRTYPE_CNAME
from repro.dns.resolver import resolve_www
from repro.dps.detection import DPSDetector


@pytest.fixture(scope="module")
def platform(sim):
    return OpenIntelPlatform(sim.zones, sim.n_days)


class TestSnapshotVsIntervals:
    def test_snapshot_resolution_matches_index(self, sim, platform):
        """For sampled days, resolving every www label from the snapshot
        yields exactly the addresses the interval index reports."""
        rng = random.Random(5)
        days = rng.sample(range(sim.n_days), 4)
        for day in days:
            records = list(platform.snapshot(day))
            by_owner = {}
            for record in records:
                by_owner.setdefault(record.name, []).append(record)
            # Build name -> address from the snapshot itself.
            for zone in sim.zones:
                for domain in rng.sample(zone.domains, min(60, len(zone.domains))):
                    if not domain.has_www or not domain.exists_on(day):
                        continue
                    relevant = by_owner.get(domain.www_name, [])
                    state = domain.state_on(day)
                    if state.cname:
                        relevant = relevant + by_owner.get(state.cname, [])
                    address, _ = resolve_www(domain.www_name, relevant)
                    index_sites = sim.web_index.sites_on(address, day)
                    assert domain.www_name in index_sites

    def test_interval_count_matches_domain_timelines(self, sim):
        expected = sum(
            len(d.hosting_intervals(sim.n_days))
            for zone in sim.zones
            for d in zone.domains
        )
        assert sim.web_index.n_intervals == expected


class TestDetectorInputShapes:
    def test_state_and_record_classification_agree(self, sim, platform):
        """DPS classification from hosting states equals classification
        from the raw snapshot records on sampled (domain, day) pairs."""
        detector = DPSDetector(sim.providers, diversion_log=sim.diversion_log)
        rng = random.Random(6)
        checked = 0
        for zone in sim.zones:
            for domain in rng.sample(zone.domains, min(40, len(zone.domains))):
                if not domain.has_www:
                    continue
                day = rng.randrange(domain.registered_day, sim.n_days)
                state = domain.state_on(day)
                if state is None:
                    continue
                from_state = detector.classify_state(state, day)
                records = platform.domain_records(domain, day)
                from_records = detector.classify_records(
                    domain.www_name, records, day
                )
                assert from_state == from_records
                checked += 1
        assert checked > 50

    def test_usage_scan_agrees_with_per_day_classification(self, sim):
        """The change-day-optimized scan finds exactly the first protected
        day a naive daily sweep would find, for sampled protected domains."""
        detector = DPSDetector(sim.providers, diversion_log=sim.diversion_log)
        first_days = sim.dps_usage.first_day_by_domain()
        rng = random.Random(7)
        by_name = {
            d.www_name: d
            for zone in sim.zones
            for d in zone.domains
            if d.has_www
        }
        sample = rng.sample(sorted(first_days), min(25, len(first_days)))
        for www_name in sample:
            domain = by_name[www_name]
            naive_first = None
            for day in range(domain.registered_day, sim.n_days):
                state = domain.state_on(day)
                if state and detector.classify_state(state, day):
                    naive_first = day
                    break
            assert naive_first == first_days[www_name]
