"""Unit tests for daily time series."""

import pytest

from repro.core.events import AttackDataset, AttackEvent, SOURCE_TELESCOPE, SOURCE_HONEYPOT
from repro.core.fusion import FusedDataset
from repro.core.timeseries import daily_series, figure1_series
from repro.net.addressing import parse_ipv4

DAY = 86400.0


def event(target, day, frac=0.5, asn=None, source=SOURCE_TELESCOPE, dur=60.0):
    start = day * DAY + frac * DAY
    return AttackEvent(source, target, start, start + dur, 1.0, asn=asn)


class TestDailySeries:
    def test_counts_per_day(self):
        events = [event(1, 0), event(2, 0), event(3, 2)]
        series = daily_series(events, 4)
        assert series.attacks.tolist() == [2, 0, 1, 0]

    def test_unique_targets_deduplicated_within_day(self):
        events = [event(1, 0, 0.1), event(1, 0, 0.6), event(2, 0, 0.7)]
        series = daily_series(events, 1)
        assert series.attacks[0] == 3
        assert series.unique_targets[0] == 2

    def test_same_target_counts_on_each_day(self):
        events = [event(1, 0), event(1, 1)]
        series = daily_series(events, 2)
        assert series.unique_targets.tolist() == [1, 1]

    def test_slash16_rollup(self):
        events = [
            event(parse_ipv4("10.0.0.1"), 0),
            event(parse_ipv4("10.0.200.1"), 0),
            event(parse_ipv4("10.1.0.1"), 0),
        ]
        series = daily_series(events, 1)
        assert series.targeted_slash16s[0] == 2

    def test_asn_rollup_skips_unannotated(self):
        events = [event(1, 0, asn=100), event(2, 0, asn=100), event(3, 0)]
        series = daily_series(events, 1)
        assert series.targeted_asns[0] == 1

    def test_multiday_attack_counts_on_start_day(self):
        long_event = event(1, 0, frac=0.9, dur=3 * DAY)
        series = daily_series([long_event], 4)
        assert series.attacks.tolist() == [1, 0, 0, 0]

    def test_out_of_window_events_ignored(self):
        series = daily_series([event(1, 10)], 5)
        assert series.attacks.sum() == 0

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            daily_series([], 0)

    def test_stats(self):
        events = [event(1, 0), event(2, 0), event(3, 1)]
        series = daily_series(events, 2, label="x")
        assert series.mean_daily_attacks() == pytest.approx(1.5)
        assert series.peak_day() == 0
        assert series.as_dict()["attacks"] == [2, 1]


class TestFigure1:
    def test_three_panels(self):
        fused = FusedDataset(
            AttackDataset([event(1, 0)], "Network Telescope"),
            AttackDataset(
                [event(2, 1, source=SOURCE_HONEYPOT)], "Amplification Honeypot"
            ),
        )
        panels = figure1_series(fused, 2)
        assert set(panels) == {"telescope", "honeypot", "combined"}
        assert panels["combined"].attacks.tolist() == [1, 1]
