"""End-to-end integration tests: the paper's qualitative results.

These run against one shared small-scenario simulation (see conftest) and
assert the *shapes* the paper reports — who wins, by roughly what factor —
rather than absolute numbers, since the scenario is a scaled-down synthetic
Internet.
"""

import pytest

from repro.core.cohosting import cohosting_bins, is_monotone_decreasing_tail
from repro.core.distributions import (
    duration_cdf,
    intensity_cdf,
    per_protocol_intensity_cdfs,
)
from repro.core.intensity import IntensityModel, intensity_percentile_table
from repro.core.migration import MigrationAnalysis
from repro.core.ports import (
    port_cardinality,
    service_table,
    web_infrastructure_share,
    web_port_comparison,
)
from repro.core.rankings import (
    country_rank_of,
    country_ranking,
    ip_protocol_distribution,
    reflection_protocol_distribution,
)
from repro.core.taxonomy import classify_sites, taxonomy_counts
from repro.core.timeseries import figure1_series
from repro.core.webmap import WebImpactAnalysis, sites_alive_per_day
from repro.net.packet import PROTO_TCP, PROTO_UDP


@pytest.fixture(scope="module")
def analysis(sim):
    """Shared derived analyses over the session simulation."""
    impact = WebImpactAnalysis(sim.web_index)
    histories = impact.site_histories(sim.fused.combined.events)
    first_attack = {d: h.first_attack_day() for d, h in histories.items()}
    dps_first = sim.dps_usage.first_day_by_domain()
    model = IntensityModel(sim.fused.combined.events)
    return {
        "impact": impact,
        "histories": histories,
        "first_attack": first_attack,
        "dps_first": dps_first,
        "model": model,
        "taxonomy": taxonomy_counts(
            classify_sites(sim.openintel.first_seen, first_attack, dps_first)
        ),
        "migration": MigrationAnalysis(histories, dps_first, model),
    }


class TestTable1Shapes:
    def test_both_sources_detect_events(self, sim):
        rows = sim.fused.summary_rows()
        assert rows[0]["events"] > 100
        assert rows[1]["events"] > 100

    def test_combined_counts_consistent(self, sim):
        rows = {r["source"]: r for r in sim.fused.summary_rows()}
        combined = rows["Combined"]
        tel = rows["Network Telescope"]
        hp = rows["Amplification Honeypot"]
        assert combined["events"] == tel["events"] + hp["events"]
        assert combined["targets"] <= tel["targets"] + hp["targets"]
        assert combined["targets"] >= max(tel["targets"], hp["targets"])

    def test_telescope_has_more_followup_per_target(self, sim):
        """Paper: fewer events per target IP in the honeypot data."""
        assert (
            sim.fused.telescope.events_per_target()
            > sim.fused.honeypot.events_per_target()
        )

    def test_rollup_hierarchy(self, sim):
        for dataset in (sim.fused.telescope, sim.fused.honeypot):
            assert (
                len(dataset.unique_targets())
                >= len(dataset.unique_slash24s())
                >= len(dataset.unique_slash16s())
                >= 1
            )

    def test_detection_misses_some_ground_truth(self, sim):
        """Observation is lossy: filters and blind spots remove events."""
        assert len(sim.fused.combined) < len(sim.ground_truth)

    def test_active_network_fraction_positive(self, sim):
        fraction = sim.census.attacked_fraction(
            sim.fused.combined.unique_slash24s()
        )
        assert fraction > 0.005


class TestSection4Shapes:
    def test_tcp_dominates_telescope(self, sim):
        dist = ip_protocol_distribution(sim.fused.telescope)
        assert dist["TCP"] > 0.70
        assert dist["TCP"] > dist.get("UDP", 0) > dist.get("ICMP", 0)

    def test_ntp_leads_reflection(self, sim):
        entries = reflection_protocol_distribution(sim.fused.honeypot)
        assert entries[0].key == "NTP"
        assert 0.30 < entries[0].share < 0.60
        top3 = [e.key for e in entries[:3]]
        assert set(top3) == {"NTP", "DNS", "CharGen"}

    def test_us_and_china_lead_both_rankings(self, sim):
        for dataset in (sim.fused.telescope, sim.fused.honeypot):
            ranking = country_ranking(dataset, top_n=5)
            assert ranking[0].key == "US"
            assert "CN" in [e.key for e in ranking[:3]]

    def test_japan_underrepresented(self, sim):
        """Japan holds ~6 % of address space but ranks far lower here."""
        rank = country_rank_of(sim.fused.combined, "JP")
        assert rank is None or rank > 5

    def test_single_port_majority(self, sim):
        cardinality = port_cardinality(sim.fused.telescope)
        assert 0.5 < cardinality.single_fraction < 0.75

    def test_http_leads_tcp_services(self, sim):
        table = service_table(sim.fused.telescope, PROTO_TCP)
        assert table[0].key == "HTTP"
        assert table[0].share > 0.35
        assert table[1].key == "HTTPS"

    def test_game_port_leads_udp(self, sim):
        table = service_table(sim.fused.telescope, PROTO_UDP)
        assert table[0].key == "27015"

    def test_web_ports_are_two_thirds_of_tcp(self, sim):
        share = web_infrastructure_share(sim.fused.telescope)
        assert 0.55 < share < 0.85

    def test_web_attacks_more_intense_but_shorter(self, sim):
        comparison = web_port_comparison(sim.fused.telescope)
        assert comparison.web_more_intense
        assert comparison.web_shorter

    def test_durations_minutes_to_hours(self, sim):
        tel = duration_cdf(sim.fused.telescope)
        hp = duration_cdf(sim.fused.honeypot)
        assert 120 < tel.median < 1800
        assert 60 < hp.median < 1200
        # Randomly spoofed attacks last longer (paper Section 4).
        assert tel.median > hp.median

    def test_intensity_distributions(self, sim):
        tel = intensity_cdf(sim.fused.telescope)
        # Majority of attacks produce only a few pps at the telescope.
        assert tel.fraction_at_or_below(10.0) > 0.5
        assert tel.mean > tel.median  # heavy tail

    def test_per_protocol_intensities(self, sim):
        cdfs = per_protocol_intensity_cdfs(sim.fused.honeypot)
        assert "Overall" in cdfs and "NTP" in cdfs
        assert cdfs["NTP"].mean > cdfs["Overall"].median

    def test_daily_series_track_events(self, sim):
        panels = figure1_series(sim.fused, sim.n_days)
        assert panels["combined"].attacks.sum() == len(sim.fused.combined)
        assert (
            panels["combined"].attacks.sum()
            == panels["telescope"].attacks.sum()
            + panels["honeypot"].attacks.sum()
        )
        assert (panels["combined"].unique_targets
                <= panels["combined"].attacks).all()

    def test_medium_plus_attacks_are_minority(self, sim):
        model = IntensityModel(sim.fused.combined.events)
        medium = model.medium_plus(sim.fused.combined.events)
        assert 0 < len(medium) < 0.4 * len(sim.fused.combined)


class TestJointAttacks:
    def test_joint_targets_subset_of_shared(self, sim):
        joint = sim.fused.joint_targets()
        shared = sim.fused.shared_targets()
        assert joint <= shared
        assert len(joint) > 0

    def test_joint_attacks_more_single_port(self, sim):
        analysis = sim.fused.joint_analysis()
        overall = port_cardinality(sim.fused.telescope).single_fraction
        assert analysis.single_port_fraction > overall

    def test_joint_udp_favours_game_port(self, sim):
        analysis = sim.fused.joint_analysis()
        assert analysis.udp_27015_fraction > 0.3

    def test_ntp_gains_among_joint(self, sim):
        analysis = sim.fused.joint_analysis()
        entries = reflection_protocol_distribution(sim.fused.honeypot)
        overall_ntp = next(e.share for e in entries if e.key == "NTP")
        assert analysis.reflection_protocol_shares.get("NTP", 0) > overall_ntp


class TestSection5Shapes:
    def test_majority_of_sites_attacked_over_window(self, sim, analysis):
        counts = analysis["taxonomy"]
        assert 0.45 < counts.attacked_fraction < 0.85  # paper: 64 %

    def test_daily_affected_share(self, sim, analysis):
        alive = sites_alive_per_day(sim.openintel.first_seen, sim.n_days)
        _, fractions = analysis["impact"].daily_affected(
            sim.fused.combined.events, sim.n_days, alive
        )
        assert 0.005 < fractions.mean() < 0.35  # paper: ~3 % daily
        assert fractions.max() < 0.6

    def test_cohosting_histogram_shape(self, sim, analysis):
        associations = analysis["impact"].associate(sim.fused.combined.events)
        bins = cohosting_bins(associations)
        populated = [b for b in bins if b.target_ips > 0]
        assert len(populated) >= 3
        assert bins[0].target_ips > 0  # single-site IPs exist
        assert is_monotone_decreasing_tail(bins, tolerance=5)

    def test_minority_of_targets_host_web(self, sim, analysis):
        associations = analysis["impact"].associate(sim.fused.combined.events)
        hosting = {a.event.target for a in associations if a.site_count > 0}
        all_targets = sim.fused.combined.unique_targets()
        assert 0.05 < len(hosting) / len(all_targets) < 0.7


class TestSection6Shapes:
    def test_taxonomy_fractions(self, analysis):
        counts = analysis["taxonomy"]
        # ~4.3 % of attacked sites migrate in the paper.
        assert 0.015 < counts.attacked_migrating_fraction < 0.10
        # Preexisting customers concentrate in the attacked branch.
        assert (
            counts.attacked_preexisting_fraction
            > counts.unattacked_preexisting_fraction
        )
        # Some never-attacked sites still adopt protection.
        assert counts.unattacked_migrating_fraction > 0

    def test_protection_more_common_among_attacked(self, analysis):
        counts = analysis["taxonomy"]
        assert (
            counts.attacked_protected_fraction
            > counts.unattacked_protected_fraction
        )

    def test_repetition_not_determining(self, analysis):
        all_over, migrating_over = analysis["migration"].repetition_effect()
        # The migrating population is not *more* repeat-attacked in any
        # decisive way (paper: 2.17 % vs 7.65 % beyond five attacks).
        assert migrating_over < all_over + 0.25

    def test_intensity_accelerates_migration(self, analysis):
        migration = analysis["migration"]
        within_all = migration.migration_within(6)
        within_top = migration.migration_within(6, top_fraction=0.05)
        assert within_top > within_all

    def test_top_intensity_mostly_next_day(self, analysis):
        migration = analysis["migration"]
        assert (
            migration.migration_within(1, top_fraction=0.05)
            > migration.migration_within(1)
        )

    def test_long_attacks_fast_migration(self, analysis):
        cdf = analysis["migration"].delay_cdf_long_attacks()
        # Paper: 67.6 % within one day, 76 % within five days.
        assert cdf.fraction_at_or_below(1) > 0.4
        assert cdf.fraction_at_or_below(5) > 0.6

    def test_table9_shape(self, analysis):
        model = analysis["model"]
        site_intensity = {
            domain: max(model.normalized(e) for e in history.events)
            for domain, history in analysis["histories"].items()
        }
        rows = intensity_percentile_table(site_intensity.values())
        values = [v for _, v in rows]
        assert values == sorted(values)
        assert values[0] < 0.05  # 11.1th percentile effectively zero
        assert values[-1] <= 1.0

    def test_detection_agrees_with_ledger(self, sim):
        """DNS-based detection rediscovers the behavioural ground truth."""
        detected = sim.dps_usage.first_day_by_domain()
        for record in sim.ledger.migrations:
            assert record.domain in detected
            assert detected[record.domain] <= record.migration_day
        preexisting = {name for name, _ in sim.ledger.preexisting}
        assert preexisting <= set(detected)

    def test_table3_counts_cover_providers(self, sim):
        counts = sim.dps_usage.provider_site_counts()
        assert counts.get("Neustar", 0) > counts.get("Level3", 0)
        assert sum(counts.values()) >= len(sim.ledger.preexisting)


class TestDeterminism:
    def test_same_config_same_result(self, sim, small_config):
        from repro.pipeline.simulation import run_simulation

        again = run_simulation(small_config)
        assert len(again.ground_truth) == len(sim.ground_truth)
        assert again.fused.summary_rows() == sim.fused.summary_rows()
        assert len(again.ledger.migrations) == len(sim.ledger.migrations)
