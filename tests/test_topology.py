"""Unit tests for the synthetic Internet topology."""

import random

import pytest

from repro.internet.topology import (
    AS_KIND_DPS,
    AS_KIND_HOSTER,
    InternetTopology,
    NAMED_ORGANISATIONS,
    TELESCOPE_SLASH8,
    TopologyConfig,
    _PrefixAllocator,
)
from repro.net.addressing import Prefix


@pytest.fixture(scope="module")
def topo():
    return InternetTopology.generate(TopologyConfig(seed=11, n_ases=80))


class TestGeneration:
    def test_named_organisations_present(self, topo):
        for name, asn, country, kind, _ in NAMED_ORGANISATIONS:
            autonomous_system = topo.as_by_name(name)
            assert autonomous_system is not None
            assert autonomous_system.asn == asn
            assert autonomous_system.country == country
            assert autonomous_system.kind == kind

    def test_anonymous_as_count(self, topo):
        anonymous = [a for a in topo.ases if a.name == f"AS{a.asn}"]
        assert len(anonymous) == 80

    def test_every_as_has_prefixes(self, topo):
        assert all(a.prefixes for a in topo.ases)

    def test_telescope_space_never_allocated(self, topo):
        for autonomous_system in topo.ases:
            for prefix in autonomous_system.prefixes:
                assert not prefix.overlaps(TELESCOPE_SLASH8)

    def test_no_overlapping_allocations(self, topo):
        allocations = sorted(
            p for a in topo.ases for p in a.prefixes
        )
        for previous, current in zip(allocations, allocations[1:]):
            assert previous.last < current.network

    def test_deterministic(self):
        config = TopologyConfig(seed=5, n_ases=30)
        a = InternetTopology.generate(config)
        b = InternetTopology.generate(config)
        assert [x.asn for x in a.ases] == [y.asn for y in b.ases]
        assert [x.prefixes for x in a.ases] == [y.prefixes for y in b.ases]

    def test_routing_table_resolves_all_space(self, topo):
        rng = random.Random(3)
        for autonomous_system in rng.sample(topo.ases, 20):
            address = autonomous_system.random_address(rng)
            assert topo.routing.origin_asn(address) == autonomous_system.asn

    def test_geo_agrees_with_as_country(self, topo):
        rng = random.Random(4)
        for autonomous_system in rng.sample(topo.ases, 20):
            address = autonomous_system.random_address(rng)
            assert topo.geo.country(address) == autonomous_system.country

    def test_kind_filters(self, topo):
        dps = topo.ases_of_kind(AS_KIND_DPS)
        assert len(dps) == 10  # the ten providers
        assert topo.ases_of_kind(AS_KIND_HOSTER)

    def test_slash24_accounting(self, topo):
        assert topo.total_slash24s == sum(
            1 for _ in topo.all_slash24_blocks()
        )


class TestAutonomousSystem:
    def test_random_address_in_own_space(self, topo):
        rng = random.Random(9)
        ovh = topo.as_by_name("OVH")
        for _ in range(50):
            address = ovh.random_address(rng)
            assert any(p.contains(address) for p in ovh.prefixes)

    def test_address_count(self, topo):
        ovh = topo.as_by_name("OVH")
        assert ovh.address_count == sum(p.size for p in ovh.prefixes)


class TestAllocator:
    def test_skips_reserved_space(self):
        allocator = _PrefixAllocator()
        seen = [allocator.take(8) for _ in range(6)]
        for prefix in seen:
            assert not prefix.overlaps(Prefix.from_string("10.0.0.0/8"))
            assert not prefix.overlaps(Prefix.from_string("0.0.0.0/8"))

    def test_alignment(self):
        allocator = _PrefixAllocator()
        allocator.take(20)
        prefix = allocator.take(16)
        assert prefix.network % prefix.size == 0

    def test_take_slash24s_exact_total(self):
        allocator = _PrefixAllocator()
        prefixes = allocator.take_slash24s(7)
        total = sum(p.size for p in prefixes) // 256
        assert total == 7

    def test_take_slash24s_uses_large_prefixes(self):
        allocator = _PrefixAllocator()
        prefixes = allocator.take_slash24s(2048)
        assert min(p.length for p in prefixes) == 13
