"""Unit tests for the Figure 8 taxonomy."""

import pytest

from repro.core.taxonomy import (
    CLASS_MIGRATING,
    CLASS_NON_MIGRATING,
    CLASS_PREEXISTING,
    classify_sites,
    taxonomy_counts,
)


def classify_one(seen=0, attack=None, dps=None):
    first_attack = {"www.x.com": attack} if attack is not None else {}
    dps_days = {"www.x.com": dps} if dps is not None else {}
    return classify_sites({"www.x.com": seen}, first_attack, dps_days)[0]


class TestClassification:
    def test_attacked_never_protected(self):
        c = classify_one(attack=10)
        assert c.attacked
        assert c.customer_class == CLASS_NON_MIGRATING

    def test_attacked_then_migrating(self):
        c = classify_one(attack=10, dps=15)
        assert c.customer_class == CLASS_MIGRATING

    def test_attacked_preexisting(self):
        c = classify_one(attack=10, dps=0)
        assert c.customer_class == CLASS_PREEXISTING

    def test_protected_same_day_as_attack_is_preexisting(self):
        c = classify_one(attack=10, dps=10)
        assert c.customer_class == CLASS_PREEXISTING

    def test_unattacked_never_protected(self):
        c = classify_one()
        assert not c.attacked
        assert c.customer_class == CLASS_NON_MIGRATING

    def test_unattacked_migrating(self):
        c = classify_one(seen=5, dps=20)
        assert c.customer_class == CLASS_MIGRATING

    def test_unattacked_preexisting(self):
        c = classify_one(seen=5, dps=5)
        assert c.customer_class == CLASS_PREEXISTING


class TestCounts:
    def test_aggregation(self):
        first_seen = {f"www.s{i}.com": 0 for i in range(6)}
        first_attack = {"www.s0.com": 3, "www.s1.com": 3, "www.s2.com": 3}
        dps = {"www.s0.com": 10, "www.s1.com": 0, "www.s3.com": 10}
        counts = taxonomy_counts(
            classify_sites(first_seen, first_attack, dps)
        )
        assert counts.total == 6
        assert counts.attacked == 3
        assert counts.not_attacked == 3
        assert counts.attacked_migrating == 1
        assert counts.attacked_preexisting == 1
        assert counts.attacked_non_migrating == 1
        assert counts.unattacked_migrating == 1
        assert counts.unattacked_preexisting == 0
        assert counts.unattacked_non_migrating == 2

    def test_fractions(self):
        first_seen = {f"www.s{i}.com": 0 for i in range(4)}
        first_attack = {"www.s0.com": 1, "www.s1.com": 1}
        dps = {"www.s0.com": 5}
        counts = taxonomy_counts(classify_sites(first_seen, first_attack, dps))
        assert counts.attacked_fraction == pytest.approx(0.5)
        assert counts.attacked_migrating_fraction == pytest.approx(0.5)
        assert counts.attacked_protected_fraction == pytest.approx(0.5)
        assert counts.unattacked_protected_fraction == 0.0

    def test_empty(self):
        counts = taxonomy_counts([])
        assert counts.total == 0
        assert counts.attacked_fraction == 0.0
