"""Unit tests for DPS provider signatures."""

from random import Random

import pytest

from repro.dps.providers import (
    METHOD_BGP,
    METHOD_CNAME,
    METHOD_NS,
    PROVIDER_TABLE,
    build_providers,
    choose_provider,
    provider_by_name,
)
from repro.internet.topology import InternetTopology, TopologyConfig


@pytest.fixture(scope="module")
def providers():
    topology = InternetTopology.generate(TopologyConfig(seed=61, n_ases=30))
    return build_providers(topology)


class TestBuild:
    def test_ten_providers(self, providers):
        assert len(providers) == 10
        assert len({p.name for p in providers}) == 10

    def test_table_matches_paper(self):
        names = {name for name, _, _ in PROVIDER_TABLE}
        assert names == {
            "Akamai", "CenturyLink", "CloudFlare", "DOSarrest", "F5 Networks",
            "Incapsula", "Level3", "Neustar", "Verisign", "VirtualRoad",
        }

    def test_neustar_leads_market_share(self, providers):
        neustar = provider_by_name(providers, "Neustar")
        assert all(neustar.market_share >= p.market_share for p in providers)

    def test_virtualroad_negligible_share(self, providers):
        vroad = provider_by_name(providers, "VirtualRoad")
        assert vroad.market_share < 0.01

    def test_each_provider_owns_prefix(self, providers):
        for provider in providers:
            assert provider.prefix.size >= 256


class TestSignatures:
    def test_cname_match(self, providers):
        akamai = provider_by_name(providers, "Akamai")
        protected = akamai.protection_cname("shop.com")
        assert akamai.matches_cname(protected)
        assert not akamai.matches_cname("shop-com.other.example")
        assert not akamai.matches_cname(None)

    def test_ns_method_has_no_cname(self, providers):
        cloudflare = provider_by_name(providers, "CloudFlare")
        assert cloudflare.method == METHOD_NS
        assert cloudflare.protection_cname("shop.com") is None
        ns = cloudflare.protection_ns()
        assert len(ns) == 2
        assert cloudflare.matches_ns(ns)

    def test_bgp_method(self, providers):
        centurylink = provider_by_name(providers, "CenturyLink")
        assert centurylink.method == METHOD_BGP
        assert centurylink.protection_ns() == ()

    def test_address_match(self, providers):
        akamai = provider_by_name(providers, "Akamai")
        assert akamai.matches_address(akamai.prefix.network + 5)
        assert not akamai.matches_address(akamai.prefix.last + 1)

    def test_edge_pool_is_concentrated(self, providers):
        dosarrest = provider_by_name(providers, "DOSarrest")
        edges = dosarrest.edge_addresses()
        assert len(edges) == dosarrest.EDGE_POOL_SIZE
        rng = Random(1)
        assert all(
            dosarrest.edge_address(rng) in set(edges) for _ in range(50)
        )

    def test_signatures_disjoint_across_providers(self, providers):
        for provider in providers:
            protected = provider.protection_cname("x.com")
            if protected is None:
                continue
            others = [p for p in providers if p is not provider]
            assert not any(o.matches_cname(protected) for o in others)


class TestChoice:
    def test_weighted_choice_tracks_share(self, providers):
        rng = Random(7)
        counts = {}
        for _ in range(4000):
            provider = choose_provider(providers, rng)
            counts[provider.name] = counts.get(provider.name, 0) + 1
        assert counts["Neustar"] > counts.get("Level3", 0)
        assert counts.get("VirtualRoad", 0) < 10

    def test_provider_by_name_missing(self, providers):
        assert provider_by_name(providers, "NoSuch") is None
