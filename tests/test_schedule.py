"""Unit tests for the attack schedule generator."""

import pytest

from repro.attacks.attacker import ATTACK_DIRECT, ATTACK_REFLECTION
from repro.attacks.schedule import (
    AttackSchedule,
    DEFAULT_SPIKES,
    ScheduleConfig,
    SpikeEvent,
    TargetPools,
)
from repro.dns.zone import ZoneConfig, ZoneGenerator
from repro.internet.hosting import HostingConfig, HostingEcosystem
from repro.internet.topology import InternetTopology, TopologyConfig

N_DAYS = 40


@pytest.fixture(scope="module")
def world():
    topology = InternetTopology.generate(TopologyConfig(seed=41, n_ases=80))
    ecosystem = HostingEcosystem.generate(topology, HostingConfig(seed=42))
    zone_gen = ZoneGenerator(
        ecosystem, ZoneConfig(seed=43, n_domains=1200, n_days=N_DAYS)
    )
    zone_gen.generate()
    pools = TargetPools.build(
        topology, ecosystem, zone_gen.self_hosted_web_ips()
    )
    return topology, ecosystem, pools


@pytest.fixture(scope="module")
def attacks(world):
    topology, _, pools = world
    config = ScheduleConfig(
        seed=44, n_days=N_DAYS, direct_per_day=25.0, reflection_per_day=15.0
    )
    return AttackSchedule(pools, topology.geo, config).generate(), config


class TestVolume:
    def test_total_volume_near_configured(self, attacks):
        generated, config = attacks
        expected = (config.direct_per_day + config.reflection_per_day) * N_DAYS
        # Growth trend plus spikes push the realized volume above the base.
        assert 0.8 * expected < len(generated) < 2.2 * expected

    def test_sorted_by_start(self, attacks):
        generated, _ = attacks
        starts = [a.start for a in generated]
        assert starts == sorted(starts)

    def test_all_starts_inside_window(self, attacks):
        generated, _ = attacks
        assert all(0 <= a.start < N_DAYS * 86400.0 for a in generated)

    def test_both_kinds_present(self, attacks):
        generated, _ = attacks
        kinds = {a.kind for a in generated}
        assert kinds == {ATTACK_DIRECT, ATTACK_REFLECTION}

    def test_unique_attack_ids(self, attacks):
        generated, _ = attacks
        ids = [a.attack_id for a in generated]
        assert len(ids) == len(set(ids))


class TestRepeatVictimization:
    def test_direct_repeats_more_than_reflection(self, attacks):
        generated, _ = attacks
        direct = [a for a in generated if a.kind == ATTACK_DIRECT]
        reflection = [a for a in generated if a.kind == ATTACK_REFLECTION]
        direct_ratio = len(direct) / len({a.target for a in direct})
        reflection_ratio = len(reflection) / len({a.target for a in reflection})
        assert direct_ratio > reflection_ratio > 1.0


class TestJointAttacks:
    def test_joint_pairs_share_target_and_overlap(self, attacks):
        generated, _ = attacks
        by_joint = {}
        for attack in generated:
            if attack.joint_id is not None:
                by_joint.setdefault(attack.joint_id, []).append(attack)
        pairs = [group for group in by_joint.values() if len(group) == 2]
        assert pairs, "expected some joint attacks"
        for first, second in pairs:
            assert first.target == second.target
            assert first.overlaps(second)
            assert {first.kind, second.kind} == {ATTACK_DIRECT, ATTACK_REFLECTION}


class TestCountryBias:
    def test_japan_suppressed(self, world, attacks):
        topology, _, _ = world
        generated, _ = attacks
        countries = [topology.geo.country(a.target) for a in generated]
        jp = countries.count("JP") / len(countries)
        # Japan holds ~6 % of space but is biased to 0.18 acceptance.
        assert jp < 0.05


class TestSpikes:
    def test_spike_generates_hoster_attacks(self, world):
        topology, ecosystem, pools = world
        spike = SpikeEvent(0.5, ("GoDaddy",), 30, 2.0, label="test")
        config = ScheduleConfig(
            seed=45, n_days=10, direct_per_day=1.0, reflection_per_day=1.0,
            spikes=(spike,),
        )
        generated = AttackSchedule(pools, topology.geo, config).generate()
        godaddy_ips = set(ecosystem.hoster_by_name("GoDaddy").ips)
        spike_day_attacks = [
            a for a in generated if a.target in godaddy_ips and
            int(a.start // 86400.0) == 5
        ]
        assert len(spike_day_attacks) >= 20

    def test_spike_min_duration(self, world):
        topology, _, pools = world
        spike = SpikeEvent(
            0.5, ("Wix",), 20, 4.0, joint=False, min_duration=4 * 3600.0
        )
        config = ScheduleConfig(
            seed=46, n_days=10, direct_per_day=0.5, reflection_per_day=0.5,
            spikes=(spike,),
        )
        generated = AttackSchedule(pools, topology.geo, config).generate()
        long = [a for a in generated if a.duration >= 4 * 3600.0]
        assert len(long) >= 20

    def test_default_spikes_cover_four_peaks(self):
        assert len(DEFAULT_SPIKES) == 4
        assert any("Wix" in s.hoster_names for s in DEFAULT_SPIKES)


class TestDeterminism:
    def test_same_seed_same_schedule(self, world):
        topology, _, pools = world
        config = ScheduleConfig(
            seed=47, n_days=8, direct_per_day=5.0, reflection_per_day=5.0
        )
        a = AttackSchedule(pools, topology.geo, config).generate()
        b = AttackSchedule(pools, topology.geo, config).generate()
        assert [x.target for x in a] == [y.target for y in b]
        assert [x.rate for x in a] == [y.rate for y in b]
