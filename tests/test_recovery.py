"""End-to-end crash-recovery drill through the real CLI.

A durable run is hard-killed (``--crash-after``, exit 137, no cleanup)
right after the attacks stage checkpoints; ``repro resume`` must then
produce byte-identical output to the run that was never interrupted.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def run_cli(*args, check_rc=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=300,
    )
    if check_rc is not None:
        assert proc.returncode == check_rc, proc.stderr
    return proc


@pytest.fixture(scope="module")
def drill(tmp_path_factory):
    """One uninterrupted run, one killed-then-resumed run, shared."""
    base = tmp_path_factory.mktemp("drill")
    ok_dir = base / "run_ok"
    crash_dir = base / "run_crash"
    ok = run_cli(
        "simulate", "--run-dir", str(ok_dir), check_rc=0
    )
    crashed = run_cli(
        "simulate", "--run-dir", str(crash_dir), "--crash-after", "attacks"
    )
    stages_after_crash = {
        p.name.replace(".manifest.json", "")
        for p in (crash_dir / "checkpoints").glob("*.manifest.json")
    }
    resumed = run_cli(
        "--verbose", "--log-json", "resume", str(crash_dir), check_rc=0
    )
    return {
        "ok_dir": ok_dir,
        "crash_dir": crash_dir,
        "ok": ok,
        "crashed": crashed,
        "stages_after_crash": stages_after_crash,
        "resumed": resumed,
    }


class TestCrashRecovery:
    def test_crash_exits_like_sigkill(self, drill):
        assert drill["crashed"].returncode == 137

    def test_crash_leaves_only_the_completed_prefix(self, drill):
        assert drill["stages_after_crash"] == {"internet", "attacks"}

    def test_resume_matches_uninterrupted_stdout(self, drill):
        assert drill["resumed"].stdout == drill["ok"].stdout
        assert drill["ok"].stdout.strip()  # and it isn't trivially empty

    def test_resume_matches_uninterrupted_events_file(self, drill):
        ok_events = (drill["ok_dir"] / "events.jsonl").read_bytes()
        resumed_events = (drill["crash_dir"] / "events.jsonl").read_bytes()
        assert resumed_events == ok_events

    def test_resume_logs_restored_stages_as_json(self, drill):
        events = []
        for line in drill["resumed"].stderr.splitlines():
            if line.startswith("{"):
                events.append(json.loads(line))
        restored = [
            e["stage"]
            for e in events
            if e["event"] == "stage restored from checkpoint"
        ]
        assert restored == ["internet", "attacks"]

    def test_resume_of_completed_run_is_stable(self, drill):
        again = run_cli("resume", str(drill["ok_dir"]), check_rc=0)
        assert again.stdout == drill["ok"].stdout


class TestResumeErrors:
    def test_nonexistent_directory(self, tmp_path):
        proc = run_cli("resume", str(tmp_path / "nope"))
        assert proc.returncode == 2
        assert "no such run directory" in proc.stderr

    def test_directory_without_metadata(self, tmp_path):
        plain = tmp_path / "not_a_run"
        plain.mkdir()
        proc = run_cli("resume", str(plain))
        assert proc.returncode == 2
        assert "not a durable run directory" in proc.stderr

    def test_crash_after_requires_run_dir(self):
        proc = run_cli("simulate", "--crash-after", "attacks")
        assert proc.returncode == 2
        assert "--crash-after requires --run-dir" in proc.stderr


class TestValidateCommand:
    def _feed(self, tmp_path):
        from repro.core.events import AttackEvent, SOURCE_TELESCOPE
        from repro.pipeline.datasets import save_events_jsonl

        path = tmp_path / "feed.jsonl"
        save_events_jsonl(
            [
                AttackEvent(SOURCE_TELESCOPE, i, 0.0, 1.0, 1.0)
                for i in range(5)
            ],
            path,
        )
        return path

    def test_clean_feed(self, tmp_path):
        path = self._feed(tmp_path)
        proc = run_cli("validate", str(path), check_rc=0)
        assert "5 valid, 0 quarantined" in proc.stdout
        assert not (tmp_path / "feed.jsonl.quarantine.jsonl").exists()

    def test_dirty_feed_quarantined(self, tmp_path):
        path = self._feed(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
            handle.write('{"source": "telescope"}\n')
        proc = run_cli("validate", str(path))
        assert proc.returncode == 1
        assert "5 valid, 2 quarantined" in proc.stdout
        assert "unparseable-json" in proc.stdout
        quarantine = tmp_path / "feed.jsonl.quarantine.jsonl"
        assert "dead-letter file" in proc.stdout
        records = [
            json.loads(line)
            for line in quarantine.read_text().splitlines()
        ]
        assert [r["reason"] for r in records] == [
            "unparseable-json",
            "missing-field:target",
        ]

    def test_strict_mode_fails_fast(self, tmp_path):
        path = self._feed(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        proc = run_cli("validate", "--strict", str(path))
        assert proc.returncode == 1
        assert "invalid record" in proc.stderr

    def test_missing_file(self, tmp_path):
        proc = run_cli("validate", str(tmp_path / "absent.jsonl"))
        assert proc.returncode == 2
