"""Smoke tests: the fast example scripts run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestFastExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "7")
        assert result.returncode == 0, result.stderr
        assert "Table 1" in result.stdout
        assert "paper: 64%" in result.stdout

    def test_detector_playground(self):
        result = run_example("detector_playground.py")
        assert result.returncode == 0, result.stderr
        assert "attack on 203.0.113.7" in result.stdout
        assert "NTP attack" in result.stdout

    def test_custom_scenario(self, tmp_path):
        out = tmp_path / "events.jsonl"
        result = run_example("custom_scenario.py", str(out))
        assert result.returncode == 0, result.stderr
        assert out.exists()
        assert "fully decoupled" in result.stdout

    def test_reproduce_paper_small_to_dir(self, tmp_path):
        result = run_example("reproduce_paper.py", "small", str(tmp_path))
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "fig11.txt").exists()
