"""Unit tests for the RSDoS detector (Moore et al. methodology)."""

import pytest

from repro.net.packet import (
    ICMP_DEST_UNREACH,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    PacketBatch,
    TCP_ACK,
    TCP_SYN,
)
from repro.telescope.rsdos import (
    RSDoSConfig,
    RSDoSDetector,
    TELESCOPE_SCALE_FACTOR,
)


def backscatter(ts, src=1, count=40, ports=(80,)):
    return PacketBatch(
        timestamp=ts, src=src, proto=PROTO_TCP, count=count, bytes=count * 54,
        distinct_dsts=count, src_ports=frozenset(ports),
        tcp_flags=TCP_SYN | TCP_ACK,
    )


def scan(ts, src=2, count=100):
    return PacketBatch(
        timestamp=ts, src=src, proto=PROTO_TCP, count=count, bytes=count * 40,
        distinct_dsts=count, tcp_flags=TCP_SYN,
    )


def run(batches, config=RSDoSConfig()):
    return list(RSDoSDetector(config).run(iter(batches)))


class TestClassificationFilters:
    def test_valid_attack_detected(self):
        events = run([backscatter(0.0), backscatter(65.0)])
        assert len(events) == 1
        event = events[0]
        assert event.victim == 1
        assert event.packets == 80
        assert event.duration == 65.0

    def test_scan_traffic_ignored(self):
        events = run([scan(0.0), scan(65.0), scan(130.0)])
        assert events == []

    def test_too_few_packets_discarded(self):
        events = run([backscatter(0.0, count=10), backscatter(65.0, count=10)])
        assert events == []

    def test_too_short_discarded(self):
        events = run([backscatter(0.0), backscatter(30.0)])
        assert events == []

    def test_too_slow_discarded(self):
        # 29 packets max in one minute = 0.48 pps < 0.5 pps threshold.
        events = run(
            [backscatter(t, count=1) for t in range(0, 290, 10)]
        )
        assert events == []

    def test_exactly_at_thresholds_kept(self):
        config = RSDoSConfig()
        # 30 packets in minute 0 (0.5 pps), 60 s duration, 35 packets total.
        events = run(
            [backscatter(0.0, count=30), backscatter(60.0, count=5)], config
        )
        assert len(events) == 1

    def test_counters(self):
        detector = RSDoSDetector()
        for batch in [scan(0.0), backscatter(0.0, count=3)]:
            detector.process(batch)
        detector.flush()
        assert detector.batches_seen == 2
        assert detector.backscatter_batches == 1
        assert detector.flows_discarded == 1


class TestEventAttributes:
    def test_max_pps_and_victim_estimate(self):
        events = run([backscatter(0.0, count=120), backscatter(80.0, count=30)])
        event = events[0]
        assert event.max_ppm == 120
        assert event.max_pps == pytest.approx(2.0)
        assert event.estimated_victim_pps == pytest.approx(
            2.0 * TELESCOPE_SCALE_FACTOR
        )

    def test_single_vs_multi_port(self):
        single = run([backscatter(0.0), backscatter(65.0)])[0]
        multi = run(
            [backscatter(0.0, ports=(80,)), backscatter(65.0, ports=(443,))]
        )[0]
        assert single.single_port
        assert not multi.single_port
        assert multi.ports == (80, 443)

    def test_attack_proto_from_quoted_packet(self):
        batches = [
            PacketBatch(
                timestamp=t, src=5, proto=PROTO_ICMP, count=40, bytes=40 * 54,
                distinct_dsts=40, icmp_type=ICMP_DEST_UNREACH,
                quoted_proto=PROTO_UDP,
            )
            for t in (0.0, 70.0)
        ]
        events = run(batches)
        assert events[0].ip_proto == PROTO_UDP

    def test_two_attacks_same_victim_split_by_timeout(self):
        first = [backscatter(0.0), backscatter(65.0)]
        second = [backscatter(1000.0), backscatter(1070.0)]
        events = run(first + second)
        assert len(events) == 2

    def test_concurrent_victims_tracked_independently(self):
        batches = sorted(
            [backscatter(t, src=1) for t in (0.0, 65.0)]
            + [backscatter(t, src=2, count=100) for t in (10.0, 80.0)],
            key=lambda b: b.timestamp,
        )
        events = run(batches)
        assert {e.victim for e in events} == {1, 2}
        by_victim = {e.victim: e for e in events}
        assert by_victim[2].packets == 200


class TestConfigurability:
    def test_custom_thresholds(self):
        lenient = RSDoSConfig(min_packets=5, min_duration=10.0, min_max_pps=0.01)
        events = run(
            [backscatter(0.0, count=3), backscatter(15.0, count=3)], lenient
        )
        assert len(events) == 1

    def test_flow_timeout_controls_event_granularity(self):
        batches = [backscatter(0.0), backscatter(65.0),
                   backscatter(500.0), backscatter(565.0)]
        default = run(batches)  # 300 s timeout -> gap of 435 s splits
        merged = run(batches, RSDoSConfig(flow_timeout=600.0))
        assert len(default) == 2
        assert len(merged) == 1
