"""Unit tests for the behavioural migration simulator."""

import pytest

from repro.attacks.attacker import ATTACK_DIRECT, ATTACK_REFLECTION, GroundTruthAttack
from repro.dns.zone import ZoneConfig, ZoneGenerator
from repro.dps.detection import BGPDiversionLog
from repro.dps.migration_sim import (
    HosterStoryline,
    MigrationConfig,
    MigrationSimulator,
)
from repro.dps.providers import build_providers
from repro.internet.hosting import HostingConfig, HostingEcosystem
from repro.internet.topology import InternetTopology, TopologyConfig
from repro.net.packet import PROTO_TCP

N_DAYS = 60


@pytest.fixture
def world():
    topology = InternetTopology.generate(TopologyConfig(seed=81, n_ases=50))
    ecosystem = HostingEcosystem.generate(topology, HostingConfig(seed=82))
    generator = ZoneGenerator(
        ecosystem, ZoneConfig(seed=83, n_domains=800, n_days=N_DAYS)
    )
    zones = generator.generate()
    providers = build_providers(topology)
    return topology, ecosystem, zones, providers


def direct(target, start_day, rate=500.0, duration=600.0, attack_id=1):
    return GroundTruthAttack(
        attack_id=attack_id, kind=ATTACK_DIRECT, target=target,
        start=start_day * 86400.0, duration=duration, rate=rate,
        vector="syn-flood", ip_proto=PROTO_TCP, ports=(80,),
    )


class TestPreexisting:
    def test_preexisting_assigned_by_tier(self, world):
        _, ecosystem, zones, providers = world
        simulator = MigrationSimulator(
            zones, providers, ecosystem,
            MigrationConfig(seed=1, ambient_migration_prob=0.0),
        )
        ledger = simulator.run([], N_DAYS)
        assert ledger.preexisting
        assert not ledger.migrations
        protected = {name for name, _ in ledger.preexisting}
        for zone in zones:
            for domain in zone.domains:
                if domain.www_name in protected:
                    assert domain.states()[0].dps_provider is not None

    def test_no_preexisting_when_disabled(self, world):
        _, ecosystem, zones, providers = world
        config = MigrationConfig(
            seed=1,
            preexisting_by_tier={},
        )
        ledger = MigrationSimulator(
            zones, providers, ecosystem, config
        ).run([], N_DAYS)
        assert ledger.preexisting == []


class TestAttackTriggeredMigration:
    def test_attacked_self_hosted_domain_migrates(self, world):
        _, ecosystem, zones, providers = world
        # Find a self-hosted web domain.
        target_domain = next(
            d
            for zone in zones
            for d in zone.domains
            if d.has_www and d.states()[0].hoster is None
        )
        ip = target_domain.states()[0].ip
        config = MigrationConfig(
            seed=2,
            preexisting_by_tier={},
            migrate_prob_self_hosted=1.0,
            straggler_probability=0.0,
        )
        simulator = MigrationSimulator(zones, providers, ecosystem, config)
        ledger = simulator.run([direct(ip, start_day=10)], N_DAYS)
        records = [m for m in ledger.migrations if m.domain == target_domain.www_name]
        assert len(records) == 1
        record = records[0]
        assert record.trigger_day == 10
        assert record.migration_day > 10
        assert target_domain.first_dps_day(N_DAYS) == record.migration_day

    def test_unattacked_domains_do_not_migrate(self, world):
        _, ecosystem, zones, providers = world
        config = MigrationConfig(
            seed=3, preexisting_by_tier={}, migrate_prob_self_hosted=1.0,
            migrate_prob_shared=1.0, ambient_migration_prob=0.0,
        )
        ledger = MigrationSimulator(
            zones, providers, ecosystem, config
        ).run([], N_DAYS)
        assert ledger.migrations == []

    def test_migration_near_window_end_dropped(self, world):
        _, ecosystem, zones, providers = world
        target_domain = next(
            d
            for zone in zones
            for d in zone.domains
            if d.has_www and d.states()[0].hoster is None
        )
        ip = target_domain.states()[0].ip
        config = MigrationConfig(
            seed=4, preexisting_by_tier={}, migrate_prob_self_hosted=1.0,
            delay_mu=10.0,  # enormous delays
        )
        ledger = MigrationSimulator(
            zones, providers, ecosystem, config
        ).run([direct(ip, start_day=N_DAYS - 2)], N_DAYS)
        assert all(m.migration_day < N_DAYS for m in ledger.migrations)

    def test_intensity_shortens_delay(self, world):
        """High-rate attacks produce systematically shorter delays."""
        _, ecosystem, zones, providers = world
        config = MigrationConfig(
            seed=5, preexisting_by_tier={}, migrate_prob_self_hosted=1.0,
            straggler_probability=0.0,
        )
        simulator = MigrationSimulator(zones, providers, ecosystem, config)
        self_hosted = [
            d
            for zone in zones
            for d in zone.domains
            if d.has_www and d.states()[0].hoster is None
        ]
        half = len(self_hosted) // 2
        attacks = []
        weak_names, strong_names = set(), set()
        for index, domain in enumerate(self_hosted[: half * 2]):
            ip = domain.states()[0].ip
            if index < half:
                attacks.append(direct(ip, 5, rate=40.0, attack_id=index + 1))
                weak_names.add(domain.www_name)
            else:
                attacks.append(direct(ip, 5, rate=2e6, attack_id=index + 1))
                strong_names.add(domain.www_name)
        ledger = simulator.run(attacks, N_DAYS)
        weak = [m.delay_days for m in ledger.migrations if m.domain in weak_names]
        strong = [m.delay_days for m in ledger.migrations if m.domain in strong_names]
        assert weak and strong
        assert sum(strong) / len(strong) < sum(weak) / len(weak)

    def test_bgp_provider_records_diversion(self, world):
        _, ecosystem, zones, providers = world
        log = BGPDiversionLog()
        config = MigrationConfig(
            seed=6, preexisting_by_tier={}, migrate_prob_self_hosted=1.0,
        )
        simulator = MigrationSimulator(
            zones, providers, ecosystem, config, diversion_log=log
        )
        self_hosted = [
            d
            for zone in zones
            for d in zone.domains
            if d.has_www and d.states()[0].hoster is None
        ]
        attacks = [
            direct(d.states()[0].ip, 5, attack_id=i + 1)
            for i, d in enumerate(self_hosted)
        ]
        ledger = simulator.run(attacks, N_DAYS)
        bgp_migrations = [
            m for m in ledger.migrations
            if m.provider in ("CenturyLink", "Level3")
        ]
        if bgp_migrations:  # market-share weighted, usually present
            assert len(log) >= len(bgp_migrations)


class TestStorylines:
    def test_wix_platform_migrates_after_long_attack(self, world):
        _, ecosystem, zones, providers = world
        wix = ecosystem.hoster_by_name("Wix")
        storyline = HosterStoryline("Wix", "Incapsula", 1, 4 * 3600.0, 0.0, "wix")
        config = MigrationConfig(
            seed=7, preexisting_by_tier={}, migrate_prob_self_hosted=0.0,
            migrate_prob_shared=0.0, ambient_migration_prob=0.0,
            storylines=(storyline,),
        )
        simulator = MigrationSimulator(zones, providers, ecosystem, config)
        trigger = direct(wix.ips[0], 12, duration=5 * 3600.0)
        ledger = simulator.run([trigger], N_DAYS)
        assert ledger.migrations
        assert all(m.provider == "Incapsula" for m in ledger.migrations)
        assert all(m.migration_day == 13 for m in ledger.migrations)
        assert all(m.storyline == "wix" for m in ledger.migrations)

    def test_short_attack_does_not_trigger_storyline(self, world):
        _, ecosystem, zones, providers = world
        wix = ecosystem.hoster_by_name("Wix")
        storyline = HosterStoryline("Wix", "Incapsula", 1, 4 * 3600.0, 0.0, "wix")
        config = MigrationConfig(
            seed=8, preexisting_by_tier={}, migrate_prob_self_hosted=0.0,
            migrate_prob_shared=0.0, ambient_migration_prob=0.0,
            storylines=(storyline,),
        )
        simulator = MigrationSimulator(zones, providers, ecosystem, config)
        ledger = simulator.run([direct(wix.ips[0], 12, duration=600.0)], N_DAYS)
        assert ledger.migrations == []
