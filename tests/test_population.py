"""Unit tests for the active-address census."""

import pytest

from repro.internet.population import ActiveAddressCensus
from repro.internet.topology import InternetTopology, TopologyConfig
from repro.net.addressing import parse_ipv4


@pytest.fixture(scope="module")
def topology():
    return InternetTopology.generate(TopologyConfig(seed=31, n_ases=50))


class TestCensus:
    def test_fraction_respected_roughly(self, topology):
        census = ActiveAddressCensus.from_topology(topology, 0.5, seed=1)
        fraction = len(census) / topology.total_slash24s
        assert 0.4 < fraction < 0.7  # hoster/cloud space is boosted

    def test_full_activity(self, topology):
        census = ActiveAddressCensus.from_topology(topology, 1.0, seed=1)
        assert len(census) == topology.total_slash24s

    def test_rejects_zero_fraction(self, topology):
        with pytest.raises(ValueError):
            ActiveAddressCensus.from_topology(topology, 0.0, seed=1)

    def test_deterministic(self, topology):
        a = ActiveAddressCensus.from_topology(topology, 0.5, seed=9)
        b = ActiveAddressCensus.from_topology(topology, 0.5, seed=9)
        assert a.active_blocks == b.active_blocks

    def test_membership_by_address(self):
        census = ActiveAddressCensus([parse_ipv4("1.2.3.0")])
        assert census.is_active_address(parse_ipv4("1.2.3.77"))
        assert not census.is_active_address(parse_ipv4("1.2.4.77"))

    def test_attacked_fraction(self):
        blocks = [parse_ipv4("1.0.0.0"), parse_ipv4("1.0.1.0"), parse_ipv4("1.0.2.0")]
        census = ActiveAddressCensus(blocks)
        attacked = [parse_ipv4("1.0.0.5"), parse_ipv4("9.9.9.9")]
        assert census.attacked_fraction(attacked) == pytest.approx(1 / 3)

    def test_attacked_fraction_empty_census(self):
        assert ActiveAddressCensus([]).attacked_fraction([1]) == 0.0

    def test_attacked_fraction_counts_blocks_once(self):
        census = ActiveAddressCensus([parse_ipv4("1.0.0.0")])
        attacked = [parse_ipv4("1.0.0.1"), parse_ipv4("1.0.0.2")]
        assert census.attacked_fraction(attacked) == 1.0
