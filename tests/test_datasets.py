"""Unit tests for event serialization, validation and quarantine."""

import json
import os

import pytest

from repro.core.events import (
    AttackEvent,
    SOURCE_HONEYPOT,
    SOURCE_TELESCOPE,
    validate_event_dict,
)
from repro.pipeline.datasets import (
    MalformedRecordError,
    QUARANTINE_SUFFIX,
    REASON_DUPLICATE,
    REASON_UNPARSEABLE,
    event_from_dict,
    event_to_dict,
    load_events_jsonl,
    quarantine_path_for,
    read_events_jsonl,
    save_events_jsonl,
)


def events():
    return [
        AttackEvent(
            SOURCE_TELESCOPE, 123, 0.0, 60.0, 2.5, ip_proto=6,
            ports=(80, 443), packets=99, country="US", asn=64512,
        ),
        AttackEvent(
            SOURCE_HONEYPOT, 456, 100.0, 400.0, 77.0,
            reflector_protocol="NTP", packets=5000,
        ),
    ]


class TestRoundtrip:
    def test_dict_roundtrip(self):
        for event in events():
            assert event_from_dict(event_to_dict(event)) == event

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        written = save_events_jsonl(events(), path)
        assert written == 2
        loaded = load_events_jsonl(path)
        assert loaded == events()

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        save_events_jsonl(events(), path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(load_events_jsonl(path)) == 2

    def test_defaults_filled(self):
        minimal = {
            "source": SOURCE_TELESCOPE, "target": 1, "start_ts": 0.0,
            "end_ts": 1.0, "intensity": 1.0,
        }
        event = event_from_dict(minimal)
        assert event.ports == ()
        assert event.country == "??"
        assert event.asn is None


class TestAtomicWrite:
    def _failing_events(self):
        yield events()[0]
        raise RuntimeError("interrupted mid-write")

    def test_interrupted_write_preserves_previous_file(self, tmp_path):
        """A crash mid-write never truncates an existing data set."""
        path = tmp_path / "events.jsonl"
        save_events_jsonl(events(), path)
        before = path.read_text()
        with pytest.raises(RuntimeError):
            save_events_jsonl(self._failing_events(), path)
        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path]  # no temp leftovers

    def test_interrupted_write_leaves_nothing_behind(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with pytest.raises(RuntimeError):
            save_events_jsonl(self._failing_events(), path)
        assert list(tmp_path.iterdir()) == []

    def test_overwrite_replaces_longer_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        save_events_jsonl(events() * 10, path)
        save_events_jsonl(events()[:1], path)
        assert len(load_events_jsonl(path)) == 1

    def test_successful_replace_never_unlinks_foreign_temp(
        self, tmp_path, monkeypatch
    ):
        """Cleanup after a successful rename must not race a concurrent
        writer that reused the same temp path."""
        real_replace = os.replace
        path = tmp_path / "events.jsonl"
        tmp = tmp_path / "events.jsonl.tmp"

        def replace_then_race(src, dst):
            real_replace(src, dst)
            tmp.write_text("concurrent writer's temp")

        monkeypatch.setattr(os, "replace", replace_then_race)
        save_events_jsonl(events(), path)
        assert load_events_jsonl(path) == events()
        assert tmp.read_text() == "concurrent writer's temp"


class TestSchemaValidation:
    def _valid(self):
        return event_to_dict(events()[0])

    def test_valid_record_passes(self):
        assert validate_event_dict(self._valid()) is None

    def test_non_object(self):
        assert validate_event_dict([1, 2]) == "not-an-object"
        assert validate_event_dict("x") == "not-an-object"

    @pytest.mark.parametrize(
        "field", ["source", "target", "start_ts", "end_ts", "intensity"]
    )
    def test_missing_required_field(self, field):
        data = self._valid()
        del data[field]
        assert validate_event_dict(data) == f"missing-field:{field}"

    def test_bad_types(self):
        data = self._valid()
        data["target"] = "10.0.0.1"
        assert validate_event_dict(data) == "bad-type:target"
        data = self._valid()
        data["start_ts"] = True  # JSON true is not a timestamp
        assert validate_event_dict(data) == "bad-type:start_ts"
        data = self._valid()
        data["ports"] = [80, "https"]
        assert validate_event_dict(data) == "bad-type:ports"

    def test_out_of_range(self):
        data = self._valid()
        data["target"] = 2**32
        assert validate_event_dict(data) == "out-of-range:target"
        data = self._valid()
        data["end_ts"] = data["start_ts"] - 1.0
        assert validate_event_dict(data) == "out-of-range:end_ts"
        data = self._valid()
        data["intensity"] = -0.5
        assert validate_event_dict(data) == "out-of-range:intensity"
        data = self._valid()
        data["ports"] = [70000]
        assert validate_event_dict(data) == "out-of-range:ports"

    def test_unknown_source(self):
        data = self._valid()
        data["source"] = "darkweb"
        assert validate_event_dict(data) == "unknown-source"


class TestTolerantLoading:
    def _write_feed(self, path, extra_lines=()):
        save_events_jsonl(events(), path)
        with open(path, "a", encoding="utf-8") as handle:
            for line in extra_lines:
                handle.write(line + "\n")

    def test_malformed_line_skipped_and_counted(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_feed(path, ['{"truncated": '])
        loaded, report = read_events_jsonl(path)
        assert loaded == events()
        assert report.loaded == 2
        assert report.reason_counts() == {REASON_UNPARSEABLE: 1}

    def test_strict_mode_preserved(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_feed(path, ['{"truncated": '])
        with pytest.raises(MalformedRecordError) as excinfo:
            load_events_jsonl(path, strict=True)
        assert excinfo.value.record.reason == REASON_UNPARSEABLE
        assert excinfo.value.record.line_no == 3

    def test_duplicates_quarantined(self, tmp_path):
        path = tmp_path / "events.jsonl"
        line = json.dumps(event_to_dict(events()[0]))
        self._write_feed(path, [line, line])
        loaded, report = read_events_jsonl(path)
        assert loaded == events()
        assert report.reason_counts() == {REASON_DUPLICATE: 2}

    def test_out_of_range_quarantined(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bad = event_to_dict(events()[0])
        bad["target"] = -4
        self._write_feed(path, [json.dumps(bad)])
        loaded, report = read_events_jsonl(path)
        assert loaded == events()
        assert report.reason_counts() == {"out-of-range:target": 1}

    def test_quarantine_file_written_with_reasons(self, tmp_path):
        path = tmp_path / "events.jsonl"
        quarantine = tmp_path / "dead.jsonl"
        self._write_feed(path, ["not json at all", '{"a": 1}'])
        _loaded, report = read_events_jsonl(path, quarantine_path=quarantine)
        assert report.quarantine_path == str(quarantine)
        records = [
            json.loads(line)
            for line in quarantine.read_text().splitlines()
        ]
        assert [r["reason"] for r in records] == [
            REASON_UNPARSEABLE,
            "missing-field:source",
        ]
        assert records[0]["line_no"] == 3
        assert records[1]["raw"] == '{"a": 1}'

    def test_no_quarantine_file_when_clean(self, tmp_path):
        path = tmp_path / "events.jsonl"
        quarantine = tmp_path / "dead.jsonl"
        save_events_jsonl(events(), path)
        _loaded, report = read_events_jsonl(path, quarantine_path=quarantine)
        assert report.rejected == 0
        assert report.quarantine_path is None
        assert not quarantine.exists()

    def test_truncated_tail_costs_one_record(self, tmp_path):
        """A crash mid-append costs the half-written record, not the run."""
        path = tmp_path / "events.jsonl"
        save_events_jsonl(events() * 5, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - len(data) // 12])
        loaded, report = read_events_jsonl(path)
        assert report.rejected >= 1
        assert len(loaded) + report.rejected <= 10
        # Duplicates: events()*5 repeats the same two events; the loader
        # keeps one of each and quarantines the redeliveries.
        assert REASON_DUPLICATE in report.reason_counts()

    def test_describe_is_deterministic(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_feed(path, ["garbage"])
        _loaded, report = read_events_jsonl(path)
        assert report.describe() == (
            "2 loaded; 1 quarantined; unparseable-json×1"
        )


class TestPerFeedQuarantine:
    """Dead-letter files are namespaced per feed: no more collisions."""

    def _bad_feed(self, path):
        path.write_text('{"garbage": true}\n', encoding="utf-8")

    def test_quarantine_path_for_namespaces_by_feed(self, tmp_path):
        events_file = tmp_path / "events.jsonl"
        assert quarantine_path_for(events_file) == (
            tmp_path / ("events.jsonl" + QUARANTINE_SUFFIX)
        )
        assert quarantine_path_for(events_file, feed="telescope") == (
            tmp_path / "events.jsonl.telescope.quarantine.jsonl"
        )
        assert quarantine_path_for(
            events_file, feed="telescope", directory=tmp_path / "q"
        ) == tmp_path / "q" / "events.jsonl.telescope.quarantine.jsonl"

    def test_two_feeds_keep_separate_dead_letter_files(self, tmp_path):
        """The collision this fixes: same file name, two feeds, one dir."""
        path = tmp_path / "events.jsonl"
        self._bad_feed(path)
        _e1, first = read_events_jsonl(path, feed="telescope")
        _e2, second = read_events_jsonl(path, feed="honeypot")
        assert first.quarantine_path != second.quarantine_path
        assert "telescope" in first.quarantine_path
        assert "honeypot" in second.quarantine_path
        # Both survived on disk; neither load clobbered the other.
        assert (tmp_path / "events.jsonl.telescope.quarantine.jsonl").exists()
        assert (tmp_path / "events.jsonl.honeypot.quarantine.jsonl").exists()

    def test_feed_tag_lands_in_report(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._bad_feed(path)
        _events, report = read_events_jsonl(path, feed="telescope")
        assert report.feed == "telescope"

    def test_explicit_quarantine_path_still_wins(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._bad_feed(path)
        explicit = tmp_path / "custom.jsonl"
        _events, report = read_events_jsonl(
            path, feed="telescope", quarantine_path=explicit
        )
        assert report.quarantine_path == str(explicit)
        assert explicit.exists()

    def test_feed_without_rejects_writes_nothing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        save_events_jsonl(events(), path)
        _events, report = read_events_jsonl(path, feed="telescope")
        assert report.quarantine_path is None
        assert list(tmp_path.glob("*quarantine*")) == []
