"""Unit tests for event serialization."""

import pytest

from repro.core.events import AttackEvent, SOURCE_HONEYPOT, SOURCE_TELESCOPE
from repro.pipeline.datasets import (
    event_from_dict,
    event_to_dict,
    load_events_jsonl,
    save_events_jsonl,
)


def events():
    return [
        AttackEvent(
            SOURCE_TELESCOPE, 123, 0.0, 60.0, 2.5, ip_proto=6,
            ports=(80, 443), packets=99, country="US", asn=64512,
        ),
        AttackEvent(
            SOURCE_HONEYPOT, 456, 100.0, 400.0, 77.0,
            reflector_protocol="NTP", packets=5000,
        ),
    ]


class TestRoundtrip:
    def test_dict_roundtrip(self):
        for event in events():
            assert event_from_dict(event_to_dict(event)) == event

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        written = save_events_jsonl(events(), path)
        assert written == 2
        loaded = load_events_jsonl(path)
        assert loaded == events()

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        save_events_jsonl(events(), path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(load_events_jsonl(path)) == 2

    def test_defaults_filled(self):
        minimal = {
            "source": SOURCE_TELESCOPE, "target": 1, "start_ts": 0.0,
            "end_ts": 1.0, "intensity": 1.0,
        }
        event = event_from_dict(minimal)
        assert event.ports == ()
        assert event.country == "??"
        assert event.asn is None


class TestAtomicWrite:
    def _failing_events(self):
        yield events()[0]
        raise RuntimeError("interrupted mid-write")

    def test_interrupted_write_preserves_previous_file(self, tmp_path):
        """A crash mid-write never truncates an existing data set."""
        path = tmp_path / "events.jsonl"
        save_events_jsonl(events(), path)
        before = path.read_text()
        with pytest.raises(RuntimeError):
            save_events_jsonl(self._failing_events(), path)
        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path]  # no temp leftovers

    def test_interrupted_write_leaves_nothing_behind(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with pytest.raises(RuntimeError):
            save_events_jsonl(self._failing_events(), path)
        assert list(tmp_path.iterdir()) == []

    def test_overwrite_replaces_longer_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        save_events_jsonl(events() * 10, path)
        save_events_jsonl(events()[:1], path)
        assert len(load_events_jsonl(path)) == 1
