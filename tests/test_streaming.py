"""Unit and integration tests for streaming fusion."""

import pytest

from repro.core.events import AttackEvent, SOURCE_HONEYPOT, SOURCE_TELESCOPE
from repro.core.streaming import StreamingFusion
from repro.core.timeseries import daily_series
from repro.core.webmap import WebHostingIndex

DAY = 86400.0


def event(target, day, frac=0.5, source=SOURCE_TELESCOPE, asn=None):
    start = day * DAY + frac * DAY
    return AttackEvent(source, target, start, start + 60.0, 1.0, asn=asn)


class TestIngestion:
    def test_day_rollover_emits_summary(self):
        fusion = StreamingFusion()
        assert fusion.ingest(event(1, 0)) == []
        closed = fusion.ingest(event(2, 1))
        assert len(closed) == 1
        assert closed[0].day == 0
        assert closed[0].attacks == 1

    def test_finish_flushes_open_day(self):
        fusion = StreamingFusion()
        fusion.ingest(event(1, 0))
        closed = fusion.finish()
        assert len(closed) == 1
        assert fusion.finish() == []

    def test_source_split(self):
        fusion = StreamingFusion()
        fusion.ingest(event(1, 0, 0.1))
        fusion.ingest(
            AttackEvent(SOURCE_HONEYPOT, 2, 0.2 * DAY, 0.2 * DAY + 9, 1.0,
                        reflector_protocol="NTP")
        )
        summary = fusion.finish()[0]
        assert summary.telescope_attacks == 1
        assert summary.honeypot_attacks == 1
        assert summary.unique_targets == 2

    def test_slight_disorder_tolerated(self):
        fusion = StreamingFusion()
        fusion.ingest(event(1, 1, 0.5))
        fusion.ingest(event(2, 1, 0.4))  # earlier same day: fine
        summary = fusion.finish()[0]
        assert summary.attacks == 2

    def test_gross_disorder_rejected(self):
        fusion = StreamingFusion()
        fusion.ingest(event(1, 5))
        with pytest.raises(ValueError):
            fusion.ingest(event(2, 1))

    def test_running_summary_matches_batch(self):
        events = [event(t, d, asn=t % 3) for d in range(3) for t in range(1, 6)]
        fusion = StreamingFusion()
        for e in events:
            fusion.ingest(e)
        fusion.finish()
        running = fusion.running_summary()
        assert running["events"] == len(events)
        assert running["targets"] == 5
        series = daily_series(events, 3)
        assert sum(s.attacks for s in fusion.summaries) == series.attacks.sum()

    def test_web_impact_metric(self):
        index = WebHostingIndex([("www.a.com", 7, 0, 10)])
        fusion = StreamingFusion(web_index=index)
        fusion.ingest(event(7, 0))
        fusion.ingest(event(8, 0))
        summary = fusion.finish()[0]
        assert summary.affected_sites == 1


class TestAlerts:
    def test_spike_raises_alert(self):
        fusion = StreamingFusion(baseline_days=3, alert_factor=3.0)
        for day in range(3):
            fusion.ingest(event(1, day))
        for _ in range(10):
            fusion.ingest(event(1, 3))
        fusion.finish()
        assert any(
            a.metric == "attacks" and a.day == 3 for a in fusion.alerts
        )
        alert = fusion.alerts[0]
        assert alert.factor > 3.0

    def test_no_alert_before_baseline_established(self):
        fusion = StreamingFusion(baseline_days=5, alert_factor=2.0)
        for _ in range(50):
            fusion.ingest(event(1, 0))
        fusion.ingest(event(1, 1))
        fusion.finish()
        assert fusion.alerts == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StreamingFusion(baseline_days=0)
        with pytest.raises(ValueError):
            StreamingFusion(alert_factor=1.0)

    def test_zero_baseline_day_non_alertable(self):
        """An all-quiet trailing window never raises (no inf factor)."""
        fusion = StreamingFusion(baseline_days=2, alert_factor=2.0)
        # Two outage-quiet days enter the baseline with zero attacks each:
        # mark them as outages is the operator's job; here they are simply
        # days whose only event count is zero via sites metric — emulate
        # with site baseline: no web index, so affected_sites stays 0.
        for day in range(2):
            fusion.ingest(event(1, day))
        for _ in range(50):
            fusion.ingest(event(1, 2))
        fusion.finish()
        # The affected_sites baseline is zero throughout: no site alerts,
        # and every raised alert carries a finite factor.
        assert all(a.metric != "affected_sites" for a in fusion.alerts)
        assert all(a.factor != float("inf") for a in fusion.alerts)

    def test_alert_requires_positive_baseline(self):
        from repro.core.streaming import Alert

        with pytest.raises(ValueError):
            Alert(day=3, metric="attacks", value=10, baseline=0.0)


class TestGapAwareBaseline:
    def test_outage_day_excluded_from_baseline(self):
        """A near-empty outage day must not make the next day a spike."""
        quiet = StreamingFusion(baseline_days=3, alert_factor=3.0,
                                outage_days={3})
        naive = StreamingFusion(baseline_days=3, alert_factor=3.0)
        for fusion in (quiet, naive):
            for day in range(3):
                for _ in range(10):
                    fusion.ingest(event(1, day))
            fusion.ingest(event(1, 3))  # outage day: almost nothing
            for _ in range(12):  # recovery day: normal volume again
                fusion.ingest(event(1, 4))
            fusion.finish()
        # The naive stream sees day 4 as 12 vs. baseline (10+10+1)/3 = 7:
        # close to alerting; with a stronger dip it would fire. The
        # gap-aware stream compares 12 against healthy days only.
        assert not any(a.day == 4 for a in quiet.alerts)

    def test_outage_day_itself_not_alerted(self):
        fusion = StreamingFusion(baseline_days=2, alert_factor=2.0,
                                 outage_days={2})
        for day in range(2):
            fusion.ingest(event(1, day))
        for _ in range(30):
            fusion.ingest(event(1, 2))
        fusion.finish()
        assert not any(a.day == 2 for a in fusion.alerts)

    def test_spurious_post_outage_alert_suppressed(self):
        """The scenario from the issue: steady 10/day, an outage day with
        1 event, then 10 again — only the gap-aware stream stays quiet."""
        gap_aware = StreamingFusion(baseline_days=3, alert_factor=2.0,
                                    outage_days={3, 4})
        naive = StreamingFusion(baseline_days=3, alert_factor=2.0)
        for fusion in (gap_aware, naive):
            for day in range(3):
                for _ in range(10):
                    fusion.ingest(event(1, day))
            fusion.ingest(event(1, 3))
            fusion.ingest(event(1, 4))
            for _ in range(10):
                fusion.ingest(event(1, 5))
            fusion.finish()
        assert any(a.day == 5 for a in naive.alerts)
        assert not any(a.day == 5 for a in gap_aware.alerts)

    def test_note_outage_midstream(self):
        fusion = StreamingFusion(baseline_days=2, alert_factor=2.0)
        fusion.ingest(event(1, 0))
        fusion.note_outage(1)
        fusion.ingest(event(1, 1))
        fusion.ingest(event(1, 2))
        fusion.finish()
        assert 1 in fusion.outage_days
        # Day 1 closed while marked: it is summarized but not baselined.
        assert [s.day for s in fusion.summaries] == [0, 1, 2]

    def test_summaries_still_cover_outage_days(self):
        fusion = StreamingFusion(baseline_days=2, outage_days={1})
        fusion.ingest(event(1, 0))
        fusion.ingest(event(1, 1))
        fusion.ingest(event(1, 2))
        fusion.finish()
        assert [s.day for s in fusion.summaries] == [0, 1, 2]


class TestEndToEnd:
    def test_streaming_agrees_with_batch_table1(self, sim):
        fusion = StreamingFusion(web_index=sim.web_index)
        for e in sim.fused.combined.events:
            fusion.ingest(e)
        fusion.finish()
        batch = {
            r["source"]: r for r in sim.fused.summary_rows()
        }["Combined"]
        running = fusion.running_summary()
        assert running["events"] == batch["events"]
        assert running["targets"] == batch["targets"]
        assert running["slash24s"] == batch["slash24s"]
        assert running["asns"] == batch["asns"]

    def test_spike_days_alerted(self, sim):
        """The scripted hoster waves surface as situational alerts."""
        fusion = StreamingFusion(
            web_index=sim.web_index, baseline_days=7, alert_factor=2.5
        )
        for e in sim.fused.combined.events:
            fusion.ingest(e)
        fusion.finish()
        assert fusion.alerts, "expected at least one spike alert"


class TestDurableState:
    """state_dict / from_state_dict / state_digest round-trips.

    These are the primitives the live service's snapshots are built on:
    a restored fusion must be indistinguishable from one that never
    stopped, including the open (not yet rolled-over) day.
    """

    def _stream(self):
        return [
            event(t, d, frac=0.2 + 0.1 * t, asn=t % 3)
            for d in range(3)
            for t in range(1, 6)
        ]

    def test_roundtrip_mid_stream_continues_identically(self):
        events = self._stream()
        reference = StreamingFusion()
        for e in events:
            reference.ingest(e)

        live = StreamingFusion()
        for e in events[:8]:
            live.ingest(e)
        # Serialize through JSON, as the snapshot codec would.
        import json as _json

        state = _json.loads(_json.dumps(live.state_dict()))
        restored = StreamingFusion.from_state_dict(state)
        for e in events[8:]:
            restored.ingest(e)
        assert restored.state_digest() == reference.state_digest()
        assert restored.running_summary() == reference.running_summary()

    def test_open_day_survives_roundtrip(self):
        live = StreamingFusion()
        live.ingest(event(1, 0))
        live.ingest(event(2, 0))
        restored = StreamingFusion.from_state_dict(live.state_dict())
        summary = restored.finish()[0]
        assert summary.attacks == 2
        assert summary.unique_targets == 2

    def test_digest_equal_iff_state_equal(self):
        a = StreamingFusion()
        b = StreamingFusion()
        for e in self._stream():
            a.ingest(e)
            b.ingest(e)
        assert a.state_digest() == b.state_digest()
        b.ingest(event(99, 3))
        assert a.state_digest() != b.state_digest()

    def test_alerts_and_baselines_survive(self):
        live = StreamingFusion(baseline_days=2, alert_factor=1.5)
        for day in range(4):
            count = 30 if day == 3 else 2
            for t in range(count):
                live.ingest(event(100 + t, day))
        live.finish()
        assert live.alerts, "fixture must trip an alert"
        restored = StreamingFusion.from_state_dict(live.state_dict())
        assert [a.day for a in restored.alerts] == [
            a.day for a in live.alerts
        ]
        assert restored.state_digest() == live.state_digest()

    def test_version_mismatch_rejected(self):
        state = StreamingFusion().state_dict()
        state["version"] = 999
        with pytest.raises(ValueError, match="v999"):
            StreamingFusion.from_state_dict(state)

    def test_web_index_is_config_not_state(self, sim):
        live = StreamingFusion(web_index=sim.web_index)
        for e in sim.fused.combined.events[:40]:
            live.ingest(e)
        restored = StreamingFusion.from_state_dict(
            live.state_dict(), web_index=sim.web_index
        )
        for e in sim.fused.combined.events[40:]:
            live.ingest(e)
            restored.ingest(e)
        assert restored.state_digest() == live.state_digest()
