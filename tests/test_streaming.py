"""Unit and integration tests for streaming fusion."""

import pytest

from repro.core.events import AttackEvent, SOURCE_HONEYPOT, SOURCE_TELESCOPE
from repro.core.streaming import StreamingFusion
from repro.core.timeseries import daily_series
from repro.core.webmap import WebHostingIndex

DAY = 86400.0


def event(target, day, frac=0.5, source=SOURCE_TELESCOPE, asn=None):
    start = day * DAY + frac * DAY
    return AttackEvent(source, target, start, start + 60.0, 1.0, asn=asn)


class TestIngestion:
    def test_day_rollover_emits_summary(self):
        fusion = StreamingFusion()
        assert fusion.ingest(event(1, 0)) == []
        closed = fusion.ingest(event(2, 1))
        assert len(closed) == 1
        assert closed[0].day == 0
        assert closed[0].attacks == 1

    def test_finish_flushes_open_day(self):
        fusion = StreamingFusion()
        fusion.ingest(event(1, 0))
        closed = fusion.finish()
        assert len(closed) == 1
        assert fusion.finish() == []

    def test_source_split(self):
        fusion = StreamingFusion()
        fusion.ingest(event(1, 0, 0.1))
        fusion.ingest(
            AttackEvent(SOURCE_HONEYPOT, 2, 0.2 * DAY, 0.2 * DAY + 9, 1.0,
                        reflector_protocol="NTP")
        )
        summary = fusion.finish()[0]
        assert summary.telescope_attacks == 1
        assert summary.honeypot_attacks == 1
        assert summary.unique_targets == 2

    def test_slight_disorder_tolerated(self):
        fusion = StreamingFusion()
        fusion.ingest(event(1, 1, 0.5))
        fusion.ingest(event(2, 1, 0.4))  # earlier same day: fine
        summary = fusion.finish()[0]
        assert summary.attacks == 2

    def test_gross_disorder_rejected(self):
        fusion = StreamingFusion()
        fusion.ingest(event(1, 5))
        with pytest.raises(ValueError):
            fusion.ingest(event(2, 1))

    def test_running_summary_matches_batch(self):
        events = [event(t, d, asn=t % 3) for d in range(3) for t in range(1, 6)]
        fusion = StreamingFusion()
        for e in events:
            fusion.ingest(e)
        fusion.finish()
        running = fusion.running_summary()
        assert running["events"] == len(events)
        assert running["targets"] == 5
        series = daily_series(events, 3)
        assert sum(s.attacks for s in fusion.summaries) == series.attacks.sum()

    def test_web_impact_metric(self):
        index = WebHostingIndex([("www.a.com", 7, 0, 10)])
        fusion = StreamingFusion(web_index=index)
        fusion.ingest(event(7, 0))
        fusion.ingest(event(8, 0))
        summary = fusion.finish()[0]
        assert summary.affected_sites == 1


class TestAlerts:
    def test_spike_raises_alert(self):
        fusion = StreamingFusion(baseline_days=3, alert_factor=3.0)
        for day in range(3):
            fusion.ingest(event(1, day))
        for _ in range(10):
            fusion.ingest(event(1, 3))
        fusion.finish()
        assert any(
            a.metric == "attacks" and a.day == 3 for a in fusion.alerts
        )
        alert = fusion.alerts[0]
        assert alert.factor > 3.0

    def test_no_alert_before_baseline_established(self):
        fusion = StreamingFusion(baseline_days=5, alert_factor=2.0)
        for _ in range(50):
            fusion.ingest(event(1, 0))
        fusion.ingest(event(1, 1))
        fusion.finish()
        assert fusion.alerts == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StreamingFusion(baseline_days=0)
        with pytest.raises(ValueError):
            StreamingFusion(alert_factor=1.0)


class TestEndToEnd:
    def test_streaming_agrees_with_batch_table1(self, sim):
        fusion = StreamingFusion(web_index=sim.web_index)
        for e in sim.fused.combined.events:
            fusion.ingest(e)
        fusion.finish()
        batch = {
            r["source"]: r for r in sim.fused.summary_rows()
        }["Combined"]
        running = fusion.running_summary()
        assert running["events"] == batch["events"]
        assert running["targets"] == batch["targets"]
        assert running["slash24s"] == batch["slash24s"]
        assert running["asns"] == batch["asns"]

    def test_spike_days_alerted(self, sim):
        """The scripted hoster waves surface as situational alerts."""
        fusion = StreamingFusion(
            web_index=sim.web_index, baseline_days=7, alert_factor=2.5
        )
        for e in sim.fused.combined.events:
            fusion.ingest(e)
        fusion.finish()
        assert fusion.alerts, "expected at least one spike alert"
