"""Unit tests for the supervised executor building blocks.

Covers the worker pool (result ordering, error capture, the watchdog
killing hung workers, crash reporting), the per-feed circuit breaker's
closed → open → half-open life cycle under an injected clock, the
run-level deadline, deterministic shard planning, execution-fault plans,
and the bounded streaming-fusion hand-off (backpressure).
"""

import time

import pytest

from repro.core.events import AttackEvent, SOURCE_TELESCOPE
from repro.core.streaming import BoundedStreamingFusion, StreamingFusion
from repro.exec.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.exec.deadline import RunDeadline, RunDeadlineExceeded
from repro.exec.pool import (
    ExecConfig,
    MODE_FORK,
    MODE_SERIAL,
    MODE_THREAD,
    STATUS_DEADLINE,
    STATUS_ERROR,
    STATUS_OK,
    SupervisedPool,
    TaskSpec,
    resolve_mode,
)
from repro.exec.shard import (
    ShardPlan,
    is_shard_checkpoint,
    shard_checkpoint_name,
    split_even,
)
from repro.faults.exec import (
    ExecFault,
    ExecFaultPlan,
    KIND_CRASH,
    KIND_HUNG,
    KIND_POISON,
    PoisonShardError,
    apply_exec_fault,
)

HAVE_FORK = resolve_mode("auto") == MODE_FORK


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


# -- ExecConfig ---------------------------------------------------------------


class TestExecConfig:
    def test_defaults_are_the_serial_pipeline(self):
        config = ExecConfig()
        assert not config.parallel
        assert config.n_shards == 1

    def test_shards_default_to_workers(self):
        assert ExecConfig(workers=4).n_shards == 4
        assert ExecConfig(workers=4, shards=2).n_shards == 2

    def test_task_deadline_alone_counts_as_parallel(self):
        # A watchdog needs the supervised path even with one worker.
        assert ExecConfig(task_deadline=5.0).parallel

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"shards": 0},
            {"mode": "warp"},
            {"task_deadline": 0.0},
        ],
    )
    def test_rejects_nonsense(self, kwargs):
        with pytest.raises(ValueError):
            ExecConfig(**kwargs)


# -- SupervisedPool -----------------------------------------------------------


class TestSupervisedPool:
    @pytest.mark.parametrize(
        "mode",
        [MODE_SERIAL, MODE_THREAD]
        + ([MODE_FORK] if HAVE_FORK else []),
    )
    def test_outcomes_in_task_order(self, mode):
        pool = SupervisedPool(max_workers=2, mode=mode)
        tasks = [
            TaskSpec(name=f"t{i}", fn=(lambda i=i: i * i))
            for i in range(5)
        ]
        outcomes = pool.run(tasks)
        assert [o.name for o in outcomes] == [f"t{i}" for i in range(5)]
        assert all(o.status == STATUS_OK for o in outcomes)
        assert [o.value for o in outcomes] == [0, 1, 4, 9, 16]

    @pytest.mark.parametrize(
        "mode",
        [MODE_SERIAL, MODE_THREAD]
        + ([MODE_FORK] if HAVE_FORK else []),
    )
    def test_task_exception_is_captured_not_raised(self, mode):
        pool = SupervisedPool(max_workers=1, mode=mode)

        def boom():
            raise RuntimeError("shard is cursed")

        good, bad = pool.run(
            [TaskSpec("good", lambda: 7), TaskSpec("bad", boom)]
        )
        assert good.ok and good.value == 7
        assert bad.status == STATUS_ERROR
        assert "shard is cursed" in bad.error

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method required")
    def test_watchdog_kills_hung_fork_worker(self):
        pool = SupervisedPool(max_workers=2, mode=MODE_FORK)
        started = time.monotonic()
        hung, fine = pool.run(
            [
                TaskSpec("hung", lambda: time.sleep(120), deadline=0.5),
                TaskSpec("fine", lambda: "done", deadline=30.0),
            ]
        )
        elapsed = time.monotonic() - started
        assert hung.status == STATUS_DEADLINE
        assert "killed" in hung.error
        assert fine.ok and fine.value == "done"
        assert elapsed < 30, "watchdog did not fire anywhere near the deadline"

    def test_watchdog_abandons_hung_thread_worker(self):
        pool = SupervisedPool(max_workers=1, mode=MODE_THREAD)
        (outcome,) = pool.run(
            [TaskSpec("hung", lambda: time.sleep(120), deadline=0.2)]
        )
        assert outcome.status == STATUS_DEADLINE
        assert "abandoned" in outcome.error

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method required")
    def test_crashed_worker_reported_with_exit_code(self):
        import os

        pool = SupervisedPool(max_workers=1, mode=MODE_FORK)
        (outcome,) = pool.run([TaskSpec("dies", lambda: os._exit(13))])
        assert outcome.status == "crashed"
        assert "13" in outcome.error

    def test_serial_mode_runs_inline(self):
        pool = SupervisedPool(max_workers=1, mode=MODE_SERIAL)
        marker = []
        pool.run([TaskSpec("inline", lambda: marker.append(1))])
        # Inline execution mutates the caller's state directly — the
        # property the fork workers deliberately do NOT have.
        assert marker == [1]


# -- CircuitBreaker -----------------------------------------------------------


class TestCircuitBreaker:
    def test_closed_allows_and_counts_failures(self):
        breaker = CircuitBreaker("feed", failure_threshold=3)
        assert breaker.allow()
        breaker.record_failure("hiccup")
        breaker.record_failure("hiccup")
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_threshold_trips_open_and_refuses(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "feed", failure_threshold=2, cooldown=30.0, clock=clock
        )
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.refusals == 2

    def test_cooldown_elapses_to_half_open_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "feed", failure_threshold=1, cooldown=10.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()  # the probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow()  # only ONE probe

    def test_probe_success_closes_and_resets(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "feed", failure_threshold=2, cooldown=5.0, clock=clock
        )
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        # Reset consecutive count: one new failure must not re-trip.
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_probe_failure_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "feed", failure_threshold=1, cooldown=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure("still down")
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()

    def test_report_is_deterministic_and_renders(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "honeypot", failure_threshold=1, cooldown=1.0, clock=clock
        )
        breaker.record_failure("poison shard")
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        report = breaker.report()
        assert [t.to_state for t in report.transitions] == [
            BREAKER_OPEN, BREAKER_HALF_OPEN, BREAKER_CLOSED,
        ]
        text = report.describe()
        assert "honeypot" in text
        assert "closed -> open -> half-open -> closed" in text


# -- RunDeadline --------------------------------------------------------------


class TestRunDeadline:
    def test_no_deadline_never_expires(self):
        deadline = RunDeadline(None)
        assert not deadline.active
        assert deadline.remaining() is None
        deadline.check("anywhere")  # no raise

    def test_expiry_raises_with_location(self):
        clock = FakeClock()
        deadline = RunDeadline(10.0, clock=clock)
        deadline.check("stage 'attacks'")
        clock.advance(10.1)
        with pytest.raises(RunDeadlineExceeded) as err:
            deadline.check("stage 'telescope'")
        assert "stage 'telescope'" in str(err.value)
        assert "resumable" in str(err.value)

    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = RunDeadline(10.0, clock=clock)
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(6.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            RunDeadline(0.0)


# -- shard planning -----------------------------------------------------------


class TestSharding:
    def test_split_even_covers_everything_in_order(self):
        items = list(range(10))
        chunks = split_even(items, 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [x for chunk in chunks for x in chunk] == items

    def test_split_even_keeps_empty_shards(self):
        chunks = split_even([1, 2], 4)
        assert len(chunks) == 4
        assert [list(c) for c in chunks] == [[1], [2], [], []]

    def test_checkpoint_names_bake_in_shard_count(self):
        # A resume with a different --shards must not see these names.
        assert shard_checkpoint_name("telescope", 0, 4) == (
            "telescope.shard0of4"
        )
        assert shard_checkpoint_name("telescope", 0, 2) != (
            shard_checkpoint_name("telescope", 0, 4)
        )
        with pytest.raises(ValueError):
            shard_checkpoint_name("telescope", 4, 4)

    def test_is_shard_checkpoint(self):
        assert is_shard_checkpoint("honeypot.shard1of3")
        assert not is_shard_checkpoint("honeypot")

    def test_plan_names_align_with_indices(self):
        plan = ShardPlan("measurement", 3)
        assert plan.sharded
        assert plan.checkpoint_names() == (
            "measurement.shard0of3",
            "measurement.shard1of3",
            "measurement.shard2of3",
        )
        assert plan.task_name(1) == "measurement[1/3]"


# -- execution-fault plans ----------------------------------------------------


class TestExecFaultPlan:
    def test_parse_round_trips(self):
        plan = ExecFaultPlan.parse(
            ("hung:honeypot:0", "poison:telescope", "crash:measurement:1:2")
        )
        assert plan.lookup("honeypot", 0, 1).kind == KIND_HUNG
        assert plan.lookup("honeypot", 1, 1) is None
        # No shard given: matches every shard of the stage.
        assert plan.lookup("telescope", 2, 1).kind == KIND_POISON
        # attempts=2: fires on attempts 1 and 2, clean from attempt 3.
        assert plan.lookup("measurement", 1, 2).kind == KIND_CRASH
        assert plan.lookup("measurement", 1, 3) is None

    def test_poison_fires_on_every_attempt(self):
        fault = ExecFault(kind=KIND_POISON, stage="honeypot", shard=0)
        assert fault.matches("honeypot", 0, 1)
        assert fault.matches("honeypot", 0, 99)

    def test_parse_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            ExecFaultPlan.parse(("hung",))

    def test_apply_poison_raises(self):
        with pytest.raises(PoisonShardError):
            apply_exec_fault(
                ExecFault(kind=KIND_POISON, stage="honeypot", shard=0)
            )

    def test_apply_none_is_noop(self):
        apply_exec_fault(None)

    def test_describe_is_stable(self):
        plan = ExecFaultPlan.parse(("hung:honeypot:0",))
        assert "hung" in plan.describe()
        assert "honeypot" in plan.describe()


# -- bounded streaming fusion -------------------------------------------------


def _event(ts: float, target: int) -> AttackEvent:
    return AttackEvent(
        source=SOURCE_TELESCOPE,
        target=target,
        start_ts=ts,
        end_ts=ts + 60.0,
        intensity=100.0,
    )


class TestBoundedStreamingFusion:
    def test_matches_unbounded_fusion(self):
        events = [_event(i * 3600.0, 1000 + i) for i in range(50)]
        plain = StreamingFusion()
        for event in events:
            plain.ingest(event)
        plain.finish()

        bounded = BoundedStreamingFusion(maxsize=4)
        bounded.ingest_many(events)
        fused = bounded.close()
        assert fused.running_summary() == plain.running_summary()
        assert len(fused.summaries) == len(plain.summaries)

    def test_backpressure_is_observable(self):
        bounded = BoundedStreamingFusion(maxsize=1)
        bounded.ingest_many(
            _event(i * 60.0, 2000 + i) for i in range(200)
        )
        bounded.close()
        # With a one-slot queue and a consumer doing real work, some puts
        # must have found the queue full; memory stayed at maxsize.
        assert bounded.blocked_puts > 0
        assert bounded.depth == 0

    def test_consumer_error_reaches_producer(self):
        bounded = BoundedStreamingFusion(maxsize=8)
        bounded.ingest(_event(10 * 86400.0, 1))
        with pytest.raises(ValueError, match="out of order"):
            # Two days backwards: beyond the fusion's disorder tolerance.
            bounded.ingest(_event(8 * 86400.0 - 1.0, 2))
            bounded.close()

    def test_ingest_after_close_rejected(self):
        bounded = BoundedStreamingFusion(maxsize=2)
        bounded.close()
        with pytest.raises(RuntimeError, match="closed"):
            bounded.ingest(_event(0.0, 1))

    def test_rejects_zero_bound(self):
        with pytest.raises(ValueError):
            BoundedStreamingFusion(maxsize=0)
