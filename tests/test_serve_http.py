"""HTTP API tests for the live service, plus the real kill -9 drill.

The in-process tests bind a ``ServeHTTPServer`` on an ephemeral port and
exercise every endpoint, the 503 + Retry-After shed path and the error
paths. The subprocess test runs the same drill CI's serve-smoke job
runs: boot ``python -m repro serve``, ingest, SIGKILL, restart, assert
the recovered digest matches.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.chaos import run_kill9_recover
from repro.serve.http import ServeHTTPServer, read_endpoint_file
from repro.serve.service import LiveIngestService, ServeConfig
from repro.serve.wal import KIND_ATTACK


def attack(i):
    return {
        "source": "telescope",
        "target": (10 << 24) + i,
        "start_ts": float(i),
        "end_ts": float(i) + 30.0,
        "intensity": 50.0,
    }


@pytest.fixture()
def served(tmp_path):
    service = LiveIngestService(
        ServeConfig(data_dir=tmp_path / "serve", snapshot_every_events=100),
        metrics=MetricsRegistry(),
    )
    service.start()
    server = ServeHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, server.server_address[1]
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


def get(port, path):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10
        ) as response:
            return response.status, json.loads(response.read()), response
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error


def post(port, path, body, raw=False):
    data = body if raw else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), response
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error


class TestIngestAndQuery:
    def test_full_roundtrip(self, served):
        service, port = served
        status, body, _r = post(
            port, "/ingest/attacks?feed=telescope",
            [attack(i) for i in range(6)],
        )
        assert status == 202 and body["accepted"] == 6
        status, body, _r = post(
            port, "/ingest/dps",
            {"records": [{"domain": "x.com", "provider": "p", "day": 0}]},
        )
        assert status == 202 and body["accepted"] == 1
        assert service.quiesce(timeout=10)

        status, body, _r = get(port, "/healthz")
        assert status == 200 and body["ok"] is True

        status, body, _r = get(port, "/summary")
        assert body["applied_events"] == 6 and body["dps_domains"] == 1

        status, body, _r = get(port, "/attacks?ip=10.0.0.3")
        assert status == 200 and body["count"] == 1
        assert body["events"][0]["target"] == (10 << 24) + 3

        status, body, _r = get(port, "/attacks?prefix=10.0.0.0/24&limit=4")
        assert status == 200 and body["count"] == 4

        status, body, _r = get(port, "/victims?prefix=10.0.0.0/16")
        assert body["count"] == 6

        status, body, _r = get(port, "/domains?domain=x.com")
        assert status == 200 and body["provider"] == "p"
        status, body, _r = get(port, "/domains")
        assert body == {"domains": 1, "protected": 1}

        status, body, _r = get(port, "/stats")
        assert body["accepted"] == {"dps": 1, "telescope": 6}

        status, body, _r = get(port, "/digest")
        assert body["digest"] == service.store.state_digest()

    def test_metrics_exposition(self, served):
        _service, port = served
        post(port, "/ingest/attacks", [attack(1)])
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10
        ) as response:
            text = response.read().decode()
        assert "# TYPE serve_queue_depth gauge" in text
        assert "serve_wal_appends_total" in text

    def test_rejected_only_batch_is_400(self, served):
        _service, port = served
        status, body, _r = post(
            port, "/ingest/attacks", [{"source": "telescope"}]
        )
        assert status == 400
        assert body["reasons"] == {"missing-field:target": 1}

    def test_bad_json_and_unknown_paths(self, served):
        _service, port = served
        status, body, _r = post(port, "/ingest/attacks", b"not json", raw=True)
        assert status == 400
        status, body, _r = post(port, "/ingest/attacks?feed=nope", [attack(1)])
        assert status == 400 and "unknown feed" in body["error"]
        status, _body, _r = get(port, "/no/such")
        assert status == 404
        status, body, _r = get(port, "/attacks")
        assert status == 400 and "ip=" in body["error"]
        status, _body, _r = get(port, "/attacks?prefix=10.0.0.0/8")
        assert status == 400
        status, _body, _r = get(port, "/domains?domain=never-seen.example")
        assert status == 404


class TestShedding:
    def test_503_with_retry_after(self, tmp_path):
        service = LiveIngestService(
            ServeConfig(
                data_dir=tmp_path / "serve",
                queue_size=16,
                high_watermark=8,
                low_watermark=2,
                retry_after=2.5,
                apply_delay=0.05,
            ),
            metrics=MetricsRegistry(),
        )
        service.start()
        server = ServeHTTPServer(("127.0.0.1", 0), service)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            saw_503 = None
            for base in range(0, 64, 8):
                status, body, response = post(
                    port, "/ingest/attacks",
                    [attack(base + j) for j in range(8)],
                )
                if status == 503:
                    saw_503 = (body, response)
                    break
            assert saw_503 is not None, "overload never answered 503"
            body, response = saw_503
            assert response.headers["Retry-After"] == "2.5"
            assert body["retry_after"] == 2.5
        finally:
            server.shutdown()
            server.server_close()
            service.stop()


class TestKill9Subprocess:
    def test_kill9_then_recover_state_equivalent(self, tmp_path):
        result = run_kill9_recover(tmp_path, events=50, recovery_budget=30.0)
        assert result.passed, result.detail
        endpoint = read_endpoint_file(tmp_path / "kill9")
        assert endpoint["host"] == "127.0.0.1"


class TestFlightRecorderEndpoints:
    def test_status_document(self, served):
        service, port = served
        post(port, "/ingest/attacks", [attack(i) for i in range(4)])
        assert service.quiesce(timeout=10)
        status, body, _r = get(port, "/status")
        assert status == 200
        assert body["node"] == service.node_name
        assert body["role"] == "primary"
        assert body["seq"] >= 1 and body["applied_seq"] == body["seq"]
        assert body["wal"]["segments"] >= 1 and body["wal"]["bytes"] > 0
        assert body["degraded"] is False and body["draining"] is False
        # The /status request itself is already in the request log.
        assert body["requests"]["total"] >= 1
        recent = body["requests"]["recent"]
        assert any(r["endpoint"] == "/ingest/attacks" for r in recent)
        assert all("trace_id" in r and "duration_s" in r for r in recent)

    def test_metrics_history_endpoint(self, served):
        service, port = served
        post(port, "/ingest/attacks", [attack(1)])
        assert service.quiesce(timeout=10)
        # The watch loop samples on a wall-clock interval; drive the
        # recorder directly so the test stays fast and deterministic.
        service.history.sample()
        service.history.sample()
        status, body, _r = get(port, "/metrics/history")
        assert status == 200
        assert body["window_count"] >= 2
        assert body["windows"][-1]["gauges"]["serve_queue_depth"] == 0.0
        status, body, _r = get(port, "/metrics/history?last=1")
        assert status == 200 and body["window_count"] == 1
        status, _body, _r = get(port, "/metrics/history?last=bogus")
        assert status == 400

    def test_healthz_reports_wal_and_snapshot_freshness(self, served):
        service, port = served
        post(port, "/ingest/attacks", [attack(1)])
        assert service.quiesce(timeout=10)
        status, body, _r = get(port, "/healthz")
        assert status == 200
        assert body["wal_segments"] >= 1
        assert body["wal_bytes"] > 0
        assert body["snapshot_age_s"] >= 0
        assert body["degraded"] is False

    def test_incoming_trace_id_is_honored_and_echoed(self, served):
        service, port = served
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/ingest/attacks",
            data=json.dumps([attack(1)]).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                "X-Repro-Trace-Id": "client-000042",
            },
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 202
            assert response.headers["X-Repro-Trace-Id"] == "client-000042"
        assert service.quiesce(timeout=10)
        entries = [
            r for r in service.requests.recent()
            if r["endpoint"] == "/ingest/attacks"
        ]
        assert entries and entries[-1]["trace_id"] == "client-000042"
        # The WAL record carries the trace too, so a follower replaying
        # it can attribute the write back to the originating request.
        records, _report = service.wal.replay()
        assert records and records[-1].trace == "client-000042"

    def test_server_mints_trace_ids_when_absent(self, served):
        service, port = served
        _status, _body, response = get(port, "/healthz")
        minted = response.headers["X-Repro-Trace-Id"]
        assert minted.startswith(f"{service.node_name}-")
        _status, _body, second = get(port, "/healthz")
        assert second.headers["X-Repro-Trace-Id"] != minted

    def test_request_latency_histogram_is_labeled(self, served):
        _service, port = served
        get(port, "/healthz")
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10
        ) as response:
            text = response.read().decode()
        assert "# TYPE serve_http_request_seconds histogram" in text
        assert 'endpoint="/healthz"' in text
        assert 'method="GET"' in text and 'status="200"' in text
