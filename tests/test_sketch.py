"""Unit tests for the sketch tier: primitives, detectors, merges, dispatch.

The streaming-sketch engine trades exactness for throughput; these tests
pin the parts that must stay exact anyway — seeded determinism, merge
algebra (disjoint / overlapping / empty shards), the sharded-equals-
serial identity the pipeline relies on, zero-event edge cases, and the
``exact | columnar | sketch`` tier dispatch plumbing.
"""

from __future__ import annotations

import random

import pytest

from repro.honeypot.amppot import RequestBatch
from repro.honeypot.columnar import RequestColumns
from repro.honeypot.detection import (
    DetectionConfig,
    HoneypotSketch,
    detect_columns as detect_honeypot_columns,
    detect_sketch as detect_honeypot_sketch,
)
from repro.net.columnar import PacketColumns
from repro.net.packet import PROTO_ICMP, PROTO_TCP, PacketBatch
from repro.pipeline.simulation import (
    DETECT_TIERS,
    detect_honeypot_shard,
    detect_telescope_shard,
    honeypot_capture,
    merge_honeypot_shards,
    merge_telescope_shards,
    observe_honeypots,
    observe_telescope,
    resolve_detect_tier,
    telescope_capture,
)
from repro.sketch import (
    CountMinSketch,
    FlowSketch,
    HyperLogLog,
    SketchConfig,
    SpaceSaving,
    mix64,
)
from repro.telescope.rsdos import (
    RSDoSConfig,
    TelescopeSketch,
    detect_columns as detect_telescope_columns,
    detect_sketch as detect_telescope_sketch,
)


# -- hashing ------------------------------------------------------------------


class TestHashing:
    def test_mix64_is_deterministic(self):
        assert mix64(12345) == mix64(12345)
        assert mix64(12345, tweak=7) == mix64(12345, tweak=7)

    def test_mix64_tweak_changes_digest(self):
        assert mix64(12345) != mix64(12345, tweak=7)

    def test_mix64_stays_in_64_bits(self):
        for key in (0, 1, 2**32, 2**63, 2**64 - 1):
            assert 0 <= mix64(key) < 2**64


# -- count-min ----------------------------------------------------------------


class TestCountMinSketch:
    def test_never_underestimates(self):
        rng = random.Random(7)
        sketch = CountMinSketch(width=512, depth=4, seed=3)
        truth = {}
        for _ in range(5_000):
            key = rng.randrange(2_000)
            truth[key] = truth.get(key, 0) + 1
            sketch.update(key)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_error_within_bound(self):
        rng = random.Random(11)
        sketch = CountMinSketch(width=2048, depth=4, seed=1)
        truth = {}
        for _ in range(20_000):
            key = rng.randrange(500)
            truth[key] = truth.get(key, 0) + 1
            sketch.update(key)
        bound = sketch.error_bound()
        for key, count in truth.items():
            assert sketch.estimate(key) - count <= bound

    def test_conservative_update_is_tighter(self):
        rng = random.Random(13)
        keys = [rng.randrange(400) for _ in range(20_000)]
        plain = CountMinSketch(width=256, depth=4, seed=2)
        conservative = CountMinSketch(
            width=256, depth=4, seed=2, conservative=True
        )
        truth = {}
        for key in keys:
            truth[key] = truth.get(key, 0) + 1
            plain.update(key)
            conservative.update(key)
        plain_error = sum(plain.estimate(k) - c for k, c in truth.items())
        cons_error = sum(
            conservative.estimate(k) - c for k, c in truth.items()
        )
        for key, count in truth.items():
            assert conservative.estimate(key) >= count
        assert cons_error <= plain_error

    def test_update_columns_matches_loop(self):
        keys = [5, 9, 5, 11]
        counts = [2, 3, 4, 1]
        batch = CountMinSketch(width=128, depth=3, seed=5)
        loop = CountMinSketch(width=128, depth=3, seed=5)
        batch.update_columns(keys, counts)
        for key, count in zip(keys, counts):
            loop.update(key, count)
        for key in keys:
            assert batch.estimate(key) == loop.estimate(key)

    def test_update_columns_length_mismatch(self):
        sketch = CountMinSketch(width=64, depth=2)
        with pytest.raises(ValueError):
            sketch.update_columns([1, 2], [3])

    def test_merge_equals_single_stream(self):
        rng = random.Random(17)
        keys = [rng.randrange(300) for _ in range(4_000)]
        whole = CountMinSketch(width=512, depth=4, seed=9)
        left = CountMinSketch(width=512, depth=4, seed=9)
        right = CountMinSketch(width=512, depth=4, seed=9)
        for i, key in enumerate(keys):
            whole.update(key)
            (left if i % 2 else right).update(key)
        left.merge(right)
        for key in set(keys):
            assert left.estimate(key) == whole.estimate(key)

    def test_merge_rejects_geometry_mismatch(self):
        a = CountMinSketch(width=512, depth=4, seed=1)
        for other in (
            CountMinSketch(width=256, depth=4, seed=1),
            CountMinSketch(width=512, depth=2, seed=1),
            CountMinSketch(width=512, depth=4, seed=2),
        ):
            with pytest.raises(ValueError):
                a.merge(other)

    def test_fill_ratio_grows(self):
        sketch = CountMinSketch(width=64, depth=2, seed=0)
        assert sketch.fill_ratio() == 0.0
        sketch.update(1)
        assert 0.0 < sketch.fill_ratio() <= 1.0


# -- hyperloglog --------------------------------------------------------------


class TestHyperLogLog:
    def test_empty_cardinality_is_zero(self):
        assert HyperLogLog(p=12).cardinality() == 0.0

    def test_estimate_within_published_error(self):
        hll = HyperLogLog(p=12, seed=4)
        n = 50_000
        for key in range(n):
            hll.add(key)
        # 1.04/sqrt(2^12) ~ 1.6%; allow 4 sigma.
        assert abs(hll.cardinality() - n) / n < 0.065

    def test_duplicates_do_not_inflate(self):
        hll = HyperLogLog(p=10, seed=1)
        for _ in range(100):
            hll.add(42)
        assert hll.cardinality() == pytest.approx(1.0, abs=0.5)

    def test_merge_equals_union(self):
        union = HyperLogLog(p=11, seed=6)
        left = HyperLogLog(p=11, seed=6)
        right = HyperLogLog(p=11, seed=6)
        for key in range(3_000):
            union.add(key)
            (left if key % 2 else right).add(key)
        left.merge(right)
        assert left.cardinality() == union.cardinality()

    def test_merge_rejects_mismatch(self):
        with pytest.raises(ValueError):
            HyperLogLog(p=10, seed=1).merge(HyperLogLog(p=11, seed=1))
        with pytest.raises(ValueError):
            HyperLogLog(p=10, seed=1).merge(HyperLogLog(p=10, seed=2))

    def test_precision_bounds(self):
        with pytest.raises(ValueError):
            HyperLogLog(p=3)
        with pytest.raises(ValueError):
            HyperLogLog(p=19)


# -- space-saving -------------------------------------------------------------


class TestSpaceSaving:
    def test_exact_below_capacity(self):
        summary = SpaceSaving(capacity=16)
        for key, count in [(1, 10), (2, 5), (1, 3), (3, 1)]:
            summary.update(key, count)
        assert summary.top(3) == [(1, 13, 0), (2, 5, 0), (3, 1, 0)]

    def test_heavy_hitters_survive_eviction(self):
        rng = random.Random(23)
        summary = SpaceSaving(capacity=32)
        truth = {}
        # Zipf-ish: a few heavy keys among a long random tail.
        for _ in range(20_000):
            key = rng.randrange(10) if rng.random() < 0.7 else rng.randrange(
                10_000
            )
            truth[key] = truth.get(key, 0) + 1
            summary.update(key)
        top = {key for key, _, _ in summary.top(10)}
        true_top = {
            key
            for key, _ in sorted(
                truth.items(), key=lambda kv: (-kv[1], kv[0])
            )[:10]
        }
        assert true_top <= top

    def test_counts_are_upper_bounds(self):
        rng = random.Random(29)
        summary = SpaceSaving(capacity=8)
        truth = {}
        for _ in range(2_000):
            key = rng.randrange(100)
            truth[key] = truth.get(key, 0) + 1
            summary.update(key)
        for key, count, error in summary.top(8):
            assert count >= truth.get(key, 0)
            assert error <= count

    def test_merge_equals_single_stream_below_capacity(self):
        whole = SpaceSaving(capacity=64)
        left = SpaceSaving(capacity=64)
        right = SpaceSaving(capacity=64)
        for i in range(40):
            whole.update(i, i + 1)
            (left if i % 2 else right).update(i, i + 1)
        left.merge(right)
        assert left.top(40) == whole.top(40)

    def test_merge_overlapping_sums_counts(self):
        left = SpaceSaving(capacity=16)
        right = SpaceSaving(capacity=16)
        left.update(7, 10)
        right.update(7, 5)
        left.merge(right)
        assert left.top(1) == [(7, 15, 0)]

    def test_merge_empty_is_identity(self):
        summary = SpaceSaving(capacity=8)
        summary.update(1, 4)
        summary.merge(SpaceSaving(capacity=8))
        assert summary.top(1) == [(1, 4, 0)]
        empty = SpaceSaving(capacity=8)
        empty.merge(summary)
        assert empty.top(1) == [(1, 4, 0)]


# -- flow sketch (heavy table + spill + hll) ---------------------------------


def _combine_max(mine, theirs):
    for i, value in enumerate(theirs):
        mine[i] = max(mine[i], value)


class TestFlowSketch:
    def test_no_eviction_below_capacity(self):
        sketch = FlowSketch(SketchConfig(capacity=8, seed=1), count_slot=0)
        for key in range(8):
            sketch.admit(key, [key])
        assert sketch.evictions == 0
        assert len(sketch.heavy) == 8

    def test_eviction_spills_min_count(self):
        sketch = FlowSketch(SketchConfig(capacity=2, seed=1), count_slot=0)
        sketch.admit(1, [10])
        sketch.admit(2, [20])
        sketch.admit(3, [30])  # evicts key 1 (count 10) into the spill
        assert sketch.evictions == 1
        assert 1 not in sketch.heavy
        assert sketch.estimate(1) >= 10  # spill keeps an upper bound
        assert sketch.estimate(2) == 20
        assert sketch.estimate(3) == 30

    def test_cardinality_counts_admissions(self):
        sketch = FlowSketch(SketchConfig(capacity=4, seed=2), count_slot=0)
        for key in range(200):
            sketch.admit(key, [1])
        assert abs(sketch.cardinality() - 200) / 200 < 0.2


# -- synthetic captures -------------------------------------------------------


def packet(ts, src=1, proto=PROTO_TCP, count=30, distinct=10):
    # SYN+ACK for TCP, echo-reply for ICMP: both backscatter signatures.
    return PacketBatch(
        timestamp=ts, src=src, proto=proto, count=count,
        bytes=count * 40, distinct_dsts=distinct,
        tcp_flags=0x12 if proto == PROTO_TCP else 0,
        icmp_type=0 if proto == PROTO_ICMP else -1,
    )


def request(ts, victim=1, honeypot=0, protocol="NTP", count=60):
    return RequestBatch(
        timestamp=ts, victim=victim, honeypot_id=honeypot,
        protocol=protocol, count=count,
    )


def telescope_columns(batches):
    return PacketColumns.from_batches(batches)


def request_columns(batches):
    return RequestColumns.from_batches(batches)


# -- zero-event edges ---------------------------------------------------------


class TestZeroEventEdges:
    def test_telescope_columns_empty(self):
        assert detect_telescope_columns(
            RSDoSConfig(), telescope_columns([])
        ) == []

    def test_honeypot_columns_empty(self):
        assert detect_honeypot_columns(
            DetectionConfig(), request_columns([])
        ) == []

    def test_telescope_sketch_empty(self):
        summary = detect_telescope_sketch(
            RSDoSConfig(), telescope_columns([]),
            sketch_config=SketchConfig(),
        )
        assert summary.events() == []
        assert summary.cardinality() == 0.0
        assert summary.sketch.rows == 0

    def test_honeypot_sketch_empty(self):
        summary = detect_honeypot_sketch(
            DetectionConfig(), request_columns([]),
            sketch_config=SketchConfig(),
        )
        assert summary.events() == []
        assert summary.sketch.rows == 0

    def test_telescope_sketch_all_below_threshold(self):
        # One lone packet batch: below min_packets, never an event.
        summary = detect_telescope_sketch(
            RSDoSConfig(), telescope_columns([packet(0.0, count=1)]),
            sketch_config=SketchConfig(),
        )
        assert summary.events() == []

    def test_honeypot_sketch_all_below_threshold(self):
        summary = detect_honeypot_sketch(
            DetectionConfig(), request_columns([request(0.0, count=1)]),
            sketch_config=SketchConfig(),
        )
        assert summary.events() == []


# -- sketch summary merges ----------------------------------------------------


def _telescope_summary(batches, config=None):
    return detect_telescope_sketch(
        RSDoSConfig(), telescope_columns(batches),
        sketch_config=config or SketchConfig(),
    )


def _honeypot_summary(batches, config=None):
    return detect_honeypot_sketch(
        DetectionConfig(), request_columns(batches),
        sketch_config=config or SketchConfig(),
    )


def _flood(victim, t0=0.0, n=30):
    """Enough batches for one telescope event (25+ pkts, 60+ s)."""
    return [packet(t0 + 10.0 * i, src=victim) for i in range(n)]


def _requests(victim, protocol="NTP", t0=0.0, n=5):
    return [
        request(t0 + 60.0 * i, victim=victim, protocol=protocol)
        for i in range(n)
    ]


class TestSketchMerge:
    def test_disjoint_telescope_shards(self):
        merged = TelescopeSketch.merge_all(
            [_telescope_summary(_flood(1)), _telescope_summary(_flood(2))]
        )
        combined = _telescope_summary(_flood(1) + _flood(2))
        assert merged.events() == combined.events()

    def test_overlapping_telescope_shards(self):
        batches = _flood(1, n=40)
        merged = TelescopeSketch.merge_all(
            [
                _telescope_summary(batches[:20]),
                _telescope_summary(batches[20:]),
            ]
        )
        assert merged.events() == _telescope_summary(batches).events()

    def test_empty_telescope_shard_is_identity(self):
        merged = TelescopeSketch.merge_all(
            [_telescope_summary(_flood(9)), _telescope_summary([])]
        )
        assert merged.events() == _telescope_summary(_flood(9)).events()

    def test_disjoint_honeypot_shards(self):
        merged = HoneypotSketch.merge_all(
            [
                _honeypot_summary(_requests(1)),
                _honeypot_summary(_requests(2)),
            ]
        )
        combined = _honeypot_summary(_requests(1) + _requests(2))
        assert merged.events() == combined.events()

    def test_overlapping_honeypot_shards(self):
        batches = _requests(1, n=10)
        merged = HoneypotSketch.merge_all(
            [_honeypot_summary(batches[:5]), _honeypot_summary(batches[5:])]
        )
        assert merged.events() == _honeypot_summary(batches).events()

    def test_empty_honeypot_shard_is_identity(self):
        merged = HoneypotSketch.merge_all(
            [_honeypot_summary([]), _honeypot_summary(_requests(3))]
        )
        assert merged.events() == _honeypot_summary(_requests(3)).events()

    def test_honeypot_protocol_mismatch_rejected(self):
        ntp = _honeypot_summary(_requests(1, protocol="NTP"))
        dns = _honeypot_summary(_requests(1, protocol="DNS"))
        with pytest.raises(ValueError):
            ntp.merge(dns)

    def test_telescope_proto_split_prefers_majority(self):
        batches = [packet(10.0 * i, src=5, proto=PROTO_ICMP) for i in range(20)]
        batches += [
            packet(200.0 + 10.0 * i, src=5, proto=PROTO_TCP)
            for i in range(10)
        ]
        events = _telescope_summary(batches).events()
        assert len(events) == 1
        assert events[0].ip_proto == PROTO_ICMP


# -- sharded == serial over real scenario captures ----------------------------


class TestShardIdentity:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_telescope_sharded_equals_serial(
        self, small_config, sim, n_shards
    ):
        capture = telescope_capture(small_config, sim.ground_truth)
        serial = merge_telescope_shards(
            [detect_telescope_shard(small_config, capture, 0, 1, "sketch")]
        )
        sharded = merge_telescope_shards(
            [
                detect_telescope_shard(
                    small_config, capture, shard, n_shards, "sketch"
                )
                for shard in range(n_shards)
            ]
        )
        assert sharded == serial

    @pytest.mark.parametrize("n_shards", [3])
    def test_honeypot_sharded_equals_serial(
        self, small_config, sim, n_shards
    ):
        request_log = honeypot_capture(small_config, sim.ground_truth)
        serial = merge_honeypot_shards(
            [detect_honeypot_shard(small_config, request_log, 0, 1, "sketch")]
        )
        sharded = merge_honeypot_shards(
            [
                detect_honeypot_shard(
                    small_config, request_log, shard, n_shards, "sketch"
                )
                for shard in range(n_shards)
            ]
        )
        assert sharded == serial

    def test_telescope_sketch_recall_vs_exact(self, small_config, sim):
        capture = telescope_capture(small_config, sim.ground_truth)
        columns = PacketColumns.from_batches(capture)
        rsdos = small_config.rsdos_config()
        exact = detect_telescope_columns(rsdos, columns)
        summary = detect_telescope_sketch(
            rsdos, columns, sketch_config=small_config.sketch_config()
        )
        exact_victims = {event.victim for event in exact}
        sketch_victims = {event.victim for event in summary.events()}
        assert exact_victims <= sketch_victims

    def test_honeypot_sketch_recall_vs_exact(self, small_config, sim):
        request_log = honeypot_capture(small_config, sim.ground_truth)
        columns = RequestColumns.from_batches(request_log)
        detection = small_config.honeypot_detection_config()
        exact = detect_honeypot_columns(detection, columns)
        summary = detect_honeypot_sketch(
            detection, columns, sketch_config=small_config.sketch_config()
        )
        exact_pairs = {(e.victim, e.protocol) for e in exact}
        sketch_pairs = {(e.victim, e.protocol) for e in summary.events()}
        assert exact_pairs <= sketch_pairs


# -- tier dispatch ------------------------------------------------------------


class TestTierDispatch:
    def test_tiers_registry(self):
        assert DETECT_TIERS == ("exact", "columnar", "sketch")

    def test_resolve_auto_follows_codec(self):
        assert resolve_detect_tier(None, "object") == "exact"
        assert resolve_detect_tier(None, "columnar") == "columnar"
        assert resolve_detect_tier("auto", "columnar") == "columnar"
        for tier in DETECT_TIERS:
            assert resolve_detect_tier(tier, "object") == tier

    def test_resolve_rejects_unknown_sorted(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_detect_tier("bogus")
        message = str(excinfo.value)
        assert "bogus" in message
        assert "columnar, exact, sketch" in message

    def test_observe_telescope_tiers_agree(self, small_config, sim):
        exact = observe_telescope(
            small_config, sim.ground_truth, detect_tier="exact"
        )
        columnar = observe_telescope(
            small_config, sim.ground_truth, codec="columnar",
            detect_tier="columnar",
        )
        assert columnar == exact
        sketch = observe_telescope(
            small_config, sim.ground_truth, codec="columnar",
            detect_tier="sketch",
        )
        assert {e.victim for e in exact} <= {e.victim for e in sketch}

    def test_observe_honeypots_sketch_tier(self, small_config, sim):
        exact = observe_honeypots(
            small_config, sim.ground_truth, detect_tier="exact"
        )
        sketch = observe_honeypots(
            small_config, sim.ground_truth, codec="columnar",
            detect_tier="sketch",
        )
        exact_pairs = {(e.victim, e.protocol) for e in exact}
        sketch_pairs = {(e.victim, e.protocol) for e in sketch}
        assert exact_pairs <= sketch_pairs

    def test_runner_rejects_unknown_tier(self, tmp_path, small_config):
        from repro.pipeline.runner import ResilientPipeline

        with pytest.raises(ValueError) as excinfo:
            ResilientPipeline(
                small_config, tmp_path, detect_tier="bogus"
            )
        assert "columnar, exact, sketch" in str(excinfo.value)
