"""Property-style crash-recovery drill for the live service.

The contract under test: *snapshot + WAL replay reproduces the exact
fused state* — the recovered store's digest equals the digest an
uninterrupted process would have reached — across randomized kill
points, batch sizes, event orderings and snapshot cadences (seeded, so
a failure reproduces). Plus the named edge paths: empty WAL, and a
corrupted newest snapshot falling back to an older one.

The kill is :meth:`LiveIngestService.stop`: a hard stop with no drain
and no final snapshot, so recovery must work from whatever the WAL and
rolling snapshots happened to capture — the in-process equivalent of
``kill -9`` (the subprocess version of the same drill runs in the serve
chaos scenarios and CI).
"""

import random

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.service import LiveIngestService, ServeConfig
from repro.serve.snapshot import snapshot_stage_name
from repro.serve.state import LiveFusedStore
from repro.serve.wal import KIND_ATTACK, KIND_DPS
from repro.store.checkpoint import CheckpointStore


def make_stream(rng: random.Random, count: int = 80):
    """A shuffled single-day stream of (kind, record) ingest items.

    Single-day because intra-day disorder is within the fusion's
    tolerance: any ordering of these records is applied in full, so the
    reference digest is well-defined for every shuffle.
    """
    items = []
    for i in range(count):
        if rng.random() < 0.2:
            items.append(
                (
                    KIND_DPS,
                    {
                        "domain": f"site-{rng.randrange(10)}.example",
                        "provider": f"dps-{rng.randrange(3)}",
                        "day": 0,
                        "active": rng.random() < 0.8,
                    },
                )
            )
        else:
            start = rng.uniform(0.0, 80000.0)
            items.append(
                (
                    KIND_ATTACK,
                    {
                        "source": rng.choice(["telescope", "honeypot"]),
                        "target": (10 << 24) + rng.randrange(512),
                        "start_ts": start,
                        "end_ts": start + rng.uniform(1.0, 600.0),
                        "intensity": rng.uniform(1.0, 500.0),
                    },
                )
            )
    return items


def reference_digest(items) -> str:
    """Digest of an uninterrupted apply of *items* in order."""
    store = LiveFusedStore(metrics=MetricsRegistry())
    for kind, record in items:
        if kind == KIND_ATTACK:
            store.apply_attack(record)
        else:
            store.apply_dps(record)
    return store.state_digest()


def service_at(data_dir, snapshot_every) -> LiveIngestService:
    return LiveIngestService(
        ServeConfig(
            data_dir=data_dir,
            snapshot_every_events=snapshot_every,
            queue_size=4096,  # no shedding: every record must survive
        ),
        metrics=MetricsRegistry(),
    )


def feed_for(kind: str, record: dict) -> str:
    return record.get("source", "telescope") if kind == KIND_ATTACK else "dps"


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_randomized_kill_points_recover_exactly(tmp_path, seed):
    rng = random.Random(seed)
    items = make_stream(rng)
    expected = reference_digest(items)
    data_dir = tmp_path / "serve"
    snapshot_every = rng.choice([3, 7, 13, 50])

    # Split the stream at 1-3 random kill points; each segment is fed by
    # a fresh process recovering from the previous one's remains.
    cuts = sorted(rng.sample(range(1, len(items)), rng.randint(1, 3)))
    segments, prev = [], 0
    for cut in cuts + [len(items)]:
        segments.append(items[prev:cut])
        prev = cut

    for index, segment in enumerate(segments):
        service = service_at(data_dir, snapshot_every)
        service.start()
        position = 0
        while position < len(segment):
            size = rng.randint(1, 9)
            batch = segment[position:position + size]
            position += size
            for kind, record in batch:
                result = service.submit(feed_for(kind, record), kind, [record])
                assert result.accepted == 1, result.to_dict()
        last = index == len(segments) - 1
        if last:
            assert service.quiesce(timeout=30)
            # kill -9 right after the applier caught up: nothing may be
            # lost even though no final snapshot was taken.
            service.stop()
        else:
            # kill -9 mid-apply: whatever was queued but unapplied must
            # come back from the WAL.
            service.stop()

    recovered = service_at(data_dir, snapshot_every)
    recovered.start()
    try:
        assert recovered.quiesce(timeout=30)
        assert recovered.store.state_digest() == expected
    finally:
        recovered.stop()


def test_empty_wal_recovers_from_snapshot_alone(tmp_path):
    rng = random.Random(99)
    items = make_stream(rng, count=30)
    expected = reference_digest(items)
    data_dir = tmp_path / "serve"
    service = service_at(data_dir, snapshot_every=5)
    service.start()
    for kind, record in items:
        service.submit(feed_for(kind, record), kind, [record])
    assert service.quiesce(timeout=30)
    # Graceful drain: final snapshot covers everything, WAL tail empty.
    assert service.drain(timeout=30)

    recovered = service_at(data_dir, snapshot_every=5)
    info = recovered.start()
    try:
        assert info.replayed == 0
        assert not info.fresh_start
        assert recovered.store.state_digest() == expected
    finally:
        recovered.stop()


def test_corrupt_newest_snapshot_falls_back_to_older(tmp_path):
    rng = random.Random(7)
    items = make_stream(rng, count=60)
    expected = reference_digest(items)
    data_dir = tmp_path / "serve"
    # Small apply batches force the snapshot cadence to actually fire
    # mid-stream (one big batch would collapse it into one snapshot).
    service = LiveIngestService(
        ServeConfig(
            data_dir=data_dir,
            snapshot_every_events=10,
            apply_batch=5,
            queue_size=4096,
        ),
        metrics=MetricsRegistry(),
    )
    service.start()
    for kind, record in items:
        service.submit(feed_for(kind, record), kind, [record])
    assert service.quiesce(timeout=30)
    service.stop()

    store = CheckpointStore(data_dir)
    seqs = service.snapshots.seqs()
    assert len(seqs) >= 2, "drill needs at least two rolling snapshots"
    payload = store.payload_path(snapshot_stage_name(seqs[-1]))
    payload.write_bytes(b"\x00garbage\x00" + payload.read_bytes())

    recovered = service_at(data_dir, snapshot_every=10)
    info = recovered.start()
    try:
        assert info.discarded_snapshots == 1
        assert info.snapshot_seq == seqs[-2]
        # Falling back costs a longer replay, never correctness: the WAL
        # still covers the span between the older snapshot and the kill.
        assert info.replayed > 0
        assert recovered.quiesce(timeout=30)
        assert recovered.store.state_digest() == expected
    finally:
        recovered.stop()


def test_corrupt_newest_two_snapshots_fall_back_to_third(tmp_path):
    """Snapshot fallback is a chain, not a single step: with three
    rolling snapshots retained and the newest two corrupted, recovery
    must land on the third and replay the longer WAL tail exactly."""
    rng = random.Random(17)
    items = make_stream(rng, count=90)
    expected = reference_digest(items)
    data_dir = tmp_path / "serve"
    config = ServeConfig(
        data_dir=data_dir,
        snapshot_every_events=10,
        snapshot_keep=4,
        apply_batch=5,
        queue_size=4096,
        wal_keep_all=True,  # pruning follows the oldest snapshot; keep
                            # the full log so a deep fallback can replay
    )
    service = LiveIngestService(config, metrics=MetricsRegistry())
    service.start()
    for kind, record in items:
        service.submit(feed_for(kind, record), kind, [record])
    assert service.quiesce(timeout=30)
    service.stop()

    store = CheckpointStore(data_dir)
    seqs = service.snapshots.seqs()
    assert len(seqs) >= 3, "drill needs at least three rolling snapshots"
    for seq in seqs[-2:]:
        payload = store.payload_path(snapshot_stage_name(seq))
        payload.write_bytes(b"\x00garbage\x00" + payload.read_bytes())

    recovered = LiveIngestService(config, metrics=MetricsRegistry())
    info = recovered.start()
    try:
        assert info.discarded_snapshots == 2
        assert info.snapshot_seq == seqs[-3]
        assert info.replayed > 0
        assert recovered.quiesce(timeout=30)
        assert recovered.store.state_digest() == expected
    finally:
        recovered.stop()


def test_every_snapshot_corrupt_replays_wal_from_seq_zero(tmp_path):
    """The last rung of the fallback ladder: every snapshot is garbage,
    but with the full WAL retained recovery rebuilds from sequence 1."""
    rng = random.Random(23)
    items = make_stream(rng, count=60)
    expected = reference_digest(items)
    data_dir = tmp_path / "serve"
    config = ServeConfig(
        data_dir=data_dir,
        snapshot_every_events=10,
        snapshot_keep=4,
        apply_batch=5,
        queue_size=4096,
        wal_keep_all=True,
    )
    service = LiveIngestService(config, metrics=MetricsRegistry())
    service.start()
    for kind, record in items:
        service.submit(feed_for(kind, record), kind, [record])
    assert service.quiesce(timeout=30)
    service.stop()

    store = CheckpointStore(data_dir)
    seqs = service.snapshots.seqs()
    assert seqs, "drill needs snapshots to corrupt"
    for seq in seqs:
        payload = store.payload_path(snapshot_stage_name(seq))
        payload.write_bytes(b"\x00garbage\x00" + payload.read_bytes())

    recovered = LiveIngestService(config, metrics=MetricsRegistry())
    info = recovered.start()
    try:
        assert info.discarded_snapshots == len(seqs)
        assert info.snapshot_seq == 0
        assert info.replayed == len(items)
        assert recovered.store.state_digest() == expected
    finally:
        recovered.stop()


def test_duplicate_wal_seqs_dedupe_and_are_counted(tmp_path):
    """A follower that re-appends a batch after a failed commit leaves
    duplicate sequence numbers in its WAL; replay must apply each seq
    once and surface the count in RecoveryInfo.replay_duplicates."""
    rng = random.Random(31)
    items = make_stream(rng, count=20)
    expected = reference_digest(items)
    data_dir = tmp_path / "serve"
    service = service_at(data_dir, snapshot_every=1000)  # WAL-only
    service.start()
    for kind, record in items:
        assert service.submit(feed_for(kind, record), kind, [record]).accepted
    assert service.quiesce(timeout=30)
    service.stop()

    segments = sorted((data_dir / "wal").glob("wal-*.jsonl"))
    lines = segments[-1].read_text(encoding="utf-8").splitlines(keepends=True)
    assert len(lines) >= 4
    # Re-append the last three committed lines verbatim — the torn-retry
    # shape: same seqs, same payloads, appended again.
    with open(segments[-1], "a", encoding="utf-8") as handle:
        handle.writelines(lines[-3:])

    recovered = service_at(data_dir, snapshot_every=1000)
    info = recovered.start()
    try:
        assert info.replay_duplicates == 3
        assert info.replayed == len(items)
        assert recovered.store.state_digest() == expected
    finally:
        recovered.stop()


def test_all_snapshots_corrupt_recovers_from_wal_alone(tmp_path):
    rng = random.Random(11)
    items = make_stream(rng, count=30)
    expected = reference_digest(items)
    data_dir = tmp_path / "serve"
    service = service_at(data_dir, snapshot_every=100)  # never snapshots
    service.start()
    for kind, record in items:
        service.submit(feed_for(kind, record), kind, [record])
    assert service.quiesce(timeout=30)
    service.stop()

    recovered = service_at(data_dir, snapshot_every=100)
    info = recovered.start()
    try:
        assert info.fresh_start
        assert info.replayed == len(items)
        assert recovered.store.state_digest() == expected
    finally:
        recovered.stop()


def test_torn_tail_survives_second_crash(tmp_path):
    """Crash mid-append, recover, ingest more, crash again: the records
    acknowledged after the first recovery must replay — continuing the
    tail segment may not concatenate onto the torn line (the
    double-crash hazard repair_tail exists for)."""
    rng = random.Random(21)
    items = make_stream(rng, count=40)
    first, second = items[:20], items[20:]
    expected = reference_digest(items)
    data_dir = tmp_path / "serve"

    service = service_at(data_dir, snapshot_every=1000)  # WAL-only
    service.start()
    for kind, record in first:
        assert service.submit(feed_for(kind, record), kind, [record]).accepted
    assert service.quiesce(timeout=30)
    service.stop()

    # Simulate kill -9 mid-append: a torn, unacknowledged final line.
    segments = sorted((data_dir / "wal").glob("wal-*.jsonl"))
    with open(segments[-1], "a", encoding="utf-8") as handle:
        handle.write('{"seq": 9999, "kind": "att')

    middle = service_at(data_dir, snapshot_every=1000)
    info = middle.start()
    assert info.tail_trimmed_bytes > 0
    for kind, record in second:
        assert middle.submit(feed_for(kind, record), kind, [record]).accepted
    assert middle.quiesce(timeout=30)
    live_digest = middle.store.state_digest()
    assert live_digest == expected
    middle.stop()  # second hard kill

    recovered = service_at(data_dir, snapshot_every=1000)
    recovered.start()
    try:
        assert recovered.quiesce(timeout=30)
        assert recovered.store.state_digest() == expected
    finally:
        recovered.stop()


def test_shed_tombstones_keep_recovery_equivalent(tmp_path):
    """Drop-oldest sheds must be replayed as drops, not as applies."""
    data_dir = tmp_path / "serve"
    service = LiveIngestService(
        ServeConfig(
            data_dir=data_dir,
            queue_size=8,
            high_watermark=7,
            low_watermark=2,
            snapshot_every_events=1000,
            apply_delay=0.02,
        ),
        metrics=MetricsRegistry(),
    )
    service.start()
    dropped_total = 0
    for i in range(6):
        batch = [
            {
                "source": "telescope",
                "target": (10 << 24) + i * 6 + j,
                "start_ts": float(i * 6 + j),
                "end_ts": float(i * 6 + j) + 30.0,
                "intensity": 10.0,
            }
            for j in range(6)
        ]
        service.submit("telescope", KIND_ATTACK, batch)
    assert service.quiesce(timeout=30)
    dropped_total = sum(service.dropped_by_feed.values())
    assert dropped_total > 0, "drill must actually shed"
    live_digest = service.store.state_digest()
    service.stop()  # hard kill: recovery sees WAL with tombstones

    recovered = LiveIngestService(
        ServeConfig(data_dir=data_dir), metrics=MetricsRegistry()
    )
    recovered.start()
    try:
        assert recovered.store.state_digest() == live_digest
    finally:
        recovered.stop()
