"""Unit tests for at-rest file corruption injectors (repro.faults.fileio).

Each injector must be (a) deterministic from its seed, and (b) produce
damage the validation/quarantine layer classifies correctly — that is
what these faults exist to exercise.
"""

import json

import pytest

from repro.core.events import AttackEvent, SOURCE_HONEYPOT, SOURCE_TELESCOPE
from repro.faults.fileio import (
    drift_schema,
    duplicate_records,
    flip_bits,
    truncate_file,
)
from repro.pipeline.datasets import (
    REASON_DUPLICATE,
    read_events_jsonl,
    save_events_jsonl,
)


def make_events(n=40):
    out = []
    for i in range(n):
        source = SOURCE_TELESCOPE if i % 2 else SOURCE_HONEYPOT
        out.append(
            AttackEvent(
                source, 1000 + i, float(i * 100), float(i * 100 + 50),
                1.0 + i,
                reflector_protocol=None if i % 2 else "NTP",
            )
        )
    return out


@pytest.fixture
def feed(tmp_path):
    path = tmp_path / "feed.jsonl"
    save_events_jsonl(make_events(), path)
    return path


class TestDeterminism:
    def test_flip_bits_same_seed_same_damage(self, tmp_path, feed):
        copy = tmp_path / "copy.jsonl"
        copy.write_bytes(feed.read_bytes())
        offsets_a = flip_bits(feed, seed=9, n_flips=5)
        offsets_b = flip_bits(copy, seed=9, n_flips=5)
        assert offsets_a == offsets_b
        assert feed.read_bytes() == copy.read_bytes()

    def test_drift_and_duplicate_deterministic(self, tmp_path, feed):
        copy = tmp_path / "copy.jsonl"
        copy.write_bytes(feed.read_bytes())
        assert drift_schema(feed, seed=3) == drift_schema(copy, seed=3)
        assert duplicate_records(feed, seed=4) == duplicate_records(
            copy, seed=4
        )
        assert feed.read_text() == copy.read_text()


class TestTruncation:
    def test_cuts_bytes_and_loader_survives(self, feed):
        before = feed.stat().st_size
        cut = truncate_file(feed, keep_fraction=0.75)
        assert cut == before - feed.stat().st_size
        loaded, report = read_events_jsonl(feed)
        assert len(loaded) < 40
        assert len(loaded) >= 25
        # The cut usually lands mid-record; strictness about the exact
        # count would test the byte math, not the tolerance.
        assert report.rejected <= 1

    def test_validates_fraction(self, feed):
        with pytest.raises(ValueError):
            truncate_file(feed, keep_fraction=1.5)


class TestBitFlips:
    def test_flipped_feed_loads_with_quarantine_never_crashes(self, feed):
        flip_bits(feed, seed=11, n_flips=12)
        loaded, report = read_events_jsonl(feed)
        # Every record is either loaded intact or quarantined with a
        # reason; nothing is silently dropped and nothing raises.
        assert len(loaded) + report.rejected >= 38
        assert len(loaded) < 40 or report.rejected > 0

    def test_rejects_empty_file(self, tmp_path):
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        with pytest.raises(ValueError):
            flip_bits(empty, seed=1)


class TestSchemaDrift:
    def test_drifted_records_quarantined_with_reason(self, feed):
        drifted = drift_schema(feed, seed=5, fraction=0.3, field="target")
        assert drifted > 0
        loaded, report = read_events_jsonl(feed)
        assert len(loaded) == 40 - drifted
        assert report.reason_counts() == {"missing-field:target": drifted}

    def test_drop_without_rename(self, feed):
        drifted = drift_schema(
            feed, seed=5, fraction=1.0, field="intensity", rename_to=None
        )
        assert drifted == 40
        for line in feed.read_text().splitlines():
            assert "intensity" not in json.loads(line)


class TestDuplicateRecords:
    def test_duplicates_quarantined(self, feed):
        appended = duplicate_records(feed, seed=6, fraction=0.25)
        assert appended > 0
        loaded, report = read_events_jsonl(feed)
        assert len(loaded) == 40
        assert report.reason_counts() == {REASON_DUPLICATE: appended}

    def test_zero_fraction_noop(self, feed):
        before = feed.read_text()
        assert duplicate_records(feed, seed=6, fraction=0.0) == 0
        assert feed.read_text() == before
