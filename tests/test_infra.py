"""Unit tests for the mail/DNS infrastructure impact analyses."""

import pytest

from repro.core.events import AttackEvent, SOURCE_TELESCOPE
from repro.core.infra import (
    build_infra_index,
    dns_impact,
    infrastructure_impact,
    mail_impact,
    shared_fate_domains,
)
from repro.core.webmap import WebHostingIndex

DAY = 86400.0

MAIL_IP = 1000
NS_IP = 2000
WEB_IP = 3000


def event(target, day=0):
    start = day * DAY + 10.0
    return AttackEvent(SOURCE_TELESCOPE, target, start, start + 60.0, 1.0)


MAIL_INTERVALS = [
    ("a.com", MAIL_IP, 0, 30),
    ("b.com", MAIL_IP, 0, 30),
    ("c.com", 1001, 0, 30),
]

NS_INTERVALS = [
    ("a.com", NS_IP, 0, 30),
    ("b.com", 2001, 0, 30),
]

WEB_INTERVALS = [
    ("www.a.com", WEB_IP, 0, 30),
    ("www.b.com", WEB_IP, 0, 30),
]


class TestImpact:
    def test_mail_impact(self):
        impact = mail_impact([event(MAIL_IP)], MAIL_INTERVALS)
        assert impact.label == "mail"
        assert impact.attacked_infrastructure_ips == 1
        assert impact.affected_domains == 2  # a.com and b.com share the MX
        assert impact.total_domains == 3
        assert impact.affected_fraction == pytest.approx(2 / 3)

    def test_dns_impact(self):
        impact = dns_impact([event(NS_IP)], NS_INTERVALS)
        assert impact.affected_domains == 1
        assert impact.total_domains == 2

    def test_no_impact_when_target_not_infrastructure(self):
        impact = mail_impact([event(9999)], MAIL_INTERVALS)
        assert impact.affected_domains == 0
        assert impact.events_with_impact == 0

    def test_attack_outside_interval_no_impact(self):
        impact = mail_impact([event(MAIL_IP, day=40)], MAIL_INTERVALS)
        assert impact.affected_domains == 0

    def test_events_with_impact_counts_events(self):
        impact = mail_impact(
            [event(MAIL_IP, 0), event(MAIL_IP, 1), event(9999, 2)],
            MAIL_INTERVALS,
        )
        assert impact.events_with_impact == 2

    def test_empty_intervals(self):
        impact = infrastructure_impact([event(1)], [], "empty")
        assert impact.total_domains == 0
        assert impact.affected_fraction == 0.0


class TestSharedFate:
    def test_split_by_exposure(self):
        web_index = WebHostingIndex(
            [(d, ip, s, e) for d, ip, s, e in WEB_INTERVALS]
        )
        events = [event(WEB_IP), event(NS_IP)]
        fate = shared_fate_domains(events, web_index, NS_INTERVALS)
        # a.com: web (shared IP) and dns (its NS was hit) -> both.
        # b.com: web only (its NS 2001 was not attacked).
        assert fate["both"] == {"a.com"}
        assert fate["web"] == {"b.com"}
        assert fate["dns"] == set()

    def test_dns_only_exposure(self):
        web_index = WebHostingIndex(WEB_INTERVALS)
        fate = shared_fate_domains([event(NS_IP)], web_index, NS_INTERVALS)
        assert fate["dns"] == {"a.com"}
        assert fate["web"] == set()
        assert fate["both"] == set()


class TestEndToEnd:
    def test_pipeline_produces_infra_intervals(self, sim):
        assert sim.openintel.mail_intervals
        assert sim.openintel.ns_intervals
        assert len(sim.ns_directory) > 0

    def test_ns_intervals_resolve_through_directory(self, sim):
        addresses = set(sim.ns_directory.addresses())
        sampled = sim.openintel.ns_intervals[:200]
        assert all(ip in addresses for _, ip, _, _ in sampled)

    def test_mail_impact_on_simulation(self, sim):
        impact = mail_impact(
            sim.fused.combined.events, sim.openintel.mail_intervals
        )
        # Mail infrastructure is attacked (GoDaddy-style MX clusters).
        assert impact.attacked_infrastructure_ips > 0
        assert 0 < impact.affected_domains <= impact.total_domains

    def test_dns_impact_on_simulation(self, sim):
        impact = dns_impact(
            sim.fused.combined.events, sim.openintel.ns_intervals
        )
        assert impact.attacked_infrastructure_ips > 0
        # A single NS pair serves many domains: impact amplifies.
        assert impact.affected_domains > impact.attacked_infrastructure_ips
