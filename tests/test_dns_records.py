"""Unit tests for resource records and domain timelines."""

import pytest

from repro.dns.records import (
    DomainTimeline,
    HostingState,
    ResourceRecord,
    RRTYPE_A,
    RRTYPE_CNAME,
)


def domain(name="site-000001.com", tld="com", registered=0, www=True):
    return DomainTimeline(
        name=name, tld=tld, registered_day=registered, has_www=www
    )


def state(ip=100, **kwargs):
    return HostingState(ip=ip, **kwargs)


class TestResourceRecord:
    def test_a_record_requires_address(self):
        with pytest.raises(ValueError):
            ResourceRecord("www.example.com", RRTYPE_A, "1.2.3.4")

    def test_a_record_with_address(self):
        record = ResourceRecord("www.example.com", RRTYPE_A, "1.2.3.4",
                                address=0x01020304)
        assert record.address == 0x01020304

    def test_cname_record(self):
        record = ResourceRecord("www.example.com", RRTYPE_CNAME, "edge.example")
        assert record.address is None


class TestDomainTimeline:
    def test_name_must_match_tld(self):
        with pytest.raises(ValueError):
            domain(name="site.com", tld="org")

    def test_www_name(self):
        assert domain().www_name == "www.site-000001.com"

    def test_state_before_registration_is_none(self):
        d = domain(registered=10)
        d.set_state(10, state())
        assert d.state_on(5) is None
        assert d.state_on(10) is not None

    def test_state_lookup_piecewise(self):
        d = domain()
        d.set_state(0, state(ip=1))
        d.set_state(20, state(ip=2))
        assert d.ip_on(0) == 1
        assert d.ip_on(19) == 1
        assert d.ip_on(20) == 2
        assert d.ip_on(100) == 2

    def test_set_state_same_day_replaces(self):
        d = domain()
        d.set_state(0, state(ip=1))
        d.set_state(0, state(ip=9))
        assert d.ip_on(0) == 9
        assert len(d.change_days()) == 1

    def test_set_state_truncates_future_changes(self):
        d = domain()
        d.set_state(0, state(ip=1))
        d.set_state(30, state(ip=2))
        d.set_state(10, state(ip=3))
        assert d.ip_on(40) == 3
        assert d.change_days() == (0, 10)

    def test_exists_on(self):
        d = domain(registered=7)
        assert not d.exists_on(6)
        assert d.exists_on(7)


class TestHostingIntervals:
    def test_single_segment(self):
        d = domain()
        d.set_state(0, state(ip=5))
        assert d.hosting_intervals(100) == [(0, 100, 5)]

    def test_multiple_segments(self):
        d = domain()
        d.set_state(0, state(ip=5))
        d.set_state(40, state(ip=6))
        assert d.hosting_intervals(100) == [(0, 40, 5), (40, 100, 6)]

    def test_registration_clips_start(self):
        d = domain(registered=10)
        d.set_state(10, state(ip=5))
        assert d.hosting_intervals(100) == [(10, 100, 5)]

    def test_no_www_no_intervals(self):
        d = domain(www=False)
        d.set_state(0, state())
        assert d.hosting_intervals(100) == []

    def test_window_clips_end(self):
        d = domain()
        d.set_state(0, state(ip=5))
        d.set_state(200, state(ip=6))
        assert d.hosting_intervals(100) == [(0, 100, 5)]


class TestFirstDPSDay:
    def test_no_protection(self):
        d = domain()
        d.set_state(0, state())
        assert d.first_dps_day(100) is None

    def test_migration_day_reported(self):
        d = domain()
        d.set_state(0, state())
        d.set_state(33, state(ip=7, dps_provider="CloudFlare"))
        assert d.first_dps_day(100) == 33

    def test_preexisting_reports_registration_day(self):
        d = domain(registered=5)
        d.set_state(5, state(dps_provider="Akamai"))
        assert d.first_dps_day(100) == 5

    def test_protection_outside_window_ignored(self):
        d = domain()
        d.set_state(0, state())
        d.set_state(150, state(dps_provider="Akamai"))
        assert d.first_dps_day(100) is None
