"""Unit tests for the migration correlation analysis."""

import pytest

from repro.core.events import AttackEvent, SOURCE_HONEYPOT, SOURCE_TELESCOPE
from repro.core.intensity import IntensityModel
from repro.core.migration import MigrationAnalysis
from repro.core.webmap import SiteAttackHistory

DAY = 86400.0


def tel(day, intensity):
    start = day * DAY
    return AttackEvent(SOURCE_TELESCOPE, 1, start, start + 600.0, intensity)


def hp(day, intensity=10.0, duration=600.0):
    start = day * DAY
    return AttackEvent(
        SOURCE_HONEYPOT, 1, start, start + duration, intensity,
        reflector_protocol="NTP",
    )


def history(domain, events):
    h = SiteAttackHistory(domain)
    h.events = list(events)
    return h


@pytest.fixture
def analysis():
    histories = {
        # migrates on day 12, trigger = intense attack on day 10
        "www.fast.com": history("www.fast.com", [tel(2, 1.0), tel(10, 500.0)]),
        # migrates on day 40, low intensity, many attacks
        "www.slow.com": history(
            "www.slow.com", [tel(d, 2.0) for d in range(1, 9)]
        ),
        # never migrates, many attacks
        "www.stay.com": history(
            "www.stay.com", [tel(d, 2.0) for d in range(1, 12)]
        ),
        # long honeypot attack then migration
        "www.long.com": history(
            "www.long.com", [hp(5, duration=5 * 3600.0)]
        ),
    }
    all_events = [e for h in histories.values() for e in h.events]
    model = IntensityModel(all_events)
    dps = {"www.fast.com": 12, "www.slow.com": 40, "www.long.com": 7}
    return MigrationAnalysis(histories, dps, model)


class TestObservations:
    def test_only_migrating_sites_with_prior_attacks(self, analysis):
        domains = {o.domain for o in analysis.observations}
        assert domains == {"www.fast.com", "www.slow.com", "www.long.com"}

    def test_trigger_is_highest_intensity_prior_attack(self, analysis):
        fast = next(o for o in analysis.observations if o.domain == "www.fast.com")
        assert fast.trigger_day == 10
        assert fast.days_to_migration == 2

    def test_protected_before_attacks_skipped(self):
        histories = {"www.pre.com": history("www.pre.com", [tel(20, 1.0)])}
        model = IntensityModel(histories["www.pre.com"].events)
        analysis = MigrationAnalysis(histories, {"www.pre.com": 5}, model)
        assert analysis.observations == []


class TestFigure9:
    def test_frequency_cdfs(self, analysis):
        all_cdf = analysis.attack_frequency_cdf_all()
        migrating_cdf = analysis.attack_frequency_cdf_migrating()
        assert len(all_cdf) == 4
        assert len(migrating_cdf) == 3

    def test_repetition_effect(self, analysis):
        all_over, migrating_over = analysis.repetition_effect(threshold=5)
        # stay.com (11 attacks) and slow.com (8) exceed 5 among all;
        # only slow.com does among migrating.
        assert all_over == pytest.approx(2 / 4)
        assert migrating_over == pytest.approx(1 / 3)


class TestFigure10:
    def test_delay_cdf_all(self, analysis):
        cdf = analysis.delay_cdf()
        assert len(cdf) == 3
        assert cdf.fraction_at_or_below(2) >= 1 / 3

    def test_top_intensity_migrates_faster(self, analysis):
        # Classes slice the site-level (Table 9) intensity distribution;
        # the top quarter isolates the intensely-attacked fast migrant.
        top = analysis.delay_cdf(top_fraction=0.25)
        assert top.fraction_at_or_below(2) >= analysis.delay_cdf().fraction_at_or_below(2)

    def test_migration_within(self, analysis):
        assert analysis.migration_within(100) == 1.0

    def test_empty_raises(self):
        histories = {"www.x.com": history("www.x.com", [tel(1, 1.0)])}
        model = IntensityModel(histories["www.x.com"].events)
        analysis = MigrationAnalysis(histories, {}, model)
        with pytest.raises(ValueError):
            analysis.delay_cdf()


class TestFigure11:
    def test_long_attack_delays(self, analysis):
        cdf = analysis.delay_cdf_long_attacks(min_duration=4 * 3600.0)
        assert len(cdf) == 1  # only www.long.com
        assert cdf.fraction_at_or_below(2) == 1.0

    def test_telescope_durations_ignored(self, analysis):
        """Figure 11 uses honeypot durations only; a long telescope event
        does not qualify."""
        histories = {
            "www.t.com": history(
                "www.t.com",
                [AttackEvent(SOURCE_TELESCOPE, 1, 0.0, 6 * 3600.0, 1.0)],
            )
        }
        model = IntensityModel(histories["www.t.com"].events)
        analysis = MigrationAnalysis(histories, {"www.t.com": 3}, model)
        with pytest.raises(ValueError):
            analysis.delay_cdf_long_attacks()
