"""Unit tests for the snapshot resolver."""

import pytest

from repro.dns.records import ResourceRecord, RRTYPE_A, RRTYPE_CNAME
from repro.dns.resolver import ResolutionError, resolve_www


def a(name, address):
    return ResourceRecord(name, RRTYPE_A, str(address), address=address)


def cname(name, value):
    return ResourceRecord(name, RRTYPE_CNAME, value)


class TestResolve:
    def test_direct_a(self):
        address, chain = resolve_www("www.x.com", [a("www.x.com", 5)])
        assert address == 5
        assert chain == []

    def test_single_cname_hop(self):
        records = [cname("www.x.com", "edge.dps.example"),
                   a("edge.dps.example", 9)]
        address, chain = resolve_www("www.x.com", records)
        assert address == 9
        assert chain == ["edge.dps.example"]

    def test_multi_hop_chain(self):
        records = [
            cname("www.x.com", "a.example"),
            cname("a.example", "b.example"),
            a("b.example", 3),
        ]
        address, chain = resolve_www("www.x.com", records)
        assert address == 3
        assert chain == ["a.example", "b.example"]

    def test_dead_end_returns_none(self):
        address, chain = resolve_www(
            "www.x.com", [cname("www.x.com", "gone.example")]
        )
        assert address is None
        assert chain == ["gone.example"]

    def test_missing_name_returns_none(self):
        address, chain = resolve_www("www.x.com", [a("www.y.com", 1)])
        assert address is None

    def test_loop_detected(self):
        records = [
            cname("www.x.com", "a.example"),
            cname("a.example", "www.x.com"),
        ]
        with pytest.raises(ResolutionError):
            resolve_www("www.x.com", records)

    def test_overlong_chain_rejected(self):
        records = [cname(f"n{i}.example", f"n{i + 1}.example") for i in range(20)]
        records.insert(0, cname("www.x.com", "n0.example"))
        with pytest.raises(ResolutionError):
            resolve_www("www.x.com", records)
