"""Unit tests for the darknet capture assembly and noise generation."""

import pytest

from repro.attacks.attacker import ATTACK_DIRECT, GroundTruthAttack
from repro.net.packet import PROTO_TCP
from repro.telescope.backscatter import BackscatterConfig, BackscatterModel
from repro.telescope.darknet import (
    NetworkTelescope,
    NoiseConfig,
    TelescopeNoise,
)
from repro.telescope.rsdos import RSDoSDetector


def attack(target=0x0A000001, rate=200_000.0, duration=600.0):
    return GroundTruthAttack(
        attack_id=1, kind=ATTACK_DIRECT, target=target, start=100.0,
        duration=duration, rate=rate, vector="syn-flood",
        ip_proto=PROTO_TCP, ports=(80,),
    )


class TestNoise:
    def test_noise_volume_scales_with_days(self):
        noise = TelescopeNoise(NoiseConfig(seed=1, scans_per_day=10,
                                           misconfig_per_day=5,
                                           subthreshold_per_day=5))
        one_day = list(noise.generate(1))
        noise2 = TelescopeNoise(NoiseConfig(seed=1, scans_per_day=10,
                                            misconfig_per_day=5,
                                            subthreshold_per_day=5))
        three_days = list(noise2.generate(3))
        assert len(three_days) > len(one_day)

    def test_noise_never_survives_detection(self):
        """The Moore et al. filters must reject all generated noise."""
        noise = TelescopeNoise(NoiseConfig(seed=2))
        batches = sorted(noise.generate(3), key=lambda b: b.timestamp)
        events = list(RSDoSDetector().run(iter(batches)))
        assert events == []


class TestCapture:
    def test_capture_is_time_sorted(self):
        telescope = NetworkTelescope(noise=TelescopeNoise(NoiseConfig(seed=3)))
        batches = telescope.capture([attack()], n_days=1)
        timestamps = [b.timestamp for b in batches]
        assert timestamps == sorted(timestamps)

    def test_attack_detected_through_noise(self):
        telescope = NetworkTelescope(noise=TelescopeNoise(NoiseConfig(seed=4)))
        batches = telescope.capture([attack()], n_days=1)
        events = list(RSDoSDetector().run(iter(batches)))
        assert len(events) == 1
        assert events[0].victim == 0x0A000001

    def test_telescope_fraction_follows_prefix_size(self):
        from repro.net.addressing import Prefix

        telescope = NetworkTelescope(prefix=Prefix.from_string("44.0.0.0/16"))
        assert telescope.backscatter.config.telescope_fraction == pytest.approx(
            1.0 / 65536.0
        )

    def test_no_noise_configured(self):
        telescope = NetworkTelescope(noise=None)
        batches = telescope.capture([attack()], n_days=5)
        assert all(b.src == 0x0A000001 for b in batches)
