"""Unit tests for the IP-to-Web-site index and impact analysis."""

import numpy as np
import pytest

from repro.core.events import AttackEvent, SOURCE_TELESCOPE
from repro.core.webmap import (
    WebHostingIndex,
    WebImpactAnalysis,
    sites_alive_per_day,
)

DAY = 86400.0


def event(target, day):
    start = day * DAY + 100.0
    return AttackEvent(SOURCE_TELESCOPE, target, start, start + 60.0, 1.0)


@pytest.fixture
def index():
    return WebHostingIndex(
        [
            ("www.a.com", 100, 0, 30),
            ("www.b.com", 100, 0, 10),   # moves away on day 10
            ("www.b.com", 200, 10, 30),
            ("www.c.com", 300, 5, 30),
        ]
    )


class TestIndex:
    def test_sites_on(self, index):
        assert set(index.sites_on(100, 0)) == {"www.a.com", "www.b.com"}
        assert set(index.sites_on(100, 15)) == {"www.a.com"}
        assert index.sites_on(200, 15) == ["www.b.com"]

    def test_count_on(self, index):
        assert index.count_on(100, 0) == 2
        assert index.count_on(100, 29) == 1
        assert index.count_on(100, 30) == 0

    def test_unknown_ip(self, index):
        assert index.sites_on(999, 0) == []
        assert index.count_on(999, 0) == 0
        assert not index.hosts_anything(999)

    def test_empty_interval_dropped(self):
        index = WebHostingIndex([("www.x.com", 1, 10, 10)])
        assert index.n_intervals == 0

    def test_before_interval_start(self, index):
        assert index.sites_on(300, 2) == []


class TestAssociation:
    def test_associate_counts(self, index):
        analysis = WebImpactAnalysis(index)
        associations = analysis.associate([event(100, 0), event(100, 15), event(999, 0)])
        assert [a.site_count for a in associations] == [2, 1, 0]

    def test_site_histories(self, index):
        analysis = WebImpactAnalysis(index)
        histories = analysis.site_histories(
            [event(100, 0), event(100, 15), event(300, 6)]
        )
        assert histories["www.a.com"].n_attacks == 2
        assert histories["www.b.com"].n_attacks == 1
        assert histories["www.c.com"].n_attacks == 1
        assert histories["www.a.com"].first_attack_day() == 0

    def test_migrated_site_not_associated_after_move(self, index):
        """Attacks on the old IP after a move no longer touch the site."""
        analysis = WebImpactAnalysis(index)
        histories = analysis.site_histories([event(100, 20)])
        assert "www.b.com" not in histories

    def test_unique_affected_sites(self, index):
        analysis = WebImpactAnalysis(index)
        affected = analysis.unique_affected_sites([event(100, 0), event(300, 6)])
        assert affected == {"www.a.com", "www.b.com", "www.c.com"}


class TestDailyAffected:
    def test_counts_and_fractions(self, index):
        analysis = WebImpactAnalysis(index)
        counts, fractions = analysis.daily_affected(
            [event(100, 0), event(300, 6)],
            n_days=10,
            sites_alive=[4] * 10,
        )
        assert counts[0] == 2
        assert counts[6] == 1
        assert fractions[0] == pytest.approx(0.5)

    def test_without_alive_series(self, index):
        analysis = WebImpactAnalysis(index)
        counts, fractions = analysis.daily_affected([event(100, 0)], n_days=3)
        assert counts[0] == 2
        assert fractions.tolist() == [0.0, 0.0, 0.0]

    def test_length_mismatch_rejected(self, index):
        analysis = WebImpactAnalysis(index)
        with pytest.raises(ValueError):
            analysis.daily_affected([], n_days=3, sites_alive=[1])

    def test_rejects_empty_window(self, index):
        with pytest.raises(ValueError):
            WebImpactAnalysis(index).daily_affected([], n_days=0)


class TestAliveSeries:
    def test_cumulative_first_seen(self):
        alive = sites_alive_per_day({"a": 0, "b": 0, "c": 2}, 4)
        assert alive.tolist() == [2, 2, 3, 3]

    def test_out_of_window_first_seen_ignored(self):
        alive = sites_alive_per_day({"a": 10}, 4)
        assert alive.tolist() == [0, 0, 0, 0]
