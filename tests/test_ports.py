"""Unit tests for target-port analysis."""

import pytest

from repro.core.events import AttackEvent, SOURCE_HONEYPOT, SOURCE_TELESCOPE
from repro.core.ports import (
    port_cardinality,
    service_table,
    web_infrastructure_share,
    web_port_comparison,
)
from repro.net.packet import PROTO_TCP, PROTO_UDP


def tel(ports, proto=PROTO_TCP, intensity=1.0, duration=60.0):
    return AttackEvent(
        SOURCE_TELESCOPE, 1, 0.0, duration, intensity, ip_proto=proto,
        ports=tuple(ports),
    )


class TestCardinality:
    def test_counts(self):
        events = [tel((80,)), tel((80, 443)), tel(()), tel((1, 2, 3))]
        cardinality = port_cardinality(events)
        assert cardinality.single_port == 2  # portless counts as single
        assert cardinality.multi_port == 2
        assert cardinality.single_fraction == 0.5

    def test_honeypot_events_excluded(self):
        hp = AttackEvent(SOURCE_HONEYPOT, 1, 0, 1, 1.0, reflector_protocol="NTP")
        assert port_cardinality([hp]).total == 0


class TestServiceTable:
    def test_top_services_with_other(self):
        events = (
            [tel((80,))] * 5 + [tel((443,))] * 3 + [tel((3306,))] * 2
            + [tel((53,))] + [tel((9999,))]
        )
        table = service_table(events, PROTO_TCP, top_n=2)
        assert table[0].key == "HTTP"
        assert table[0].count == 5
        assert table[1].key == "HTTPS"
        assert table[-1].key == "Other"
        assert table[-1].count == 4
        assert sum(e.share for e in table) == pytest.approx(1.0)

    def test_multi_port_excluded(self):
        events = [tel((80, 443))]
        assert service_table(events, PROTO_TCP) == []

    def test_udp_table_separate(self):
        events = [tel((27015,), proto=PROTO_UDP), tel((80,))]
        udp = service_table(events, PROTO_UDP, top_n=5)
        assert udp[0].key == "27015"
        assert udp[0].count == 1


class TestWebShare:
    def test_share_of_single_port_tcp(self):
        events = [tel((80,)), tel((443,)), tel((22,)), tel((27015,), proto=PROTO_UDP)]
        assert web_infrastructure_share(events) == pytest.approx(2 / 3)

    def test_no_tcp_events(self):
        assert web_infrastructure_share([]) == 0.0


class TestWebPortComparison:
    def test_web_more_intense_and_shorter(self):
        events = (
            [tel((80,), intensity=100.0, duration=100.0)] * 3
            + [tel((22,), intensity=1.0, duration=10_000.0)] * 3
        )
        comparison = web_port_comparison(events)
        assert comparison.web_more_intense
        assert comparison.web_shorter
        assert comparison.mean_intensity_web == pytest.approx(100.0)

    def test_requires_both_populations(self):
        with pytest.raises(ValueError):
            web_port_comparison([tel((22,))])
