"""Tests for the deterministic cluster simulation harness.

Four layers of assurance:

1. The fault primitives behave as documented (SimClock, SimDisk power
   cuts / torn ENOSPC appends, MemorySnapshotStore corruption).
2. Determinism: the same seed produces byte-identical traces, and a
   trace replays to the byte — the property everything else (CI gating,
   shrinking, corpus regression) rests on.
3. The committed regression corpus replays to its recorded outcome, and
   a bounded fresh sweep stays violation-free.
4. Oracle sensitivity: re-introducing a fixed serve-layer bug (the
   fsync barrier before replication_status) makes the digest oracle
   fire again, and the shrinker reduces that failure while preserving
   its signature — the harness is shown to *detect*, not just pass.
"""

import json
from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import wal as walmod
from repro.serve.service import LiveIngestService, ServeConfig
from repro.serve.transport import TransportError
from repro.serve.wal import KIND_ATTACK
from repro.simtest import (
    MemorySnapshotStore,
    SimClock,
    SimDisk,
    SimTransport,
    default_spec,
    run_sim,
    run_trace,
    shrink_trace,
    trace_to_json,
)

CORPUS_DIR = Path(__file__).parent / "simtest_corpus"


# -- fault primitives ----------------------------------------------------------


def test_sim_clock_advances_and_sleeps_without_waiting():
    clock = SimClock()
    assert clock() == 0.0
    clock.advance(1.5)
    clock.sleep(0.25)
    assert clock.now() == pytest.approx(1.75)
    assert clock.slept == pytest.approx(0.25)
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_sim_disk_power_cut_rolls_back_to_fsynced_length():
    disk = SimDisk()
    handle = disk.open_append("wal/seg.jsonl")
    disk.append(handle, b"synced-line\n")
    disk.fsync(handle)
    disk.append(handle, b"unsynced-line\n")
    lost = disk.crash_power(keep_unsynced_fraction=0.0)
    assert disk.read_bytes("wal/seg.jsonl") == b"synced-line\n"
    assert list(lost.values()) == [b"unsynced-line\n"]


def test_sim_disk_partial_power_cut_leaves_torn_tail():
    disk = SimDisk()
    handle = disk.open_append("wal/seg.jsonl")
    disk.append(handle, b"first\n")
    disk.fsync(handle)
    disk.append(handle, b"0123456789")
    disk.crash_power(keep_unsynced_fraction=0.5)
    # Half the unsynced tail survives: a mid-line cut, the torn case.
    assert disk.read_bytes("wal/seg.jsonl") == b"first\n01234"


def test_sim_disk_process_crash_keeps_flushed_bytes():
    disk = SimDisk()
    handle = disk.open_append("wal/seg.jsonl")
    disk.append(handle, b"flushed-but-not-synced\n")
    disk.crash_process()
    assert disk.read_bytes("wal/seg.jsonl") == b"flushed-but-not-synced\n"


def test_sim_disk_enospc_append_raises_and_can_tear():
    disk = SimDisk()
    handle = disk.open_append("wal/seg.jsonl")
    disk.append(handle, b"ok\n")
    disk.set_full(True, partial_next_append=4)
    with pytest.raises(OSError):
        disk.append(handle, b"doomed-record\n")
    # The first failing append landed a 4-byte torn prefix.
    assert disk.read_bytes("wal/seg.jsonl") == b"ok\ndoom"
    disk.set_full(False)
    disk.append(handle, b"after\n")
    assert disk.read_bytes("wal/seg.jsonl").endswith(b"after\n")


def test_memory_snapshot_store_enospc_and_corruption():
    store = MemorySnapshotStore()
    store.save("snap-1", {"seq": 1})
    store.fail_saves = True
    with pytest.raises(OSError):
        store.save("snap-2", {"seq": 2})
    store.fail_saves = False
    store.save("snap-2", {"seq": 2})
    assert store.corrupt_newest(1) == 1
    assert store.load("snap-1") == {"seq": 1}


def test_sim_transport_partitions_and_crashed_nodes():
    clock = SimClock()
    transport = SimTransport(seed=1, clock=clock)
    service_box = {"svc": None}
    transport.register("n0", lambda: service_box["svc"])
    bound = transport.bind("client")
    url = transport.url_of("n0") + "/healthz"
    # Crashed (service None): connection refused.
    with pytest.raises(TransportError):
        bound.exchange("GET", url)
    transport.partition("client", "n0")
    with pytest.raises(TransportError):
        bound.exchange("GET", url)
    transport.heal("client", "n0")
    assert not transport.partitioned("client", "n0")


# -- degraded mode through the simulated disk ----------------------------------


def _manual_service(tmp_path, disk, clock):
    return LiveIngestService(
        ServeConfig(
            data_dir=tmp_path / "node",
            manual_drive=True,
            wal_keep_all=True,
            retry_after=0.2,
            queue_size=64,
        ),
        metrics=MetricsRegistry(),
        clock=clock,
        disk=disk,
        snapshot_store=MemorySnapshotStore(),
        sleep=clock.sleep,
    )


def _attack(n):
    return {
        "source": "telescope",
        "target": (10 << 24) + n,
        "start_ts": float(n),
        "end_ts": float(n) + 30.0,
        "intensity": 50.0,
    }


def test_disk_full_degrades_to_read_only_and_probe_recovers(tmp_path):
    disk, clock = SimDisk(), SimClock()
    service = _manual_service(tmp_path, disk, clock)
    registry = service.metrics
    service.start()
    try:
        assert service.submit("telescope", KIND_ATTACK, [_attack(0)]).accepted
        disk.set_full(True)
        refused = service.submit("telescope", KIND_ATTACK, [_attack(1)])
        assert refused.accepted == 0
        assert refused.http_status() == 503
        assert refused.retry_after is not None
        assert service.degraded
        assert registry.value("serve_degraded") == 1
        assert registry.value("serve_wal_errors_total", op="append") >= 1
        # While degraded and inside the probe window: fast refusal, no
        # further disk traffic.
        fast = service.submit("telescope", KIND_ATTACK, [_attack(2)])
        assert fast.reasons.get("degraded")
        assert fast.http_status() == 503
        # Disk returns; the next submit past the window is the probe.
        disk.set_full(False)
        clock.advance(0.5)
        probe = service.submit("telescope", KIND_ATTACK, [_attack(3)])
        assert probe.accepted == 1
        assert not service.degraded
        assert registry.value("serve_degraded") == 0
        while service.tick_apply():
            pass
        assert service.applied_seq == service._seq
    finally:
        service.stop()


# -- determinism + sweep -------------------------------------------------------


def test_same_seed_produces_byte_identical_traces():
    config = default_spec(nodes=3, steps=30)
    first = trace_to_json(run_sim(5, config))
    second = trace_to_json(run_sim(5, config))
    assert first == second


def test_trace_replay_is_byte_identical():
    config = default_spec(nodes=3, steps=30)
    trace = run_sim(9, config)
    replayed = run_trace(json.loads(trace_to_json(trace)))
    assert trace_to_json(replayed) == trace_to_json(trace)


@pytest.mark.parametrize("seed", range(10))
def test_seed_sweep_passes_oracles(seed):
    trace = run_sim(seed, default_spec(nodes=3, steps=40))
    assert trace["violations"] == [], trace["violations"]


# -- regression corpus ---------------------------------------------------------


def _corpus_traces():
    paths = sorted(CORPUS_DIR.glob("*.json"))
    assert paths, "regression corpus must not be empty"
    return paths


@pytest.mark.parametrize(
    "path", _corpus_traces(), ids=lambda p: p.stem
)
def test_corpus_trace_replays_to_recorded_outcome(path):
    trace = json.loads(path.read_text(encoding="utf-8"))
    result = run_trace(trace)
    assert result["violations"] == trace["violations"], (
        f"{path.name}: replay diverged from recorded outcome "
        f"(a fixed bug has regressed, or the harness changed semantics)"
    )


# -- oracle sensitivity + shrinker ---------------------------------------------


def test_digest_oracle_detects_missing_fsync_barrier(monkeypatch):
    """Re-introduce the primary-rewind bug; the oracle must catch it.

    The fix under guard: replication_status fsyncs before reporting, so
    followers never learn of power-loss-volatile bytes. With flush
    disabled, the corpus seed's schedule forks the follower digests —
    and the shrinker must reduce the failure while keeping its
    signature.
    """
    monkeypatch.setattr(walmod.WriteAheadLog, "flush", lambda self: None)
    config = default_spec(nodes=3, steps=60)
    trace = run_sim(0, config)
    oracles = {v.get("oracle") for v in trace["violations"]}
    assert "digest" in oracles, trace["violations"]
    minimized, runs = shrink_trace(trace, max_runs=200)
    assert 0 < len(minimized["ops"]) < len(trace["ops"])
    assert "digest" in {v.get("oracle") for v in minimized["violations"]}
    assert runs >= 1


def test_shrinker_refuses_passing_trace():
    trace = run_sim(1, default_spec(nodes=3, steps=30))
    assert trace["violations"] == []
    with pytest.raises(ValueError):
        shrink_trace(trace)


# -- flight recorder: cross-node trace propagation -----------------------------


def test_trace_id_propagates_primary_to_follower_deterministically(tmp_path):
    """One traced client write shows up, attributed, on both sim nodes.

    The trace ID attached at the client rides the WAL line to the
    follower, whose ``serve.replicate.apply`` span carries it — and the
    whole exchange is byte-deterministic under the simulated clock.
    """
    from repro.obs.trace import SpanTracer
    from repro.serve.client import ServeClient

    def run(base_dir):
        clock = SimClock()
        transport = SimTransport(seed=0, clock=clock)
        services = {}
        tracers = {}

        def make(name, replica_of=None):
            tracer = SpanTracer(clock=clock)
            service = LiveIngestService(
                ServeConfig(
                    data_dir=base_dir / name,
                    manual_drive=True,
                    wal_keep_all=True,
                    replica_of=replica_of,
                    follower_id=name,
                    poll_interval_s=0.1,
                ),
                metrics=MetricsRegistry(),
                clock=clock,
                disk=SimDisk(),
                snapshot_store=MemorySnapshotStore(),
                transport=transport.bind(name),
                sleep=clock.sleep,
                tracer=tracer,
            )
            services[name] = service
            tracers[name] = tracer
            transport.register(name, lambda n=name: services[n])
            service.start()
            return service

        primary = make("n0")
        follower = make("n1", replica_of=transport.url_of("n0"))
        client = ServeClient(
            [transport.url_of("n0")],
            transport=transport.bind("client"),
            sleep=clock.sleep,
        )
        try:
            response = client.request(
                "POST", "/ingest/attacks?feed=telescope",
                body={"records": [_attack(i) for i in range(3)]},
                trace="ingest-telescope-0",
            )
            assert response.status == 202
            assert response.trace_id == "ingest-telescope-0"
            while primary.tick_apply():
                pass
            for _ in range(5):
                follower.shipper.poll_once()
            while follower.tick_apply():
                pass
            records, _report = follower.wal.replay()
            spans = {
                name: [s.to_dict() for s in tracers[name].spans]
                for name in sorted(tracers)
            }
            requests = {
                name: services[name].requests.recent()
                for name in sorted(services)
            }
            return records, spans, requests
        finally:
            follower.stop()
            primary.stop()

    records, spans, requests = run(tmp_path / "a")

    # The follower's replayed WAL attributes every record to the client.
    assert len(records) == 3
    assert {r.trace for r in records} == {"ingest-telescope-0"}
    # The ingest request hit the primary's request log with the ID...
    ingest_rows = [
        r for r in requests["n0"] if r["endpoint"] == "/ingest/attacks"
    ]
    assert ingest_rows and ingest_rows[0]["trace_id"] == "ingest-telescope-0"
    # ...and the follower's apply span carries the same ID: the
    # cross-node propagation proof, one ID on two distinct nodes.
    applies = [
        s for s in spans["n1"] if s["name"] == "serve.replicate.apply"
    ]
    assert applies
    assert {s["attrs"]["trace_id"] for s in applies} == {"ingest-telescope-0"}
    assert {s["attrs"]["node"] for s in applies} == {"n1"}
    http_spans = [s for s in spans["n0"] if s["name"] == "serve.http"]
    assert any(
        s["attrs"]["trace_id"] == "ingest-telescope-0" for s in http_spans
    )

    # Same schedule, different directory: byte-identical evidence.
    records2, spans2, requests2 = run(tmp_path / "b")
    assert [r.trace for r in records2] == [r.trace for r in records]
    assert json.dumps(spans2, sort_keys=True) == json.dumps(
        spans, sort_keys=True
    )
    assert requests2 == requests
