"""Unit tests for honeypot event extraction."""

import pytest

from repro.honeypot.amppot import RequestBatch
from repro.honeypot.detection import (
    AmpPotEvent,
    DetectionConfig,
    HoneypotDetector,
)


def batch(ts, victim=1, honeypot=0, protocol="NTP", count=60):
    return RequestBatch(
        timestamp=ts, victim=victim, honeypot_id=honeypot,
        protocol=protocol, count=count,
    )


def run(batches, config=DetectionConfig()):
    return list(HoneypotDetector(config).run(iter(batches)))


class TestEventExtraction:
    def test_flood_becomes_event(self):
        events = run([batch(0.0), batch(60.0), batch(120.0)])
        assert len(events) == 1
        event = events[0]
        assert event.victim == 1
        assert event.requests == 180
        assert event.protocol == "NTP"

    def test_scan_below_threshold_dropped(self):
        events = run([batch(0.0, count=50), batch(60.0, count=50)])
        assert events == []  # exactly 100 requests is not > 100

    def test_gap_splits_events(self):
        config = DetectionConfig(gap_timeout=600.0)
        events = run(
            [batch(0.0), batch(60.0), batch(2000.0), batch(2060.0)], config
        )
        assert len(events) == 2

    def test_multiple_honeypots_merged(self):
        events = run(
            [batch(0.0, honeypot=0), batch(1.0, honeypot=1),
             batch(60.0, honeypot=2)]
        )
        assert len(events) == 1
        assert events[0].honeypots == 3

    def test_protocols_kept_separate(self):
        events = run(
            [batch(0.0, protocol="NTP"), batch(1.0, protocol="DNS"),
             batch(60.0, protocol="NTP"), batch(61.0, protocol="DNS")]
        )
        assert len(events) == 2
        assert {e.protocol for e in events} == {"NTP", "DNS"}

    def test_victims_kept_separate(self):
        events = run(
            [batch(0.0, victim=1), batch(1.0, victim=2),
             batch(60.0, victim=1), batch(61.0, victim=2)]
        )
        assert {e.victim for e in events} == {1, 2}

    def test_duration_cap_at_24h(self):
        config = DetectionConfig(gap_timeout=7200.0)
        batches = [batch(t * 3600.0, count=200) for t in range(30)]
        events = run(batches, config)
        assert len(events) >= 2
        assert all(e.duration <= 86400.0 for e in events)

    def test_sweep_closes_idle_flows_midstream(self):
        detector = HoneypotDetector(DetectionConfig(gap_timeout=600.0))
        detector.process(batch(0.0, victim=1))
        detector.process(batch(30.0, victim=1, count=100))
        closed = detector.process(batch(5000.0, victim=2))
        assert len(closed) == 1
        assert closed[0].victim == 1


class TestIntensityMetric:
    def test_avg_rps_normalized_by_honeypots(self):
        events = run(
            [batch(0.0, honeypot=0, count=300), batch(0.5, honeypot=1, count=300),
             batch(100.0, honeypot=0, count=300), batch(100.5, honeypot=1, count=300)]
        )
        event = events[0]
        # 1200 requests over ~100 s across 2 honeypots ~ 6 req/s each.
        assert event.avg_rps == pytest.approx(
            1200 / event.duration / 2, rel=0.01
        )

    def test_short_event_duration_floor(self):
        event = AmpPotEvent(
            victim=1, start_ts=0.0, end_ts=0.5, protocol="NTP",
            requests=500, honeypots=1,
        )
        assert event.avg_rps == 500.0  # duration floored at 1 s


class TestCounters:
    def test_discarded_counter(self):
        detector = HoneypotDetector()
        detector.process(batch(0.0, count=10))
        detector.flush()
        assert detector.flows_discarded == 1
        assert detector.batches_seen == 1
