"""Property-based tests (hypothesis) for core data-structure invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.events import AttackEvent, SOURCE_HONEYPOT, SOURCE_TELESCOPE
from repro.dns.records import DomainTimeline, HostingState
from repro.honeypot.amppot import RequestBatch
from repro.honeypot.detection import DetectionConfig, HoneypotDetector
from repro.net.packet import PROTO_TCP, PacketBatch, TCP_ACK, TCP_SYN
from repro.pipeline.datasets import event_from_dict, event_to_dict
from repro.telescope.flows import FlowTable
from repro.telescope.rsdos import RSDoSConfig, RSDoSDetector

# -- strategies ---------------------------------------------------------------

timestamps = st.lists(
    st.floats(min_value=0.0, max_value=50_000.0),
    min_size=1,
    max_size=60,
).map(sorted)


def backscatter_batch(ts: float, src: int, count: int) -> PacketBatch:
    return PacketBatch(
        timestamp=ts,
        src=src,
        proto=PROTO_TCP,
        count=count,
        bytes=count * 54,
        distinct_dsts=count,
        src_ports=frozenset({80}),
        tcp_flags=TCP_SYN | TCP_ACK,
    )


batch_streams = st.builds(
    lambda times, seed: [
        backscatter_batch(t, random.Random(seed + i).randint(1, 3),
                          random.Random(seed - i).randint(1, 200))
        for i, t in enumerate(times)
    ],
    timestamps,
    st.integers(0, 2**20),
)


# -- flow table ---------------------------------------------------------------

class TestFlowTableProperties:
    @settings(max_examples=60, deadline=None)
    @given(batch_streams, st.floats(min_value=10.0, max_value=2000.0))
    def test_packet_conservation(self, batches, timeout):
        """Every backscatter packet lands in exactly one expired flow."""
        table = FlowTable(timeout=timeout)
        flows = []
        for batch in batches:
            flows.extend(table.add(batch))
        flows.extend(table.flush())
        assert sum(f.packets for f in flows) == sum(b.count for b in batches)

    @settings(max_examples=60, deadline=None)
    @given(batch_streams, st.floats(min_value=10.0, max_value=2000.0))
    def test_no_internal_gap_exceeds_timeout(self, batches, timeout):
        """A flow never contains an idle gap longer than the timeout."""
        table = FlowTable(timeout=timeout)
        flows = []
        for batch in batches:
            flows.extend(table.add(batch))
        flows.extend(table.flush())
        per_victim = {}
        for batch in batches:
            per_victim.setdefault(batch.src, []).append(batch.timestamp)
        for flow in flows:
            inside = [
                t for t in per_victim[flow.victim]
                if flow.first_ts <= t <= flow.last_ts
            ]
            inside.sort()
            gaps = [b - a for a, b in zip(inside, inside[1:])]
            assert all(gap <= timeout + 1e-6 for gap in gaps)

    @settings(max_examples=60, deadline=None)
    @given(batch_streams)
    def test_flow_intervals_valid(self, batches):
        table = FlowTable(timeout=300.0)
        flows = []
        for batch in batches:
            flows.extend(table.add(batch))
        flows.extend(table.flush())
        for flow in flows:
            assert flow.first_ts <= flow.last_ts
            assert flow.max_ppm <= flow.packets


# -- RSDoS classification ------------------------------------------------------

class TestRSDoSProperties:
    @settings(max_examples=50, deadline=None)
    @given(batch_streams)
    def test_detected_events_satisfy_thresholds(self, batches):
        config = RSDoSConfig()
        detector = RSDoSDetector(config)
        for event in detector.run(iter(batches)):
            assert event.packets >= config.min_packets
            assert event.duration >= config.min_duration
            assert event.max_pps >= config.min_max_pps

    @settings(max_examples=50, deadline=None)
    @given(batch_streams)
    def test_relaxing_thresholds_never_loses_events(self, batches):
        strict = list(RSDoSDetector(RSDoSConfig()).run(iter(batches)))
        lenient_config = RSDoSConfig(
            min_packets=1, min_duration=0.0, min_max_pps=0.0
        )
        lenient = list(RSDoSDetector(lenient_config).run(iter(batches)))
        assert len(lenient) >= len(strict)


# -- honeypot detection ---------------------------------------------------------

request_streams = st.builds(
    lambda times, seed: [
        RequestBatch(
            timestamp=t,
            victim=random.Random(seed + i).randint(1, 3),
            honeypot_id=random.Random(seed * 3 + i).randint(0, 4),
            protocol="NTP",
            count=random.Random(seed - i).randint(1, 400),
        )
        for i, t in enumerate(times)
    ],
    timestamps,
    st.integers(0, 2**20),
)


class TestHoneypotProperties:
    @settings(max_examples=60, deadline=None)
    @given(request_streams)
    def test_events_exceed_request_threshold(self, batches):
        config = DetectionConfig()
        detector = HoneypotDetector(config)
        for event in detector.run(iter(batches)):
            assert event.requests > config.min_requests
            assert event.duration <= config.max_event_duration + 1e-6

    @settings(max_examples=60, deadline=None)
    @given(request_streams)
    def test_event_requests_bounded_by_input(self, batches):
        detector = HoneypotDetector()
        events = list(detector.run(iter(batches)))
        assert sum(e.requests for e in events) <= sum(b.count for b in batches)


# -- domain timelines -------------------------------------------------------------

timeline_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=100),  # change day
        st.integers(min_value=1, max_value=10_000),  # ip
    ),
    min_size=1,
    max_size=12,
)


class TestTimelineProperties:
    @settings(max_examples=80, deadline=None)
    @given(timeline_ops, st.integers(min_value=0, max_value=120))
    def test_state_on_matches_last_surviving_write(self, ops, query_day):
        """set_state truncates later changes; a naive replay must agree."""
        domain = DomainTimeline("x.com", "com", 0, True)
        surviving = []
        for day, ip in ops:
            domain.set_state(day, HostingState(ip=ip))
            surviving = [(d, v) for d, v in surviving if d < day]
            surviving.append((day, ip))
        expected = None
        for day, ip in surviving:
            if day <= query_day:
                expected = ip
        state = domain.state_on(query_day)
        assert (state.ip if state else None) == expected

    @settings(max_examples=80, deadline=None)
    @given(timeline_ops, st.integers(min_value=1, max_value=120))
    def test_intervals_partition_lifetime(self, ops, n_days):
        """Hosting intervals tile [first_change, n_days) without overlap."""
        domain = DomainTimeline("x.com", "com", 0, True)
        for day, ip in ops:
            domain.set_state(day, HostingState(ip=ip))
        intervals = domain.hosting_intervals(n_days)
        for (s1, e1, _), (s2, e2, _) in zip(intervals, intervals[1:]):
            assert e1 == s2  # contiguous
        for start, end, ip in intervals:
            assert 0 <= start < end <= n_days
            assert domain.ip_on(start) == ip
            assert domain.ip_on(end - 1) == ip


# -- serialization ---------------------------------------------------------------

events_strategy = st.builds(
    AttackEvent,
    source=st.sampled_from([SOURCE_TELESCOPE, SOURCE_HONEYPOT]),
    target=st.integers(min_value=0, max_value=2**32 - 1),
    start_ts=st.floats(min_value=0, max_value=1e6),
    end_ts=st.floats(min_value=1e6, max_value=2e6),
    intensity=st.floats(min_value=0.0, max_value=1e6),
    ip_proto=st.integers(min_value=0, max_value=255),
    ports=st.lists(
        st.integers(min_value=1, max_value=65535), max_size=4
    ).map(tuple),
    reflector_protocol=st.sampled_from([None, "NTP", "DNS"]),
    packets=st.integers(min_value=0, max_value=10**9),
    country=st.sampled_from(["US", "CN", "??"]),
    asn=st.one_of(st.none(), st.integers(min_value=1, max_value=2**31)),
)


class TestSerializationProperties:
    @settings(max_examples=120, deadline=None)
    @given(events_strategy)
    def test_roundtrip_identity(self, event):
        assert event_from_dict(event_to_dict(event)) == event
