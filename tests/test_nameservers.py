"""Unit tests for the authoritative name-server directory."""

import pytest

from repro.dns.nameservers import NameServerDirectory, REGISTRAR_NS
from repro.dps.providers import build_providers
from repro.internet.hosting import HostingConfig, HostingEcosystem
from repro.internet.topology import InternetTopology, TopologyConfig


@pytest.fixture(scope="module")
def world():
    topology = InternetTopology.generate(TopologyConfig(seed=91, n_ases=60))
    ecosystem = HostingEcosystem.generate(topology, HostingConfig(seed=92))
    providers = build_providers(topology)
    return topology, ecosystem, providers


@pytest.fixture(scope="module")
def directory(world):
    topology, ecosystem, providers = world
    return NameServerDirectory.build(ecosystem, providers, topology, seed=93)


class TestBuild:
    def test_every_hoster_ns_resolves(self, world, directory):
        _, ecosystem, _ = world
        for hoster in ecosystem.hosters:
            for name in hoster.ns_names:
                assert directory.resolve(name) is not None

    def test_hoster_ns_in_own_as(self, world, directory):
        topology, ecosystem, _ = world
        godaddy = ecosystem.hoster_by_name("GoDaddy")
        for name in godaddy.ns_names:
            address = directory.resolve(name)
            assert topology.routing.origin_asn(address) == godaddy.asn

    def test_provider_ns_on_provider_prefix(self, world, directory):
        _, _, providers = world
        for provider in providers:
            for name in provider.protection_ns():
                address = directory.resolve(name)
                assert provider.prefix.contains(address)

    def test_registrar_ns_present(self, directory):
        for name in REGISTRAR_NS:
            assert name in directory
            assert directory.resolve(name) is not None

    def test_unknown_name(self, directory):
        assert directory.resolve("ns1.nowhere.example") is None
        assert "ns1.nowhere.example" not in directory

    def test_deterministic(self, world):
        topology, ecosystem, providers = world
        a = NameServerDirectory.build(ecosystem, providers, topology, seed=5)
        b = NameServerDirectory.build(ecosystem, providers, topology, seed=5)
        assert a.addresses() == b.addresses()


class TestLookups:
    def test_reverse_lookup(self, world, directory):
        _, ecosystem, _ = world
        wix = ecosystem.hoster_by_name("Wix")
        name = wix.ns_names[0]
        address = directory.resolve(name)
        assert name in directory.names_at(address)

    def test_names_at_unknown_address(self, directory):
        assert directory.names_at(12345) == []

    def test_resolve_all_skips_unknown(self, world, directory):
        _, ecosystem, _ = world
        godaddy = ecosystem.hoster_by_name("GoDaddy")
        names = list(godaddy.ns_names) + ["ns9.unknown.example"]
        addresses = directory.resolve_all(names)
        assert len(addresses) == len(godaddy.ns_names)

    def test_addresses_sorted_unique(self, directory):
        addresses = directory.addresses()
        assert addresses == sorted(set(addresses))
        assert len(directory) >= len(addresses)
