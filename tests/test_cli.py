"""Unit tests for the command-line interface and the full-report generator."""

import pytest

from repro.cli import main
from repro.pipeline.fullreport import REPORT_ORDER, generate_full_report


class TestFullReport:
    def test_all_artifacts_present(self, sim):
        report = generate_full_report(sim)
        assert set(REPORT_ORDER) <= set(report)
        for name in REPORT_ORDER:
            assert isinstance(report[name], str)
            assert report[name].strip()

    def test_tables_carry_titles(self, sim):
        report = generate_full_report(sim)
        assert "Table 1" in report["table1"]
        assert "Table 9" in report["table9"]
        assert "taxonomy" in report["fig8"]
        assert "Section 8" in report["extensions"]


class TestCLI:
    def test_headline(self, capsys):
        assert main(["--preset", "small", "headline"]) == 0
        out = capsys.readouterr().out
        assert "active /24s attacked" in out
        assert "paper: 64%" in out

    def test_simulate_with_save(self, tmp_path, capsys):
        events_file = tmp_path / "events.jsonl"
        code = main(
            ["--preset", "small", "simulate", "--save-events",
             str(events_file)]
        )
        assert code == 0
        assert events_file.exists()
        assert "Table 1" in capsys.readouterr().out

    def test_report_subset_to_dir(self, tmp_path, capsys):
        code = main(
            ["--preset", "small", "report", "--out-dir", str(tmp_path),
             "--only", "table1", "fig8"]
        )
        assert code == 0
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "fig8.txt").exists()
        assert not (tmp_path / "table5.txt").exists()

    def test_report_unknown_artifact(self, capsys):
        code = main(
            ["--preset", "small", "report", "--only", "tableX"]
        )
        assert code == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_seed_changes_results(self, capsys):
        main(["--preset", "small", "--seed", "1", "headline"])
        first = capsys.readouterr().out
        main(["--preset", "small", "--seed", "2", "headline"])
        second = capsys.readouterr().out
        assert first != second

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["--preset", "small", "frobnicate"])

    def test_robustness_single_feed(self, capsys):
        code = main(
            ["--preset", "small", "robustness", "--feed", "telescope"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault-free baseline" in out
        assert "feed forced down: telescope" in out
        assert "Data quality report" in out
        assert "uptime" in out
        assert "headline-ratio drift vs. fault-free baseline" in out
        # The downed feed is flagged, the others stay healthy.
        assert "telescope  down" in out

    def test_robustness_standard_plan(self, capsys):
        code = main(
            ["--preset", "small", "robustness", "--plan", "standard",
             "--fault-seed", "11"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "standard mixed fault plan" in out
        assert "fault plan (seed=11" in out
