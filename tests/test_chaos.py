"""End-to-end drills for the supervised parallel executor, via the CLI.

Three contracts from the issue's acceptance criteria are exercised
through real subprocesses (the same way an operator would hit them):

* a sharded run's saved event data set is byte-identical to a serial
  run's for the same seed and config;
* ``--deadline`` aborts cleanly with exit code 124 (distinct from the
  crash drill's 137), leaving a resumable run directory that ``resume``
  completes to byte-identical output;
* ``python -m repro chaos --quick`` passes: hung-worker, worker-crash
  and poison-shard scenarios recover byte-identically or degrade
  visibly, and none of them hangs past its budget.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"

#: Exit codes under test.
EXIT_DEADLINE = 124


def run_cli(*args, timeout=420):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=timeout,
    )


@pytest.fixture(scope="module")
def serial_events(tmp_path_factory):
    """One serial fault-free run's saved events: the byte reference."""
    path = tmp_path_factory.mktemp("serial") / "events.jsonl"
    proc = run_cli("simulate", "--save-events", str(path))
    assert proc.returncode == 0, proc.stderr
    return path.read_bytes()


class TestShardedByteIdentity:
    def test_sharded_run_is_byte_identical_to_serial(
        self, serial_events, tmp_path
    ):
        sharded = tmp_path / "sharded.jsonl"
        proc = run_cli(
            "simulate",
            "--workers", "2",
            "--shards", "3",
            "--save-events", str(sharded),
        )
        assert proc.returncode == 0, proc.stderr
        assert sharded.read_bytes() == serial_events

    def test_single_worker_many_shards_also_identical(
        self, serial_events, tmp_path
    ):
        # Shard count alone must not change output either.
        sharded = tmp_path / "sharded.jsonl"
        proc = run_cli(
            "simulate", "--shards", "4", "--save-events", str(sharded)
        )
        assert proc.returncode == 0, proc.stderr
        assert sharded.read_bytes() == serial_events


class TestRunDeadlineCli:
    def test_deadline_exits_124_and_resume_completes(
        self, serial_events, tmp_path
    ):
        run_dir = tmp_path / "run"
        aborted = run_cli(
            "simulate", "--run-dir", str(run_dir), "--deadline", "0.05"
        )
        assert aborted.returncode == EXIT_DEADLINE, (
            aborted.stdout + aborted.stderr
        )
        assert "deadline exceeded" in aborted.stderr
        assert "resumable" in aborted.stderr
        # The abort was clean: whatever checkpointed stayed on disk, and
        # meta.json still describes the run.
        assert (run_dir / "meta.json").exists()

        resumed = run_cli("resume", str(run_dir))
        assert resumed.returncode == 0, resumed.stderr
        assert (run_dir / "events.jsonl").read_bytes() == serial_events

    def test_deadline_generous_enough_run_succeeds(self, tmp_path):
        run_dir = tmp_path / "run"
        proc = run_cli(
            "simulate", "--run-dir", str(run_dir), "--deadline", "300"
        )
        assert proc.returncode == 0, proc.stderr


class TestChaosDrill:
    def test_quick_drill_passes(self):
        proc = run_cli("chaos", "--quick")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "3/3 scenarios passed" in proc.stdout
        for scenario in ("hung-worker", "worker-crash", "poison-shard"):
            assert f"PASS {scenario}" in proc.stdout
