"""Unit tests for the detection-coverage validation."""

import pytest

from repro.attacks.attacker import ATTACK_DIRECT, ATTACK_REFLECTION, GroundTruthAttack
from repro.core.coverage import (
    CATEGORY_REFLECTION,
    CATEGORY_SPOOFED_DIRECT,
    CATEGORY_UNSPOOFED_DIRECT,
    attack_category,
    coverage_by_category,
    detection_coverage,
)
from repro.core.events import AttackEvent, SOURCE_HONEYPOT, SOURCE_TELESCOPE
from repro.net.packet import PROTO_TCP, PROTO_UDP


def direct(target=1, start=1000.0, spoofed=True):
    return GroundTruthAttack(
        attack_id=1, kind=ATTACK_DIRECT, target=target, start=start,
        duration=600.0, rate=1000.0, vector="syn-flood", ip_proto=PROTO_TCP,
        ports=(80,), spoofed=spoofed,
    )


def reflection(target=2, start=1000.0):
    return GroundTruthAttack(
        attack_id=2, kind=ATTACK_REFLECTION, target=target, start=start,
        duration=600.0, rate=100.0, vector="reflection-ntp",
        ip_proto=PROTO_UDP, ports=(123,), reflector_protocol="NTP",
    )


def tel_event(target=1, start=1000.0, end=1600.0):
    return AttackEvent(SOURCE_TELESCOPE, target, start, end, 1.0)


def hp_event(target=2, start=1000.0, end=1600.0):
    return AttackEvent(
        SOURCE_HONEYPOT, target, start, end, 10.0, reflector_protocol="NTP"
    )


class TestCategories:
    def test_categorization(self):
        assert attack_category(direct()) == CATEGORY_SPOOFED_DIRECT
        assert attack_category(direct(spoofed=False)) == CATEGORY_UNSPOOFED_DIRECT
        assert attack_category(reflection()) == CATEGORY_REFLECTION


class TestMatching:
    def test_spoofed_direct_matched_by_telescope(self):
        coverage = coverage_by_category(
            detection_coverage([direct()], [tel_event()])
        )
        assert coverage[CATEGORY_SPOOFED_DIRECT].coverage == 1.0

    def test_spoofed_direct_not_matched_by_honeypot(self):
        coverage = coverage_by_category(
            detection_coverage([direct(target=2)], [hp_event(target=2)])
        )
        assert coverage[CATEGORY_SPOOFED_DIRECT].coverage == 0.0

    def test_reflection_matched_by_honeypot(self):
        coverage = coverage_by_category(
            detection_coverage([reflection()], [hp_event()])
        )
        assert coverage[CATEGORY_REFLECTION].coverage == 1.0

    def test_wrong_target_no_match(self):
        coverage = coverage_by_category(
            detection_coverage([direct(target=1)], [tel_event(target=9)])
        )
        assert coverage[CATEGORY_SPOOFED_DIRECT].detected == 0

    def test_disjoint_time_no_match(self):
        coverage = coverage_by_category(
            detection_coverage(
                [direct(start=1000.0)],
                [tel_event(start=50_000.0, end=50_600.0)],
            )
        )
        assert coverage[CATEGORY_SPOOFED_DIRECT].detected == 0

    def test_margin_tolerates_flow_slack(self):
        coverage = coverage_by_category(
            detection_coverage(
                [direct(start=1000.0)],
                [tel_event(start=1700.0, end=2300.0)],  # 100 s past the end
                margin=600.0,
            )
        )
        assert coverage[CATEGORY_SPOOFED_DIRECT].detected == 1

    def test_unspoofed_checked_against_both(self):
        attacks = [direct(target=5, spoofed=False)]
        coverage = coverage_by_category(
            detection_coverage(attacks, [tel_event(target=5)])
        )
        # A telescope event on the same victim (from a co-occurring spoofed
        # attack) would be conflated — the lookup reports it.
        assert coverage[CATEGORY_UNSPOOFED_DIRECT].detected == 1
        coverage = coverage_by_category(detection_coverage(attacks, []))
        assert coverage[CATEGORY_UNSPOOFED_DIRECT].detected == 0


class TestEndToEnd:
    def test_simulation_coverage_shapes(self, sim):
        coverage = coverage_by_category(
            detection_coverage(sim.ground_truth, sim.fused.combined.events)
        )
        spoofed = coverage[CATEGORY_SPOOFED_DIRECT]
        refl = coverage[CATEGORY_REFLECTION]
        unspoofed = coverage[CATEGORY_UNSPOOFED_DIRECT]
        # Both sensors see most of what they are built to see...
        assert spoofed.coverage > 0.5
        assert refl.coverage > 0.8
        # ...and the unspoofed blind spot is real: far lower coverage,
        # entirely attributable to target collisions with other attacks.
        assert unspoofed.ground_truth > 0
        assert unspoofed.coverage < spoofed.coverage

    def test_unspoofed_attacks_send_no_backscatter(self, sim):
        from repro.telescope.backscatter import BackscatterModel

        model = BackscatterModel(sim.config.backscatter_config())
        unspoofed = [
            a for a in sim.ground_truth
            if a.kind == ATTACK_DIRECT and not a.spoofed
        ]
        assert unspoofed, "schedule should produce unspoofed attacks"
        assert all(list(model.observe(a)) == [] for a in unspoofed[:50])
