"""Unit tests for the geolocation database."""

import pytest

from repro.net.addressing import Prefix, parse_ipv4
from repro.net.geo import GeoDatabase, GeoRange, UNKNOWN_COUNTRY


@pytest.fixture
def db():
    return GeoDatabase(
        [
            GeoRange(parse_ipv4("10.0.0.0"), parse_ipv4("10.0.255.255"), "US"),
            GeoRange(parse_ipv4("10.2.0.0"), parse_ipv4("10.2.0.255"), "DE"),
        ]
    )


class TestLookup:
    def test_inside_first_range(self, db):
        assert db.country(parse_ipv4("10.0.3.4")) == "US"

    def test_inside_second_range(self, db):
        assert db.country(parse_ipv4("10.2.0.200")) == "DE"

    def test_boundaries_inclusive(self, db):
        assert db.country(parse_ipv4("10.0.0.0")) == "US"
        assert db.country(parse_ipv4("10.0.255.255")) == "US"

    def test_gap_is_unknown(self, db):
        assert db.country(parse_ipv4("10.1.0.1")) == UNKNOWN_COUNTRY

    def test_before_all_ranges(self, db):
        assert db.country(parse_ipv4("9.255.255.255")) == UNKNOWN_COUNTRY

    def test_after_all_ranges(self, db):
        assert db.country(parse_ipv4("10.2.1.0")) == UNKNOWN_COUNTRY

    def test_range_for(self, db):
        geo_range = db.range_for(parse_ipv4("10.2.0.5"))
        assert geo_range.country == "DE"
        assert db.range_for(parse_ipv4("10.1.0.0")) is None


class TestConstruction:
    def test_rejects_overlapping_ranges(self):
        with pytest.raises(ValueError):
            GeoDatabase(
                [
                    GeoRange(0, 100, "US"),
                    GeoRange(50, 150, "DE"),
                ]
            )

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            GeoRange(100, 50, "US")

    def test_from_prefixes_merges_adjacent_same_country(self):
        db = GeoDatabase.from_prefixes(
            [
                (Prefix.from_string("10.0.0.0/24"), "US"),
                (Prefix.from_string("10.0.1.0/24"), "US"),
                (Prefix.from_string("10.0.2.0/24"), "FR"),
            ]
        )
        assert len(db) == 2
        assert db.country(parse_ipv4("10.0.1.5")) == "US"
        assert db.country(parse_ipv4("10.0.2.5")) == "FR"

    def test_from_prefixes_rejects_non_prefix(self):
        with pytest.raises(TypeError):
            GeoDatabase.from_prefixes([("10.0.0.0/24", "US")])


class TestAggregates:
    def test_countries_totals(self, db):
        totals = db.countries()
        assert totals["US"] == 65536
        assert totals["DE"] == 256

    def test_coverage(self, db):
        assert db.coverage() == 65536 + 256
