"""Unit and property tests for wire encoding and pcap I/O."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import (
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REPLY,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
    TCP_ACK,
    TCP_SYN,
)
from repro.net.pcap import (
    PcapFormatError,
    read_pcap,
    read_pcap_as_batches,
    write_batches_pcap,
    write_pcap,
)
from repro.net.wire import (
    WireFormatError,
    decode_packet,
    encode_packet,
    ip_checksum,
)


def tcp_packet(**overrides):
    defaults = dict(
        timestamp=1.5, src=0x0A000001, dst=0x2C000005, proto=PROTO_TCP,
        length=54, src_port=80, dst_port=44211,
        tcp_flags=TCP_SYN | TCP_ACK,
    )
    defaults.update(overrides)
    return Packet(**defaults)


class TestChecksum:
    def test_known_value(self):
        # Classic example header from RFC 1071 discussions.
        header = bytes.fromhex(
            "4500003c1c4640004006" + "0000" + "ac100a63ac100a0c"
        )
        checksum = ip_checksum(header)
        rebuilt = header[:10] + struct.pack("!H", checksum) + header[12:]
        assert ip_checksum(rebuilt) == 0

    def test_odd_length_padded(self):
        assert ip_checksum(b"\x01") == ip_checksum(b"\x01\x00")


class TestEncodeDecode:
    def test_tcp_roundtrip(self):
        packet = tcp_packet()
        decoded = decode_packet(encode_packet(packet), timestamp=1.5)
        assert decoded.src == packet.src
        assert decoded.dst == packet.dst
        assert decoded.proto == PROTO_TCP
        assert decoded.src_port == 80
        assert decoded.dst_port == 44211
        assert decoded.tcp_flags == TCP_SYN | TCP_ACK
        assert decoded.is_tcp_response

    def test_udp_roundtrip(self):
        packet = tcp_packet(proto=PROTO_UDP, tcp_flags=0, length=40)
        decoded = decode_packet(encode_packet(packet))
        assert decoded.proto == PROTO_UDP
        assert decoded.src_port == 80

    def test_icmp_roundtrip_with_quote(self):
        packet = tcp_packet(
            proto=PROTO_ICMP, tcp_flags=0, src_port=0, dst_port=0,
            icmp_type=ICMP_DEST_UNREACH, quoted_proto=PROTO_UDP, length=70,
        )
        decoded = decode_packet(encode_packet(packet))
        assert decoded.icmp_type == ICMP_DEST_UNREACH
        assert decoded.quoted_proto == PROTO_UDP
        assert decoded.is_icmp_response

    def test_icmp_without_quote(self):
        packet = tcp_packet(
            proto=PROTO_ICMP, tcp_flags=0, src_port=0, dst_port=0,
            icmp_type=ICMP_ECHO_REPLY, length=28,
        )
        decoded = decode_packet(encode_packet(packet))
        assert decoded.icmp_type == ICMP_ECHO_REPLY
        assert decoded.quoted_proto is None

    def test_declared_length_honoured(self):
        packet = tcp_packet(length=120)
        frame = encode_packet(packet)
        assert len(frame) == 120
        assert decode_packet(frame).length == 120

    def test_ip_checksum_valid(self):
        frame = encode_packet(tcp_packet())
        assert ip_checksum(frame[:20]) == 0

    def test_decode_rejects_short_frame(self):
        with pytest.raises(WireFormatError):
            decode_packet(b"\x45\x00")

    def test_decode_rejects_ipv6(self):
        frame = bytearray(encode_packet(tcp_packet()))
        frame[0] = (6 << 4) | 5
        with pytest.raises(WireFormatError):
            decode_packet(bytes(frame))

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=65535),
        st.integers(min_value=0, max_value=255),
    )
    def test_tcp_roundtrip_property(self, src, dst, port, flags):
        packet = tcp_packet(src=src, dst=dst, src_port=port, tcp_flags=flags)
        decoded = decode_packet(encode_packet(packet))
        assert (decoded.src, decoded.dst, decoded.src_port,
                decoded.tcp_flags) == (src, dst, port, flags)


class TestPcap:
    def test_roundtrip(self, tmp_path):
        packets = [
            tcp_packet(timestamp=1.25),
            tcp_packet(timestamp=2.5, proto=PROTO_UDP, tcp_flags=0),
        ]
        path = tmp_path / "capture.pcap"
        assert write_pcap(packets, path) == 2
        loaded = list(read_pcap(path))
        assert len(loaded) == 2
        assert loaded[0].timestamp == pytest.approx(1.25)
        assert loaded[0].src == packets[0].src
        assert loaded[1].proto == PROTO_UDP

    def test_batches_roundtrip_through_detector(self, tmp_path):
        """Telescope batches -> pcap -> detector reproduces the event."""
        from repro.net.packet import PacketBatch
        from repro.telescope.rsdos import RSDoSDetector

        batches = [
            PacketBatch(
                timestamp=60.0 * minute, src=0x0B0B0B0B, proto=PROTO_TCP,
                count=40, bytes=40 * 54, distinct_dsts=40,
                src_ports=frozenset({80}), tcp_flags=TCP_SYN | TCP_ACK,
            )
            for minute in range(3)
        ]
        path = tmp_path / "telescope.pcap"
        written = write_batches_pcap(batches, path)
        assert written == 120
        replayed = read_pcap_as_batches(path)
        events = list(RSDoSDetector().run(replayed))
        assert len(events) == 1
        assert events[0].victim == 0x0B0B0B0B
        assert events[0].packets == 120

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 24)
        with pytest.raises(PcapFormatError):
            list(read_pcap(path))

    def test_rejects_truncated_record(self, tmp_path):
        path = tmp_path / "trunc.pcap"
        write_pcap([tcp_packet()], path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(PcapFormatError):
            list(read_pcap(path))

    def test_little_endian_accepted(self, tmp_path):
        path = tmp_path / "le.pcap"
        frame = encode_packet(tcp_packet())
        with open(path, "wb") as handle:
            handle.write(
                struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
            )
            handle.write(struct.pack("<IIII", 7, 0, len(frame), len(frame)))
            handle.write(frame)
        loaded = list(read_pcap(path))
        assert len(loaded) == 1
        assert loaded[0].timestamp == pytest.approx(7.0)
