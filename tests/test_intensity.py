"""Unit tests for intensity normalization and thresholds."""

import pytest
from hypothesis import given, strategies as st

from repro.core.events import AttackEvent, SOURCE_HONEYPOT, SOURCE_TELESCOPE
from repro.core.intensity import (
    IntensityModel,
    intensity_percentile_table,
    top_fraction_threshold,
)


def tel(intensity):
    return AttackEvent(SOURCE_TELESCOPE, 1, 0.0, 60.0, intensity)


def hp(intensity):
    return AttackEvent(
        SOURCE_HONEYPOT, 1, 0.0, 60.0, intensity, reflector_protocol="NTP"
    )


class TestIntensityModel:
    def test_normalization_per_source(self):
        model = IntensityModel([tel(1.0), tel(101.0), hp(10.0), hp(20.0)])
        assert model.normalized(tel(1.0)) == 0.0
        assert model.normalized(tel(101.0)) == 1.0
        assert model.normalized(tel(51.0)) == pytest.approx(0.5)
        assert model.normalized(hp(15.0)) == pytest.approx(0.5)

    def test_values_clamped(self):
        model = IntensityModel([tel(10.0), tel(20.0)])
        assert model.normalized(tel(5.0)) == 0.0
        assert model.normalized(tel(100.0)) == 1.0

    def test_degenerate_scale(self):
        model = IntensityModel([tel(5.0), tel(5.0)])
        assert model.normalized(tel(5.0)) == 0.0

    def test_medium_threshold_is_mean(self):
        events = [tel(1.0), tel(1.0), tel(10.0)]  # mean 4.0
        model = IntensityModel(events)
        assert not model.is_medium_or_higher(tel(3.9))
        assert model.is_medium_or_higher(tel(4.0))

    def test_medium_plus_filters_per_source(self):
        events = [tel(1.0), tel(100.0), hp(1.0), hp(9.0)]
        model = IntensityModel(events)
        kept = model.medium_plus(events)
        assert tel(100.0) in kept
        assert hp(9.0) in kept
        assert len(kept) == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            IntensityModel([])


class TestPercentileTable:
    def test_monotone_rows(self):
        values = [0.0] * 10 + [0.05] * 80 + [0.5] * 9 + [1.0]
        rows = intensity_percentile_table(values)
        intensities = [v for _, v in rows]
        assert intensities == sorted(intensities)
        assert rows[-1][1] == 1.0

    def test_heavy_skew_shape(self):
        """Most sites see tiny normalized intensities (Table 9's shape)."""
        values = [0.01] * 950 + [0.5] * 45 + [1.0] * 5
        rows = dict(intensity_percentile_table(values))
        assert rows[95.0] <= 0.1

    def test_empty(self):
        assert intensity_percentile_table([]) == []


class TestTopFraction:
    def test_threshold_selects_top(self):
        values = list(range(100))
        threshold = top_fraction_threshold(values, 0.1)
        assert 88 <= threshold <= 91
        assert sum(1 for v in values if v >= threshold) == pytest.approx(10, abs=2)

    def test_full_fraction(self):
        assert top_fraction_threshold([1, 2, 3], 1.0) == 1.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            top_fraction_threshold([1], 0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            top_fraction_threshold([], 0.5)

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=5, max_size=50),
           st.floats(min_value=0.05, max_value=1.0))
    def test_threshold_within_range(self, values, fraction):
        threshold = top_fraction_threshold(values, fraction)
        assert min(values) <= threshold <= max(values)
