"""Unit and integration tests for the attacker population."""

from random import Random

import pytest

from repro.attacks.actors import (
    ACTOR_BOOTER,
    ACTOR_BOTNET,
    ACTOR_SKILLED,
    Actor,
    ActorPopulation,
    ActorPopulationConfig,
    attacks_per_actor,
)
from repro.attacks.attacker import ATTACK_DIRECT


@pytest.fixture(scope="module")
def population():
    return ActorPopulation.generate(ActorPopulationConfig(seed=1))


class TestPopulation:
    def test_sizes(self, population):
        config = ActorPopulationConfig()
        assert len(population.of_kind(ACTOR_BOOTER)) == config.n_booters
        assert len(population.of_kind(ACTOR_BOTNET)) == config.n_botnets
        assert len(population.of_kind(ACTOR_SKILLED)) == config.n_skilled

    def test_unique_ids(self, population):
        ids = [a.actor_id for a in population.actors]
        assert len(ids) == len(set(ids))

    def test_by_id(self, population):
        actor = population.actors[0]
        assert population.by_id(actor.actor_id) is actor

    def test_booter_popularity_zipf(self, population):
        booters = population.of_kind(ACTOR_BOOTER)
        assert booters[0].activity > 10 * booters[-1].activity

    def test_weighted_draw_respects_skew(self, population):
        rng = Random(2)
        counts = {}
        for _ in range(3000):
            actor = population.draw(ACTOR_BOOTER, rng)
            counts[actor.name] = counts.get(actor.name, 0) + 1
        assert counts["booter-000"] == max(counts.values())

    def test_draw_unknown_kind(self, population):
        with pytest.raises(ValueError):
            population.draw("apт", Random(1))

    def test_actor_validation(self):
        with pytest.raises(ValueError):
            Actor(1, "wizard", "x", 1.0)
        with pytest.raises(ValueError):
            Actor(1, ACTOR_BOOTER, "x", 0.0)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            ActorPopulation([])


class TestScheduleIntegration:
    def test_every_attack_has_a_real_actor(self, sim):
        population = ActorPopulation.generate(
            ActorPopulationConfig(seed=sim.config.schedule_config().seed ^ 0xAC70)
        )
        for attack in sim.ground_truth[:500]:
            actor = population.by_id(attack.attacker_id)
            assert actor is not None

    def test_botnets_launch_the_unspoofed_attacks(self, sim):
        population = ActorPopulation.generate(
            ActorPopulationConfig(seed=sim.config.schedule_config().seed ^ 0xAC70)
        )
        for attack in sim.ground_truth:
            if attack.kind != ATTACK_DIRECT:
                continue
            kind = population.by_id(attack.attacker_id).kind
            if not attack.spoofed:
                assert kind == ACTOR_BOTNET
            elif attack.joint_id is None:
                assert kind == ACTOR_BOOTER

    def test_skilled_attackers_run_joint_campaigns(self, sim):
        population = ActorPopulation.generate(
            ActorPopulationConfig(seed=sim.config.schedule_config().seed ^ 0xAC70)
        )
        joint = [a for a in sim.ground_truth if a.joint_id is not None]
        assert joint
        for attack in joint:
            assert population.by_id(attack.attacker_id).kind == ACTOR_SKILLED

    def test_booter_volume_heavy_tailed(self, sim):
        population = ActorPopulation.generate(
            ActorPopulationConfig(seed=sim.config.schedule_config().seed ^ 0xAC70)
        )
        counts = attacks_per_actor(sim.ground_truth, population)
        booter_counts = sorted(
            (count for name, count in counts.items() if "booter" in name),
            reverse=True,
        )
        assert booter_counts[0] > 5 * booter_counts[len(booter_counts) // 2]
