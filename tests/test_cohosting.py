"""Unit tests for the co-hosting histogram."""

from repro.core.cohosting import (
    CoHostingBin,
    cohosting_bins,
    is_monotone_decreasing_tail,
    web_hosting_target_count,
)
from repro.core.events import AttackEvent, SOURCE_TELESCOPE
from repro.core.webmap import EventAssociation


def association(target, site_count, day=0):
    event = AttackEvent(SOURCE_TELESCOPE, target, day * 86400.0, day * 86400.0 + 1, 1.0)
    return EventAssociation(event=event, day=day, site_count=site_count)


class TestBins:
    def test_single_site_bin(self):
        bins = cohosting_bins([association(1, 1), association(2, 1)])
        assert bins[0].label == "n=1"
        assert bins[0].target_ips == 2

    def test_log_decade_bins(self):
        associations = [
            association(1, 1),
            association(2, 5),
            association(3, 10),
            association(4, 11),
            association(5, 5000),
        ]
        bins = {b.label: b.target_ips for b in cohosting_bins(associations)}
        assert bins["n=1"] == 1
        assert bins["10^0<n<=10^1"] == 2  # 5 and 10
        assert bins["10^1<n<=10^2"] == 1  # 11
        assert bins["10^3<n<=10^4"] == 1  # 5000

    def test_ip_contributes_once_with_peak(self):
        associations = [association(1, 3, day=0), association(1, 50, day=5)]
        bins = {b.label: b.target_ips for b in cohosting_bins(associations)}
        assert bins["10^0<n<=10^1"] == 0
        assert bins["10^1<n<=10^2"] == 1

    def test_zero_site_ips_excluded(self):
        bins = cohosting_bins([association(1, 0)])
        assert sum(b.target_ips for b in bins) == 0

    def test_target_count(self):
        associations = [
            association(1, 2), association(1, 3), association(2, 0),
            association(3, 1),
        ]
        assert web_hosting_target_count(associations) == 2


class TestShape:
    def test_monotone_tail_true(self):
        bins = [
            CoHostingBin("a", 0, 1, 100),
            CoHostingBin("b", 1, 10, 50),
            CoHostingBin("c", 10, 100, 10),
            CoHostingBin("d", 100, 1000, 0),
        ]
        assert is_monotone_decreasing_tail(bins)

    def test_monotone_tail_false(self):
        bins = [
            CoHostingBin("a", 0, 1, 10),
            CoHostingBin("b", 1, 10, 50),
        ]
        assert not is_monotone_decreasing_tail(bins)

    def test_tolerance(self):
        bins = [
            CoHostingBin("a", 0, 1, 10),
            CoHostingBin("b", 1, 10, 12),
        ]
        assert is_monotone_decreasing_tail(bins, tolerance=2)
