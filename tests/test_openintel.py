"""Unit tests for the OpenINTEL measurement platform substitute."""

import pytest

from repro.dns.openintel import OpenIntelPlatform, records_for
from repro.dns.records import (
    DomainTimeline,
    HostingState,
    RRTYPE_A,
    RRTYPE_CNAME,
    RRTYPE_MX,
    RRTYPE_NS,
)
from repro.dns.zone import Zone


def make_zone():
    zone = Zone("com")
    plain = DomainTimeline("plain.com", "com", 0, True)
    plain.set_state(0, HostingState(ip=100, ns=("ns1.x.example",), mx_ip=200))
    moved = DomainTimeline("moved.com", "com", 0, True)
    moved.set_state(0, HostingState(ip=101))
    moved.set_state(10, HostingState(ip=102))
    late = DomainTimeline("late.com", "com", 15, True)
    late.set_state(15, HostingState(ip=103))
    noweb = DomainTimeline("noweb.com", "com", 0, False)
    noweb.set_state(0, HostingState(ip=104, ns=("ns1.y.example",)))
    cnamed = DomainTimeline("cnamed.com", "com", 0, True)
    cnamed.set_state(
        0, HostingState(ip=105, cname="cnamed.wix.example", hoster="Wix")
    )
    zone.domains = [plain, moved, late, noweb, cnamed]
    return zone


@pytest.fixture
def platform():
    return OpenIntelPlatform([make_zone()], n_days=30)


class TestSnapshot:
    def test_snapshot_contains_a_records(self, platform):
        records = list(platform.snapshot(0))
        a_names = {r.name for r in records if r.rtype == RRTYPE_A}
        assert "www.plain.com" in a_names

    def test_unregistered_domain_absent(self, platform):
        names = {r.name for r in platform.snapshot(0)}
        assert not any("late.com" in n for n in names)
        names_late = {r.name for r in platform.snapshot(20)}
        assert "www.late.com" in names_late

    def test_hosting_change_visible(self, platform):
        def www_ip(day):
            for record in platform.snapshot(day):
                if record.name == "www.moved.com" and record.rtype == RRTYPE_A:
                    return record.address
        assert www_ip(5) == 101
        assert www_ip(15) == 102

    def test_no_www_label_for_non_web_domain(self, platform):
        records = list(platform.snapshot(0))
        assert not any(r.name == "www.noweb.com" for r in records)
        # the NS record of the bare domain is still measured
        assert any(
            r.name == "noweb.com" and r.rtype == RRTYPE_NS for r in records
        )

    def test_cname_chain_rendered(self, platform):
        records = [
            r for r in platform.snapshot(0)
            if r.name in ("www.cnamed.com", "cnamed.wix.example")
        ]
        types = {r.rtype for r in records}
        assert types == {RRTYPE_CNAME, RRTYPE_A}

    def test_mx_records(self, platform):
        records = list(platform.snapshot(0))
        assert any(
            r.rtype == RRTYPE_MX and r.name == "plain.com" for r in records
        )
        assert any(
            r.name == "mail.plain.com" and r.address == 200 for r in records
        )

    def test_snapshot_day_bounds(self, platform):
        with pytest.raises(ValueError):
            list(platform.snapshot(30))


class TestMeasure:
    def test_web_site_count(self, platform):
        dataset = platform.measure()
        assert dataset.total_web_sites == 4  # noweb.com excluded

    def test_hosting_intervals_cover_changes(self, platform):
        dataset = platform.measure()
        moved = [
            i for i in dataset.hosting_intervals if i[0] == "www.moved.com"
        ]
        assert ("www.moved.com", 101, 0, 10) in moved
        assert ("www.moved.com", 102, 10, 30) in moved

    def test_first_seen(self, platform):
        dataset = platform.measure()
        assert dataset.first_seen["www.plain.com"] == 0
        assert dataset.first_seen["www.late.com"] == 15

    def test_data_points_scale_with_days_alive(self, platform):
        dataset = platform.measure()
        stats = dataset.zone_stats[0]
        assert stats.tld == "com"
        assert stats.data_points > 0
        assert dataset.total_data_points == stats.data_points
        assert dataset.total_size_bytes > 0

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            OpenIntelPlatform([make_zone()], n_days=0)


class TestRecordsFor:
    def test_plain_a(self):
        domain = DomainTimeline("x.com", "com", 0, True)
        state = HostingState(ip=7)
        records = list(records_for(domain, state))
        assert len(records) == 1
        assert records[0].rtype == RRTYPE_A
        assert records[0].address == 7
