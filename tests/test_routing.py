"""Unit and property tests for the longest-prefix-match routing table."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.addressing import IPv4_MAX, Prefix, parse_ipv4
from repro.net.routing import RoutingTable


@pytest.fixture
def table():
    t = RoutingTable()
    t.announce(Prefix.from_string("10.0.0.0/8"), asn=100)
    t.announce(Prefix.from_string("10.1.0.0/16"), asn=200)
    t.announce(Prefix.from_string("10.1.2.0/24"), asn=300)
    return t


class TestLookup:
    def test_most_specific_wins(self, table):
        assert table.origin_asn(parse_ipv4("10.1.2.3")) == 300

    def test_intermediate_specificity(self, table):
        assert table.origin_asn(parse_ipv4("10.1.3.1")) == 200

    def test_covering_prefix(self, table):
        assert table.origin_asn(parse_ipv4("10.200.0.1")) == 100

    def test_unrouted_address(self, table):
        assert table.origin_asn(parse_ipv4("11.0.0.1")) is None

    def test_lookup_returns_prefix(self, table):
        prefix, asn = table.lookup(parse_ipv4("10.1.2.3"))
        assert prefix == Prefix.from_string("10.1.2.0/24")
        assert asn == 300

    def test_reannouncement_replaces_origin(self, table):
        table.announce(Prefix.from_string("10.1.2.0/24"), asn=999)
        assert table.origin_asn(parse_ipv4("10.1.2.3")) == 999
        assert len(table) == 3

    def test_default_route(self):
        t = RoutingTable()
        t.announce(Prefix.from_string("0.0.0.0/0"), asn=1)
        assert t.origin_asn(parse_ipv4("203.0.113.7")) == 1

    def test_host_route(self):
        t = RoutingTable()
        t.announce(Prefix(parse_ipv4("10.0.0.5"), 32), asn=5)
        assert t.origin_asn(parse_ipv4("10.0.0.5")) == 5
        assert t.origin_asn(parse_ipv4("10.0.0.6")) is None


class TestWithdraw:
    def test_withdraw_restores_covering(self, table):
        assert table.withdraw(Prefix.from_string("10.1.2.0/24"))
        assert table.origin_asn(parse_ipv4("10.1.2.3")) == 200
        assert len(table) == 2

    def test_withdraw_unknown_returns_false(self, table):
        assert not table.withdraw(Prefix.from_string("192.0.2.0/24"))


class TestEnumeration:
    def test_announced_prefixes_sorted(self, table):
        prefixes = [p for p, _ in table.announced_prefixes()]
        assert prefixes == sorted(prefixes)
        assert len(prefixes) == 3

    def test_from_announcements(self):
        t = RoutingTable.from_announcements(
            [(Prefix.from_string("192.0.2.0/24"), 7)]
        )
        assert t.origin_asn(parse_ipv4("192.0.2.9")) == 7


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(0, 2**30))
def test_lpm_matches_linear_scan(address, seed):
    """Trie lookup agrees with a brute-force longest-match scan."""
    rng = random.Random(seed)
    prefixes = []
    for _ in range(rng.randint(1, 12)):
        length = rng.randint(4, 28)
        network = rng.randrange(0, IPv4_MAX)
        prefixes.append((Prefix(network, length), rng.randint(1, 65000)))
    table = RoutingTable.from_announcements(prefixes)
    # De-duplicate: a re-announcement replaces, so keep the *last* origin.
    canonical = {}
    for prefix, asn in prefixes:
        canonical[prefix] = asn
    matches = [
        (prefix.length, asn)
        for prefix, asn in canonical.items()
        if prefix.contains(address)
    ]
    expected = max(matches)[1] if matches else None
    # If two same-length prefixes match they are the same prefix (canonical).
    assert table.origin_asn(address) == expected
