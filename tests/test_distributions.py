"""Unit and property tests for empirical CDFs."""

import pytest
from hypothesis import given, strategies as st

from repro.core.distributions import (
    EmpiricalCDF,
    duration_cdf,
    intensity_cdf,
    per_protocol_intensity_cdfs,
)
from repro.core.events import AttackEvent, SOURCE_HONEYPOT, SOURCE_TELESCOPE


def hp(intensity, protocol="NTP", duration=100.0):
    return AttackEvent(
        SOURCE_HONEYPOT, 1, 0.0, duration, intensity,
        reflector_protocol=protocol,
    )


class TestEmpiricalCDF:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_fraction_at_or_below(self):
        cdf = EmpiricalCDF([1, 2, 3, 4])
        assert cdf.fraction_at_or_below(0) == 0.0
        assert cdf.fraction_at_or_below(2) == 0.5
        assert cdf.fraction_at_or_below(4) == 1.0
        assert cdf.fraction_at_or_below(100) == 1.0

    def test_quantile(self):
        cdf = EmpiricalCDF([10, 20, 30, 40])
        assert cdf.quantile(0.0) == 10
        assert cdf.quantile(0.5) == 20
        assert cdf.quantile(1.0) == 40

    def test_quantile_bounds(self):
        cdf = EmpiricalCDF([1])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_mean_median(self):
        cdf = EmpiricalCDF([1, 2, 3, 4, 100])
        assert cdf.mean == pytest.approx(22.0)
        assert cdf.median == 3

    def test_summary_at(self):
        cdf = EmpiricalCDF([1, 10])
        assert cdf.summary_at([1, 5, 10]) == {1: 0.5, 5: 0.5, 10: 1.0}

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=60))
    def test_cdf_is_monotone(self, values):
        cdf = EmpiricalCDF(values)
        points = sorted(set(values))
        fractions = [cdf.fraction_at_or_below(p) for p in points]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] == 1.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=60),
           st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_inverts_cdf(self, values, q):
        cdf = EmpiricalCDF(values)
        assert cdf.fraction_at_or_below(cdf.quantile(q)) >= q - 1e-9


class TestEventCDFs:
    def test_duration_cdf(self):
        events = [hp(1.0, duration=60.0), hp(1.0, duration=600.0)]
        cdf = duration_cdf(events)
        assert cdf.fraction_at_or_below(60.0) == 0.5

    def test_intensity_cdf(self):
        events = [hp(5.0), hp(50.0)]
        cdf = intensity_cdf(events)
        assert cdf.median == 5.0

    def test_per_protocol_cdfs(self):
        events = (
            [hp(10.0, "NTP")] * 5
            + [hp(1.0, "DNS")] * 3
            + [hp(2.0, "CharGen")] * 2
        )
        cdfs = per_protocol_intensity_cdfs(events, top_n=2)
        assert set(cdfs) == {"Overall", "NTP", "DNS"}
        assert len(cdfs["Overall"]) == 10
        assert len(cdfs["NTP"]) == 5

    def test_per_protocol_ignores_telescope(self):
        telescope_event = AttackEvent(SOURCE_TELESCOPE, 1, 0, 1, 1.0)
        assert per_protocol_intensity_cdfs([telescope_event]) == {}
