"""Unit tests for scenario configuration and pipeline wiring."""

import pytest

from repro.pipeline.config import ScenarioConfig, _derive
from repro.pipeline.simulation import run_simulation


class TestSeedDerivation:
    def test_component_seeds_differ(self):
        config = ScenarioConfig(seed=42)
        seeds = {
            config.topology_config().seed,
            config.hosting_config().seed,
            config.zone_config().seed,
            config.schedule_config().seed,
            config.backscatter_config().seed,
            config.fleet_config().seed,
            config.migration_config().seed,
            config.census_seed(),
        }
        assert len(seeds) == 8  # every component draws independently

    def test_master_seed_propagates(self):
        a = ScenarioConfig(seed=1)
        b = ScenarioConfig(seed=2)
        assert a.topology_config().seed != b.topology_config().seed
        assert a.schedule_config().seed != b.schedule_config().seed

    def test_derive_deterministic(self):
        assert _derive(42, "topology") == _derive(42, "topology")
        assert _derive(42, "topology") != _derive(42, "hosting")

    def test_with_seed(self):
        config = ScenarioConfig.small().with_seed(99)
        assert config.seed == 99
        assert config.n_days == ScenarioConfig.small().n_days


class TestPresets:
    def test_scale_ordering(self):
        small, default, paper = (
            ScenarioConfig.small(),
            ScenarioConfig.default(),
            ScenarioConfig.paper(),
        )
        assert small.n_days < default.n_days < paper.n_days
        assert small.n_domains < default.n_domains <= paper.n_domains

    def test_paper_window_is_two_years(self):
        assert ScenarioConfig.paper().n_days == 731

    def test_component_configs_carry_scale(self):
        config = ScenarioConfig(n_days=77, n_domains=123, n_honeypots=8)
        assert config.zone_config().n_days == 77
        assert config.zone_config().n_domains == 123
        assert config.schedule_config().n_days == 77
        assert config.fleet_config().n_instances == 8


class TestPipelineWiring:
    @pytest.fixture(scope="class")
    def tiny(self):
        return run_simulation(
            ScenarioConfig(
                seed=3, n_days=20, n_domains=400, n_ases=60,
                direct_per_day=10.0, reflection_per_day=7.0,
            )
        )

    def test_result_layers_consistent(self, tiny):
        assert tiny.n_days == 20
        assert sum(len(z) for z in tiny.zones) == 400
        assert len(tiny.providers) == 10
        assert len(tiny.ns_directory) > 0
        assert tiny.openintel.n_days == 20

    def test_observed_events_match_result_lists(self, tiny):
        assert len(tiny.fused.telescope) == len(tiny.telescope_events)
        assert len(tiny.fused.honeypot) == len(tiny.honeypot_events)

    def test_events_annotated(self, tiny):
        annotated = [e for e in tiny.fused.combined.events if e.asn is not None]
        assert len(annotated) > 0.9 * len(tiny.fused.combined)

    def test_observed_targets_are_ground_truth_targets(self, tiny):
        truth_targets = {a.target for a in tiny.ground_truth}
        observed = tiny.fused.combined.unique_targets()
        # Scanner/noise artifacts never survive detection thresholds.
        assert observed <= truth_targets

    def test_web_index_built_from_openintel(self, tiny):
        assert tiny.web_index.n_intervals == len(
            tiny.openintel.hosting_intervals
        )

    def test_migrations_visible_in_timelines(self, tiny):
        by_name = {
            d.www_name: d
            for zone in tiny.zones
            for d in zone.domains
            if d.has_www
        }
        for record in tiny.ledger.migrations:
            domain = by_name[record.domain]
            assert domain.first_dps_day(tiny.n_days) is not None
