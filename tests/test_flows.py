"""Unit tests for the telescope flow table."""

import pytest

from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP, PacketBatch, TCP_ACK, TCP_SYN
from repro.telescope.flows import FlowState, FlowTable


def batch(ts, src=1, count=10, ports=(80,), proto=PROTO_TCP,
          flags=TCP_SYN | TCP_ACK, quoted=None):
    return PacketBatch(
        timestamp=ts, src=src, proto=proto, count=count, bytes=count * 54,
        distinct_dsts=count, src_ports=frozenset(ports), tcp_flags=flags,
        quoted_proto=quoted,
    )


class TestFlowState:
    def test_accumulates_counts(self):
        flow = FlowState(victim=1, first_ts=0.0, last_ts=0.0)
        flow.add(batch(0.0, count=10))
        flow.add(batch(30.0, count=5))
        assert flow.packets == 15
        assert flow.bytes == 15 * 54
        assert flow.duration == 30.0

    def test_max_ppm_per_minute(self):
        flow = FlowState(victim=1, first_ts=0.0, last_ts=0.0)
        flow.add(batch(0.0, count=10))
        flow.add(batch(30.0, count=5))   # same minute -> 15
        flow.add(batch(70.0, count=12))  # next minute -> 12
        assert flow.max_ppm == 15

    def test_dominant_proto_uses_quoted(self):
        flow = FlowState(victim=1, first_ts=0.0, last_ts=0.0)
        flow.add(batch(0.0, count=5, proto=PROTO_ICMP, flags=0, quoted=PROTO_UDP))
        flow.add(batch(1.0, count=2, proto=PROTO_TCP))
        assert flow.dominant_proto == PROTO_UDP

    def test_ports_unioned(self):
        flow = FlowState(victim=1, first_ts=0.0, last_ts=0.0)
        flow.add(batch(0.0, ports=(80,)))
        flow.add(batch(1.0, ports=(443,)))
        assert flow.ports == {80, 443}


class TestFlowTable:
    def test_same_victim_single_flow(self):
        table = FlowTable(timeout=300.0)
        table.add(batch(0.0))
        table.add(batch(100.0))
        assert len(table) == 1

    def test_distinct_victims_distinct_flows(self):
        table = FlowTable(timeout=300.0)
        table.add(batch(0.0, src=1))
        table.add(batch(0.5, src=2))
        assert len(table) == 2

    def test_timeout_expires_flow(self):
        table = FlowTable(timeout=300.0)
        table.add(batch(0.0, src=1))
        expired = table.add(batch(301.0, src=1))
        assert len(expired) == 1
        assert expired[0].victim == 1
        assert len(table) == 1  # the new flow for the same victim

    def test_within_timeout_no_expiry(self):
        table = FlowTable(timeout=300.0)
        table.add(batch(0.0, src=1))
        assert table.add(batch(299.0, src=1)) == []

    def test_sweep_expires_idle_other_victims(self):
        table = FlowTable(timeout=300.0, sweep_interval=60.0)
        table.add(batch(0.0, src=1))
        expired = table.add(batch(400.0, src=2))
        assert [f.victim for f in expired] == [1]

    def test_flush_returns_all(self):
        table = FlowTable(timeout=300.0)
        table.add(batch(0.0, src=1))
        table.add(batch(0.0, src=2))
        flows = sorted(f.victim for f in table.flush())
        assert flows == [1, 2]
        assert len(table) == 0

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            FlowTable(timeout=0.0)

    def test_separate_events_for_separated_attacks(self):
        """Two attacks on one victim 10 minutes apart become two flows."""
        table = FlowTable(timeout=300.0)
        table.add(batch(0.0, src=9))
        table.add(batch(60.0, src=9))
        expired = table.add(batch(660.0, src=9))
        assert len(expired) == 1
        assert expired[0].duration == 60.0
