"""Unit tests for the unified event model."""

import pytest

from repro.core.events import (
    AttackDataset,
    AttackEvent,
    SOURCE_HONEYPOT,
    SOURCE_TELESCOPE,
)
from repro.honeypot.detection import AmpPotEvent
from repro.net.addressing import Prefix, parse_ipv4
from repro.net.geo import GeoDatabase, GeoRange
from repro.net.packet import PROTO_TCP
from repro.net.routing import RoutingTable
from repro.telescope.rsdos import TelescopeEvent


def tel_event(victim=1, start=0.0, end=120.0, max_ppm=120, ports=(80,)):
    return TelescopeEvent(
        victim=victim, start_ts=start, end_ts=end, packets=200, bytes=10_000,
        distinct_sources=150, ports=tuple(ports), ip_proto=PROTO_TCP,
        max_ppm=max_ppm, tcp_responses=200, icmp_responses=0,
    )


def hp_event(victim=2, start=0.0, end=300.0, requests=3000, honeypots=10):
    return AmpPotEvent(
        victim=victim, start_ts=start, end_ts=end, protocol="NTP",
        requests=requests, honeypots=honeypots,
    )


class TestConversion:
    def test_from_telescope(self):
        event = AttackEvent.from_telescope(tel_event())
        assert event.source == SOURCE_TELESCOPE
        assert event.intensity == pytest.approx(2.0)  # 120 ppm -> 2 pps
        assert event.ports == (80,)
        assert event.duration == 120.0

    def test_from_honeypot(self):
        event = AttackEvent.from_honeypot(hp_event())
        assert event.source == SOURCE_HONEYPOT
        assert event.reflector_protocol == "NTP"
        assert event.intensity == pytest.approx(3000 / 300.0 / 10)

    def test_rejects_unknown_source(self):
        with pytest.raises(ValueError):
            AttackEvent("darkweb", 1, 0.0, 1.0, 1.0)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            AttackEvent(SOURCE_TELESCOPE, 1, 10.0, 5.0, 1.0)

    def test_start_day(self):
        event = AttackEvent(SOURCE_TELESCOPE, 1, 3 * 86400.0 + 5, 3 * 86400.0 + 10, 1.0)
        assert event.start_day == 3

    def test_single_port(self):
        assert AttackEvent(SOURCE_TELESCOPE, 1, 0, 1, 1.0, ports=(80,)).single_port
        assert AttackEvent(SOURCE_TELESCOPE, 1, 0, 1, 1.0, ports=()).single_port
        assert not AttackEvent(
            SOURCE_TELESCOPE, 1, 0, 1, 1.0, ports=(80, 443)
        ).single_port

    def test_overlaps(self):
        a = AttackEvent(SOURCE_TELESCOPE, 1, 0.0, 100.0, 1.0)
        b = AttackEvent(SOURCE_HONEYPOT, 1, 50.0, 150.0, 1.0)
        c = AttackEvent(SOURCE_HONEYPOT, 1, 200.0, 250.0, 1.0)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestAnnotation:
    def test_annotated_fills_country_and_asn(self):
        geo = GeoDatabase([GeoRange(0, 1000, "NL")])
        routing = RoutingTable()
        routing.announce(Prefix(0, 22), asn=64999)
        event = AttackEvent(SOURCE_TELESCOPE, 500, 0.0, 1.0, 1.0)
        annotated = event.annotated(geo, routing)
        assert annotated.country == "NL"
        assert annotated.asn == 64999
        # original is unchanged (frozen dataclass semantics)
        assert event.country == "??"


class TestDataset:
    def test_sorted_by_start(self):
        events = [
            AttackEvent(SOURCE_TELESCOPE, 1, 100.0, 200.0, 1.0),
            AttackEvent(SOURCE_TELESCOPE, 2, 0.0, 50.0, 1.0),
        ]
        dataset = AttackDataset(events)
        assert [e.target for e in dataset] == [2, 1]

    def test_unique_rollups(self):
        events = [
            AttackEvent(SOURCE_TELESCOPE, parse_ipv4("10.0.0.1"), 0, 1, 1.0),
            AttackEvent(SOURCE_TELESCOPE, parse_ipv4("10.0.0.2"), 0, 1, 1.0),
            AttackEvent(SOURCE_TELESCOPE, parse_ipv4("10.0.1.1"), 0, 1, 1.0),
            AttackEvent(SOURCE_TELESCOPE, parse_ipv4("10.1.0.1"), 0, 1, 1.0),
        ]
        dataset = AttackDataset(events, label="t")
        assert len(dataset.unique_targets()) == 4
        assert len(dataset.unique_slash24s()) == 3
        assert len(dataset.unique_slash16s()) == 2

    def test_summary(self):
        dataset = AttackDataset(
            [AttackEvent(SOURCE_TELESCOPE, 1, 0, 1, 1.0)], label="X"
        )
        summary = dataset.summary()
        assert summary["source"] == "X"
        assert summary["events"] == 1
        assert summary["targets"] == 1

    def test_events_per_target(self):
        events = [
            AttackEvent(SOURCE_TELESCOPE, 1, 0, 1, 1.0),
            AttackEvent(SOURCE_TELESCOPE, 1, 10, 11, 1.0),
            AttackEvent(SOURCE_TELESCOPE, 2, 0, 1, 1.0),
        ]
        assert AttackDataset(events).events_per_target() == pytest.approx(1.5)

    def test_filter(self):
        events = [
            AttackEvent(SOURCE_TELESCOPE, 1, 0, 1, 1.0),
            AttackEvent(SOURCE_TELESCOPE, 2, 0, 1, 5.0),
        ]
        filtered = AttackDataset(events).filter(lambda e: e.intensity > 2)
        assert len(filtered) == 1

    def test_empty_dataset(self):
        dataset = AttackDataset([])
        assert dataset.events_per_target() == 0.0
        assert dataset.summary()["targets"] == 0
