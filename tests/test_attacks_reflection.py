"""Unit tests for the reflection attack generator."""

from random import Random

import pytest

from repro.attacks.attacker import ATTACK_REFLECTION
from repro.attacks.reflection import (
    ReflectionAttackConfig,
    ReflectionAttackGenerator,
)
from repro.net.packet import PROTO_UDP
from repro.net.protocols import REFLECTION_PROTOCOLS


@pytest.fixture
def generator():
    return ReflectionAttackGenerator(ReflectionAttackConfig(), Random(2))


def draw_many(generator, n=4000):
    return [
        generator.generate(attack_id=i, target=i + 1, start=float(i))
        for i in range(n)
    ]


class TestDistributionShapes:
    def test_ntp_leads(self, generator):
        attacks = draw_many(generator)
        counts = {}
        for attack in attacks:
            counts[attack.reflector_protocol] = (
                counts.get(attack.reflector_protocol, 0) + 1
            )
        assert max(counts, key=counts.get) == "NTP"
        assert 0.33 < counts["NTP"] / len(attacks) < 0.48

    def test_dns_second_chargen_third(self, generator):
        attacks = draw_many(generator, 8000)
        counts = {}
        for attack in attacks:
            counts[attack.reflector_protocol] = (
                counts.get(attack.reflector_protocol, 0) + 1
            )
        ordered = sorted(counts, key=counts.get, reverse=True)
        assert ordered[:3] == ["NTP", "DNS", "CharGen"]

    def test_duration_median_around_minutes(self, generator):
        durations = sorted(a.duration for a in draw_many(generator))
        median = durations[len(durations) // 2]
        assert 100 < median < 700  # paper median 255 s

    def test_rate_median_around_77(self, generator):
        rates = sorted(a.rate for a in draw_many(generator))
        median = rates[len(rates) // 2]
        assert 30 < median < 200

    def test_ntp_reaches_higher_rates_than_ssdp(self, generator):
        attacks = draw_many(generator, 8000)
        by_proto = {}
        for attack in attacks:
            by_proto.setdefault(attack.reflector_protocol, []).append(attack.rate)
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(by_proto["NTP"]) > mean(by_proto["SSDP"])


class TestMechanics:
    def test_kind_and_proto(self, generator):
        attack = generator.generate(1, 2, 0.0)
        assert attack.kind == ATTACK_REFLECTION
        assert attack.ip_proto == PROTO_UDP

    def test_port_matches_protocol(self, generator):
        for _ in range(50):
            attack = generator.generate(1, 2, 0.0)
            protocol = REFLECTION_PROTOCOLS[attack.reflector_protocol]
            assert attack.ports == (protocol.port,)

    def test_force_protocol(self, generator):
        attack = generator.generate(1, 2, 0.0, force_protocol="CharGen")
        assert attack.reflector_protocol == "CharGen"
        assert attack.ports == (19,)

    def test_min_duration_enforced(self, generator):
        attack = generator.generate(1, 2, 0.0, min_duration=4 * 3600.0)
        assert attack.duration >= 4 * 3600.0

    def test_rejects_unknown_protocol_weight(self):
        config = ReflectionAttackConfig(protocol_weights={"SMURF": 1.0})
        with pytest.raises(ValueError):
            ReflectionAttackGenerator(config, Random(1))

    def test_vector_label(self, generator):
        attack = generator.generate(1, 2, 0.0, force_protocol="NTP")
        assert attack.vector == "reflection-ntp"
