"""DataQualityReport serialization: JSON round-trips and edge cases.

The report became a durable run artifact (``quality.json``) alongside
the telemetry exports, so its dict round-trip is now a contract: a
flight report rendered from disk must see exactly what the live run
saw — including degraded feeds, breaker trips and quarantine reasons
the validator has never heard of.
"""

import json

import pytest

from repro.faults.plan import FaultPlan, FaultPlanConfig
from repro.pipeline.quality import (
    DataQualityReport,
    FeedQuality,
    HeadlineMetrics,
    RecordQuality,
    STATUS_DEGRADED,
    STATUS_OK,
    StageReport,
)
from repro.pipeline.runner import RetryPolicy, run_resilient


def no_sleep(_delay):
    pass


def _roundtrip(report: DataQualityReport) -> DataQualityReport:
    """Dict -> JSON text -> dict -> report, as quality.json does it."""
    return DataQualityReport.from_dict(
        json.loads(json.dumps(report.to_dict()))
    )


class TestRoundTrip:
    def test_live_degraded_run_roundtrips(self, small_config):
        """A report with every section populated survives the round-trip."""
        plan = FaultPlan.generate(
            FaultPlanConfig(
                seed=3,
                n_days=small_config.n_days,
                n_honeypots=small_config.n_honeypots,
                transient_failures={"honeypot": 9},
            )
        )
        result = run_resilient(
            small_config,
            plan=plan,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            sleep=no_sleep,
            baseline=HeadlineMetrics(1, 1, 0.5, 0.5, 0.5),
        )
        original = result.quality
        restored = _roundtrip(original)
        assert restored.to_dict() == original.to_dict()
        # Behaviour survives, not just the raw fields.
        assert restored.degraded == original.degraded
        assert restored.headline_drift() == original.headline_drift()
        assert restored.render() == original.render()
        assert [b.name for b in restored.breakers] == [
            b.name for b in original.breakers
        ]

    def test_empty_report_roundtrips(self):
        report = DataQualityReport()
        restored = _roundtrip(report)
        assert restored.to_dict() == report.to_dict()
        assert restored.feeds == []
        assert restored.headline is None
        assert restored.baseline is None
        assert not restored.degraded
        assert restored.headline_drift() == {}

    def test_unknown_reason_codes_preserved(self):
        """Reason codes are open-ended: future validators must not be
        dropped or renamed by (de)serialization."""
        record = RecordQuality(
            source="feeds/alien.jsonl",
            loaded=10,
            quarantined=3,
            reasons=(("solar-flare", 2), ("gremlins", 1)),
            quarantine_path="feeds/alien.quarantine.jsonl",
            feed="telescope",
        )
        report = DataQualityReport(records=[record])
        restored = _roundtrip(report)
        assert restored.records[0].reasons == (
            ("solar-flare", 2), ("gremlins", 1)
        )
        assert restored.degraded  # quarantined records alone flag it


class TestPerFeedQuarantineEdgeCases:
    def test_no_feeds_no_records(self):
        assert DataQualityReport().per_feed_quarantine_counts() == {}

    def test_feedless_record_falls_back_to_source(self):
        report = DataQualityReport(records=[
            RecordQuality(source="stray.jsonl", loaded=1, quarantined=4),
        ])
        assert report.per_feed_quarantine_counts() == {"stray.jsonl": 4}

    def test_same_feed_accumulates_across_loads(self):
        records = [
            RecordQuality(
                source=f"part{i}.jsonl", loaded=1, quarantined=i, feed="dps"
            )
            for i in (1, 2)
        ]
        report = DataQualityReport(records=records)
        assert report.per_feed_quarantine_counts() == {"dps": 3}

    def test_feed_lookup_raises_on_unknown(self):
        report = DataQualityReport(feeds=[
            FeedQuality(
                feed="telescope", uptime=1.0, events_observed=1,
                events_dropped=0, status=STATUS_OK,
            ),
        ])
        assert report.feed("telescope").status == STATUS_OK
        with pytest.raises(KeyError):
            report.feed("nonexistent")


class TestComponentDicts:
    def test_stage_report_defaults_filled(self):
        restored = StageReport.from_dict({"name": "fusion", "status": "ok"})
        assert restored.attempts == 1
        assert restored.elapsed == 0.0
        assert restored.error is None

    def test_feed_quality_detail_optional(self):
        data = {
            "feed": "honeypot", "uptime": 0.5, "events_observed": 2,
            "events_dropped": 1, "status": STATUS_DEGRADED,
        }
        assert FeedQuality.from_dict(data).detail == ""

    def test_headline_metrics_exact_fields(self):
        metrics = HeadlineMetrics(10, 5, 0.64, 0.03, 0.08)
        assert HeadlineMetrics.from_dict(metrics.to_dict()) == metrics
