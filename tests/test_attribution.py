"""Unit and integration tests for target attribution."""

import pytest

from repro.core.attribution import (
    Attribution,
    EVIDENCE_CNAME,
    EVIDENCE_DPS,
    EVIDENCE_NS,
    EVIDENCE_ROUTING,
    TargetAttributor,
)
from repro.core.events import AttackEvent, SOURCE_TELESCOPE
from repro.dns.records import DomainTimeline, HostingState
from repro.dns.zone import Zone
from repro.dps.providers import build_providers
from repro.internet.topology import InternetTopology, TopologyConfig

CNAME_IP = 111
NS_IP = 222


@pytest.fixture(scope="module")
def topology():
    return InternetTopology.generate(TopologyConfig(seed=101, n_ases=30))


@pytest.fixture(scope="module")
def attributor(topology):
    zone = Zone("com")
    cnamed = DomainTimeline("a.com", "com", 0, True)
    cnamed.set_state(
        0, HostingState(ip=CNAME_IP, cname="a-com.wix.example", hoster="Wix")
    )
    delegated = DomainTimeline("b.com", "com", 0, True)
    delegated.set_state(
        0, HostingState(ip=NS_IP, ns=("ns1.godaddy.example",), hoster="GoDaddy")
    )
    zone.domains = [cnamed, delegated]
    providers = build_providers(topology)
    return TargetAttributor([zone], topology, providers), providers


class TestEvidenceCascade:
    def test_cname_wins(self, attributor):
        attributor, _ = attributor
        attribution = attributor.attribute(CNAME_IP)
        assert attribution.evidence == EVIDENCE_CNAME
        assert attribution.party == "wix"
        assert attribution.is_specific

    def test_ns_second(self, attributor):
        attributor, _ = attributor
        attribution = attributor.attribute(NS_IP)
        assert attribution.evidence == EVIDENCE_NS
        assert attribution.party == "godaddy"

    def test_dps_prefix(self, attributor):
        attributor, providers = attributor
        akamai = next(p for p in providers if p.name == "Akamai")
        attribution = attributor.attribute(akamai.prefix.network + 3)
        assert attribution.evidence == EVIDENCE_DPS
        assert attribution.party == "Akamai"
        assert not attribution.is_specific

    def test_routing_fallback(self, attributor, topology):
        attributor, _ = attributor
        ovh = topology.as_by_name("OVH")
        address = ovh.prefixes[0].network + 9
        attribution = attributor.attribute(address)
        assert attribution.evidence == EVIDENCE_ROUTING
        assert attribution.party == "OVH"

    def test_unrouted_address(self, attributor):
        attributor, _ = attributor
        attribution = attributor.attribute(0xFEFEFEFE)
        assert attribution.party == "unknown"


class TestTopParties:
    def _event(self, target):
        return AttackEvent(SOURCE_TELESCOPE, target, 0.0, 60.0, 1.0)

    def test_event_weighted_ranking(self, attributor):
        attributor, _ = attributor
        events = [self._event(CNAME_IP)] * 3 + [self._event(NS_IP)]
        top = attributor.top_attacked_parties(events, top_n=2)
        assert top[0] == ("wix", 3)
        assert top[1] == ("godaddy", 1)

    def test_unique_target_ranking(self, attributor):
        attributor, _ = attributor
        events = [self._event(CNAME_IP)] * 3 + [self._event(NS_IP)]
        top = attributor.top_attacked_parties(
            events, top_n=2, weight_by_events=False
        )
        assert dict(top) == {"wix": 1, "godaddy": 1}


class TestSimulationAttribution:
    def test_named_hosters_identified(self, sim):
        attributor = TargetAttributor(sim.zones, sim.topology, sim.providers)
        top = attributor.top_attacked_parties(
            sim.fused.combined.events, top_n=8
        )
        assert top, "expected attacked parties"
        names = [party for party, _ in top]
        # The giant platforms the paper names dominate attacked-site IPs.
        assert any(
            name in ("godaddy", "GoDaddy", "wix", "automattic", "OVH")
            for name in names
        )

    def test_wix_identified_despite_aws_hosting(self, sim):
        """The paper's CNAME trick: Wix hosts in AWS but is attributable."""
        wix = sim.ecosystem.hoster_by_name("Wix")
        attributor = TargetAttributor(sim.zones, sim.topology, sim.providers)
        attribution = attributor.attribute(wix.ips[0])
        assert attribution.party == "wix"
        assert attribution.evidence == EVIDENCE_CNAME
        # Routing alone would have said Amazon.
        asn = sim.topology.routing.origin_asn(wix.ips[0])
        assert sim.topology.as_by_asn(asn).name == "Amazon AWS"
