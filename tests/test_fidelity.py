"""Detection fidelity: observed events faithfully describe ground truth.

These tests verify the *measurement* layer end to end: every detected event
must correspond to a real attack against the same victim with consistent
timing, protocol and intensity — no phantom events, no systematic
distortion beyond the documented observation effects.
"""

from collections import defaultdict

import pytest

from repro.attacks.attacker import ATTACK_DIRECT, ATTACK_REFLECTION


@pytest.fixture(scope="module")
def truth_by_target(sim):
    by_target = defaultdict(list)
    for attack in sim.ground_truth:
        by_target[attack.target].append(attack)
    return by_target

SLACK = 600.0  # flow-expiry / aggregation slack in seconds


class TestTelescopeFidelity:
    def test_every_event_has_a_matching_attack(self, sim, truth_by_target):
        for event in sim.telescope_events:
            candidates = [
                a for a in truth_by_target.get(event.victim, ())
                if a.kind == ATTACK_DIRECT and a.spoofed
                and a.start - SLACK <= event.start_ts
                and event.end_ts <= a.end + SLACK
            ]
            # An event may merge several overlapping attacks; at least one
            # real spoofed attack must cover (most of) the event interval.
            if not candidates:
                candidates = [
                    a for a in truth_by_target.get(event.victim, ())
                    if a.kind == ATTACK_DIRECT and a.spoofed
                    and a.start <= event.end_ts and event.start_ts <= a.end
                ]
            assert candidates, f"phantom telescope event on {event.victim}"

    def test_event_ports_subset_of_attack_ports(self, sim, truth_by_target):
        for event in sim.telescope_events[:500]:
            attack_ports = set()
            for attack in truth_by_target.get(event.victim, ()):
                if attack.kind == ATTACK_DIRECT:
                    attack_ports.update(attack.ports)
            assert set(event.ports) <= attack_ports

    def test_observed_rate_not_above_ground_truth(self, sim, truth_by_target):
        """Telescope max pps never exceeds 1/256 of the victim's true rate
        (response probability and capacity only reduce it) beyond Poisson
        noise."""
        violations = 0
        for event in sim.telescope_events:
            overlapping = [
                a for a in truth_by_target.get(event.victim, ())
                if a.kind == ATTACK_DIRECT
                and a.start <= event.end_ts and event.start_ts <= a.end
            ]
            if not overlapping:
                continue
            total_rate = sum(a.rate for a in overlapping)
            if event.max_pps > total_rate / 256.0 * 1.5 + 3.0:
                violations += 1
        assert violations <= max(2, 0.01 * len(sim.telescope_events))


class TestHoneypotFidelity:
    def test_every_event_matches_attack_protocol(self, sim, truth_by_target):
        for event in sim.honeypot_events:
            candidates = [
                a for a in truth_by_target.get(event.victim, ())
                if a.kind == ATTACK_REFLECTION
                and a.reflector_protocol == event.protocol
                and a.start - SLACK <= event.start_ts
                and event.start_ts <= a.end + SLACK
            ]
            assert candidates, (
                f"phantom honeypot event: {event.protocol} on {event.victim}"
            )

    def test_event_rate_tracks_attack_rate(self, sim, truth_by_target):
        """avg req/s per reflector approximates the ground-truth rate."""
        checked = 0
        within = 0
        for event in sim.honeypot_events:
            matches = [
                a for a in truth_by_target.get(event.victim, ())
                if a.kind == ATTACK_REFLECTION
                and a.reflector_protocol == event.protocol
                and a.start <= event.end_ts and event.start_ts <= a.end
            ]
            if len(matches) != 1:
                continue  # merged attacks distort rates; skip
            checked += 1
            truth = matches[0].rate
            if 0.3 * truth <= event.avg_rps <= 3.0 * truth:
                within += 1
        assert checked > 50
        assert within / checked > 0.8

    def test_durations_capped(self, sim):
        assert all(e.duration <= 86400.0 + 1 for e in sim.honeypot_events)

    def test_scanner_victims_never_become_events(self, sim):
        """Honeypot scanner noise sources live outside allocated space and
        must never pass the 100-request threshold."""
        truth_targets = {a.target for a in sim.ground_truth}
        for event in sim.honeypot_events:
            assert event.victim in truth_targets
