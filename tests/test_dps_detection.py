"""Unit tests for DPS-use detection."""

import pytest

from repro.dns.records import DomainTimeline, HostingState
from repro.dns.openintel import records_for
from repro.dns.zone import Zone
from repro.dps.detection import BGPDiversionLog, DPSDetector
from repro.dps.providers import build_providers, provider_by_name
from repro.internet.topology import InternetTopology, TopologyConfig
from repro.net.addressing import Prefix


@pytest.fixture(scope="module")
def world():
    topology = InternetTopology.generate(TopologyConfig(seed=71, n_ases=30))
    providers = build_providers(topology)
    return topology, providers


def protected_domain(provider, name="shop.com", day=0):
    domain = DomainTimeline(name, "com", 0, True)
    domain.set_state(0, HostingState(ip=12345, ns=("ns1.reg.example",)))
    if provider.method == "cname":
        state = HostingState(
            ip=provider.prefix.network + 1,
            cname=provider.protection_cname(name),
        )
    elif provider.method == "ns":
        state = HostingState(
            ip=provider.prefix.network + 1, ns=provider.protection_ns()
        )
    else:
        state = HostingState(ip=12345)
    domain.set_state(day, state)
    return domain


class TestClassifyState:
    def test_cname_detection(self, world):
        _, providers = world
        akamai = provider_by_name(providers, "Akamai")
        detector = DPSDetector(providers)
        state = HostingState(
            ip=99, cname=akamai.protection_cname("shop.com")
        )
        assert detector.classify_state(state) == "Akamai"

    def test_ns_detection(self, world):
        _, providers = world
        cloudflare = provider_by_name(providers, "CloudFlare")
        detector = DPSDetector(providers)
        state = HostingState(ip=99, ns=cloudflare.protection_ns())
        assert detector.classify_state(state) == "CloudFlare"

    def test_address_detection(self, world):
        _, providers = world
        verisign = provider_by_name(providers, "Verisign")
        detector = DPSDetector(providers)
        state = HostingState(ip=verisign.prefix.network + 3)
        assert detector.classify_state(state) == "Verisign"

    def test_unprotected_state(self, world):
        _, providers = world
        detector = DPSDetector(providers)
        assert detector.classify_state(HostingState(ip=42)) is None

    def test_bgp_diversion_detection(self, world):
        _, providers = world
        log = BGPDiversionLog()
        log.divert(Prefix(0x0A0A0A00, 24), "CenturyLink", from_day=10)
        detector = DPSDetector(providers, diversion_log=log)
        state = HostingState(ip=0x0A0A0A05)
        assert detector.classify_state(state, day=5) is None
        assert detector.classify_state(state, day=10) == "CenturyLink"

    def test_most_specific_diversion_wins(self):
        log = BGPDiversionLog()
        log.divert(Prefix(0x0A000000, 8), "Level3", from_day=0)
        log.divert(Prefix(0x0A0A0A00, 24), "CenturyLink", from_day=0)
        assert log.provider_for(0x0A0A0A05, 0) == "CenturyLink"
        assert log.provider_for(0x0A000005, 0) == "Level3"


class TestClassifyRecords:
    def test_record_based_cname_detection(self, world):
        _, providers = world
        incapsula = provider_by_name(providers, "Incapsula")
        domain = protected_domain(incapsula, day=5)
        detector = DPSDetector(providers)
        records = list(records_for(domain, domain.state_on(5)))
        assert detector.classify_records(domain.www_name, records) == "Incapsula"

    def test_record_based_unprotected(self, world):
        _, providers = world
        detector = DPSDetector(providers)
        domain = DomainTimeline("plain.com", "com", 0, True)
        domain.set_state(0, HostingState(ip=42, ns=("ns1.reg.example",)))
        records = list(records_for(domain, domain.state_on(0)))
        assert detector.classify_records(domain.www_name, records) is None


class TestScan:
    def test_scan_finds_migration_day(self, world):
        _, providers = world
        akamai = provider_by_name(providers, "Akamai")
        zone = Zone("com")
        zone.domains = [protected_domain(akamai, day=20)]
        detector = DPSDetector(providers)
        dataset = detector.scan([zone], n_days=60)
        assert len(dataset.usages) == 1
        usage = dataset.usages[0]
        assert usage.provider == "Akamai"
        assert usage.first_day == 20

    def test_scan_skips_unprotected(self, world):
        _, providers = world
        domain = DomainTimeline("plain.com", "com", 0, True)
        domain.set_state(0, HostingState(ip=42))
        zone = Zone("com")
        zone.domains = [domain]
        dataset = DPSDetector(providers).scan([zone], n_days=60)
        assert dataset.usages == []

    def test_scan_probes_bgp_diversion_days(self, world):
        """A BGP diversion between hosting-change days is still found."""
        _, providers = world
        domain = DomainTimeline("bgp.com", "com", 0, True)
        domain.set_state(0, HostingState(ip=0x0B0B0B07))
        log = BGPDiversionLog()
        log.divert(Prefix(0x0B0B0B00, 24), "Level3", from_day=25)
        zone = Zone("com")
        zone.domains = [domain]
        dataset = DPSDetector(providers, diversion_log=log).scan([zone], 60)
        assert len(dataset.usages) == 1
        assert dataset.usages[0].provider == "Level3"
        assert dataset.usages[0].first_day == 25

    def test_provider_site_counts(self, world):
        _, providers = world
        akamai = provider_by_name(providers, "Akamai")
        neustar = provider_by_name(providers, "Neustar")
        zone = Zone("com")
        zone.domains = [
            protected_domain(akamai, "a.com", day=5),
            protected_domain(akamai, "b.com", day=6),
            protected_domain(neustar, "c.com", day=7),
        ]
        dataset = DPSDetector(providers).scan([zone], n_days=60)
        counts = dataset.provider_site_counts()
        assert counts == {"Akamai": 2, "Neustar": 1}

    def test_first_day_by_domain(self, world):
        _, providers = world
        akamai = provider_by_name(providers, "Akamai")
        zone = Zone("com")
        zone.domains = [protected_domain(akamai, "a.com", day=9)]
        dataset = DPSDetector(providers).scan([zone], n_days=60)
        assert dataset.first_day_by_domain() == {"www.a.com": 9}

    def test_detector_requires_providers(self):
        with pytest.raises(ValueError):
            DPSDetector([])
