"""Unit and property tests for repro.net.addressing."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addressing import (
    IPv4_MAX,
    Prefix,
    count_unique_blocks,
    format_ipv4,
    mask_for,
    parse_ipv4,
    slash8,
    slash16,
    slash24,
)

addresses = st.integers(min_value=0, max_value=IPv4_MAX)


class TestParseFormat:
    def test_parse_simple(self):
        assert parse_ipv4("1.2.3.4") == 0x01020304

    def test_parse_zero(self):
        assert parse_ipv4("0.0.0.0") == 0

    def test_parse_max(self):
        assert parse_ipv4("255.255.255.255") == IPv4_MAX

    def test_format_simple(self):
        assert format_ipv4(0x01020304) == "1.2.3.4"

    def test_parse_rejects_short(self):
        with pytest.raises(ValueError):
            parse_ipv4("1.2.3")

    def test_parse_rejects_octet_out_of_range(self):
        with pytest.raises(ValueError):
            parse_ipv4("1.2.3.256")

    def test_format_rejects_negative(self):
        with pytest.raises(ValueError):
            format_ipv4(-1)

    def test_format_rejects_too_large(self):
        with pytest.raises(ValueError):
            format_ipv4(IPv4_MAX + 1)

    @given(addresses)
    def test_roundtrip(self, address):
        assert parse_ipv4(format_ipv4(address)) == address


class TestBlocks:
    def test_slash24(self):
        assert slash24(parse_ipv4("10.1.2.3")) == parse_ipv4("10.1.2.0")

    def test_slash16(self):
        assert slash16(parse_ipv4("10.1.2.3")) == parse_ipv4("10.1.0.0")

    def test_slash8(self):
        assert slash8(parse_ipv4("10.1.2.3")) == parse_ipv4("10.0.0.0")

    @given(addresses)
    def test_block_nesting(self, address):
        assert slash8(slash16(address)) == slash8(address)
        assert slash16(slash24(address)) == slash16(address)

    @given(addresses)
    def test_block_contains_address(self, address):
        assert slash24(address) <= address < slash24(address) + 256

    def test_count_unique_blocks(self):
        ips = [parse_ipv4("10.0.0.1"), parse_ipv4("10.0.0.200"),
               parse_ipv4("10.0.1.1")]
        assert count_unique_blocks(ips) == 2
        assert count_unique_blocks(ips, block_fn=slash16) == 1


class TestMask:
    def test_mask_32(self):
        assert mask_for(32) == 0xFFFFFFFF

    def test_mask_0(self):
        assert mask_for(0) == 0

    def test_mask_24(self):
        assert mask_for(24) == 0xFFFFFF00

    def test_mask_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            mask_for(33)


class TestPrefix:
    def test_from_string(self):
        prefix = Prefix.from_string("10.0.0.0/8")
        assert prefix.network == parse_ipv4("10.0.0.0")
        assert prefix.length == 8

    def test_from_string_requires_length(self):
        with pytest.raises(ValueError):
            Prefix.from_string("10.0.0.0")

    def test_canonicalizes_host_bits(self):
        assert Prefix(parse_ipv4("10.0.0.1"), 8) == Prefix.from_string("10.0.0.0/8")

    def test_size(self):
        assert Prefix.from_string("10.0.0.0/24").size == 256
        assert Prefix.from_string("10.0.0.0/8").size == 1 << 24

    def test_contains(self):
        prefix = Prefix.from_string("10.1.0.0/16")
        assert prefix.contains(parse_ipv4("10.1.255.255"))
        assert not prefix.contains(parse_ipv4("10.2.0.0"))

    def test_contains_prefix(self):
        outer = Prefix.from_string("10.0.0.0/8")
        inner = Prefix.from_string("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)

    def test_overlaps(self):
        a = Prefix.from_string("10.0.0.0/9")
        b = Prefix.from_string("10.64.0.0/10")
        c = Prefix.from_string("11.0.0.0/8")
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_slash24_blocks_of_a_slash22(self):
        blocks = list(Prefix.from_string("10.0.0.0/22").slash24_blocks())
        assert len(blocks) == 4
        assert blocks[0] == parse_ipv4("10.0.0.0")
        assert blocks[-1] == parse_ipv4("10.0.3.0")

    def test_slash24_blocks_of_longer_prefix(self):
        blocks = list(Prefix.from_string("10.0.0.128/25").slash24_blocks())
        assert blocks == [parse_ipv4("10.0.0.0")]

    def test_random_address_stays_inside(self):
        import random

        prefix = Prefix.from_string("10.3.0.0/16")
        rng = random.Random(1)
        for _ in range(100):
            assert prefix.contains(prefix.random_address(rng))

    def test_str(self):
        assert str(Prefix.from_string("10.0.0.0/8")) == "10.0.0.0/8"

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Prefix(0, 40)

    @given(addresses, st.integers(min_value=0, max_value=32))
    def test_prefix_always_contains_its_network(self, address, length):
        prefix = Prefix(address, length)
        assert prefix.contains(prefix.network)
        assert prefix.contains(prefix.last)
        assert prefix.size == prefix.last - prefix.network + 1
