"""Shared fixtures: one small end-to-end simulation reused across tests."""

from __future__ import annotations

import pytest

from repro.pipeline.config import ScenarioConfig
from repro.pipeline.simulation import run_simulation


@pytest.fixture(scope="session")
def small_config() -> ScenarioConfig:
    return ScenarioConfig.small()


@pytest.fixture(scope="session")
def sim(small_config):
    """A full small-scenario simulation (built once per test session)."""
    return run_simulation(small_config)


@pytest.fixture(scope="session")
def topology(sim):
    return sim.topology


@pytest.fixture(scope="session")
def ecosystem(sim):
    return sim.ecosystem
