"""WAL-shipping replication: shipping primitives, cluster protocol, client.

Three layers under test, bottom up:

* **WAL shipping primitives** — ``segment_sizes`` / ``read_chunk`` /
  ``oldest_seq`` / truncated ``replay(upto_seq=...)`` with a whole-log
  shed set, plus the prune boundary rules a follower's bootstrap
  decision hangs off (including the newest-segment guard that keeps a
  prune racing a rotation from deleting the live tail);
* **the cluster protocol** — a real in-process primary (behind its HTTP
  server, since the shipper only speaks HTTP) with in-process follower
  services: streaming convergence by state digest, read-only refusal
  with a primary hint, shed-under-replication equivalence, snapshot
  bootstrap when the cursor falls below the pruned WAL, promotion with
  an epoch bump, fencing and stale-fence refusal, and synchronous-ack
  ingest timing out into 503 when no follower confirms;
* **the client** — Retry-After honoring, connection failover across the
  endpoint list, and 409 primary-hint redirects, against a scripted
  transport (no sockets, no sleeps).
"""

import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.client import ClientResponse, ServeClient, ServeClientError
from repro.serve.http import (
    ENDPOINT_FILE,
    ServeHTTPServer,
    read_endpoint_file,
    write_endpoint_file,
)
from repro.serve.replication import (
    CLUSTER_FILE,
    CURSOR_FILE,
    ClusterState,
    ROLE_FENCED,
    ROLE_PRIMARY,
    ROLE_REPLICA,
    ShipperCursor,
    WalShipper,
)
from repro.serve.service import LiveIngestService, ServeConfig
from repro.serve.wal import KIND_ATTACK, KIND_SHED, WriteAheadLog
from repro.pipeline.runner import RetryPolicy


def attack(i: int) -> dict:
    return {
        "source": "telescope",
        "target": (10 << 24) + (i % 999),
        "start_ts": float(i),
        "end_ts": float(i) + 30.0,
        "intensity": 50.0 + (i % 7),
    }


def wait_until(predicate, timeout: float = 15.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within timeout")


def make_service(data_dir, **overrides) -> LiveIngestService:
    config = ServeConfig(
        data_dir=data_dir,
        queue_size=overrides.pop("queue_size", 4096),
        snapshot_every_events=overrides.pop("snapshot_every_events", 10_000),
        **overrides,
    )
    return LiveIngestService(config, metrics=MetricsRegistry())


def start_http(service):
    server = ServeHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, f"http://127.0.0.1:{server.server_address[1]}"


def stop_http(server):
    server.shutdown()
    server.server_close()


# -- WAL shipping primitives ---------------------------------------------------


def test_segment_sizes_and_read_chunk_round_trip(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal", metrics=MetricsRegistry())
    for seq in range(1, 6):
        wal.append(seq, KIND_ATTACK, attack(seq))
    wal.rotate(6)
    for seq in range(6, 9):
        wal.append(seq, KIND_ATTACK, attack(seq))
    wal.flush()

    sizes = wal.segment_sizes()
    assert [first for first, _size in sizes] == [1, 6]
    assert all(size > 0 for _first, size in sizes)
    assert wal.oldest_seq() == 1

    # Chunked reads reassemble the exact segment bytes at any chunk size.
    for first, size in sizes:
        whole = wal.read_chunk(first, 0, max_bytes=size)
        pieces, offset = [], 0
        while offset < size:
            piece = wal.read_chunk(first, offset, max_bytes=7)
            pieces.append(piece)
            offset += len(piece)
        assert b"".join(pieces) == whole
        assert len(whole) == size
    assert wal.read_chunk(999, 0) is None  # no such segment
    with pytest.raises(ValueError):
        wal.read_chunk(1, -1)
    with pytest.raises(ValueError):
        wal.read_chunk(1, 0, max_bytes=0)


def test_replay_upto_sheds_via_whole_log_tombstones(tmp_path):
    """A tombstone *beyond* the cut still sheds a record below it."""
    wal = WriteAheadLog(tmp_path / "wal", metrics=MetricsRegistry())
    for seq in range(1, 6):
        wal.append(seq, KIND_ATTACK, attack(seq))
    wal.append(6, KIND_SHED, {"seqs": [4], "feed": "telescope"})
    wal.flush()

    records, report = wal.replay(after_seq=0, upto_seq=4)
    assert [r.seq for r in records] == [1, 2, 3]
    assert report.shed_seqs == 1
    # The untruncated replay agrees about seq 4.
    full, _report = wal.replay(after_seq=0)
    assert [r.seq for r in full] == [1, 2, 3, 5]


def test_prune_boundary_and_newest_segment_guard(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal", metrics=MetricsRegistry())
    for seq in range(1, 11):
        wal.append(seq, KIND_ATTACK, attack(seq))
        if seq % 5 == 0:
            wal.rotate(seq + 1)
    # Segments: 1..5, 6..10, and the empty tail at 11.
    assert [f for f, _s in wal.segment_sizes()] == [1, 6, 11]

    # A snapshot at 5 covers exactly segment 1: only it may go.
    assert wal.prune(upto_seq=5) == 1
    assert wal.oldest_seq() == 6
    # A snapshot at 4 would cover nothing removable.
    assert wal.prune(upto_seq=4) == 0

    # Regression (prune racing rotation): even a snapshot covering
    # *everything* must leave the newest segment on disk — a rotation
    # racing the scan may be about to continue it.
    wal.close()
    fresh = WriteAheadLog(tmp_path / "wal", metrics=MetricsRegistry())
    assert fresh.prune(upto_seq=10_000) == 1  # removes 6..10, keeps 11
    assert [f for f, _s in fresh.segment_sizes()] == [11]


# -- durable cluster identity and cursor ---------------------------------------


def test_cluster_state_round_trip_and_validation(tmp_path):
    state = ClusterState(role=ROLE_REPLICA, epoch=3,
                         primary_url="http://127.0.0.1:1")
    state.save(tmp_path)
    loaded = ClusterState.load(tmp_path)
    assert loaded == state
    # No temp droppings from the atomic write.
    assert [p.name for p in tmp_path.iterdir()] == [CLUSTER_FILE]

    with pytest.raises(ValueError):
        ClusterState.from_dict({"role": "king", "epoch": 1})
    with pytest.raises(ValueError):
        ClusterState.from_dict({"role": ROLE_PRIMARY, "epoch": 0})
    with pytest.raises(ValueError):
        ClusterState.from_dict({"role": ROLE_PRIMARY, "epoch": True})

    (tmp_path / CLUSTER_FILE).write_text("{torn", encoding="utf-8")
    assert ClusterState.load(tmp_path) is None


def test_shipper_cursor_round_trip_and_distrust(tmp_path):
    cursor = ShipperCursor(
        epoch=2, committed_seq=40, offsets={1: 100, 21: 55},
        primary_url="http://127.0.0.1:1", bootstraps=1,
    )
    cursor.save(tmp_path)
    loaded = ShipperCursor.load(tmp_path)
    assert loaded == cursor
    assert [p.name for p in tmp_path.iterdir()] == [CURSOR_FILE]

    # A cursor claiming more than the recovered WAL holds must not seed
    # resume offsets — refetching is safe, skipping is not.
    service = make_service(tmp_path / "svc")
    service.start()
    try:
        shipper = WalShipper(service, "http://127.0.0.1:1",
                             metrics=MetricsRegistry())
        shipper.resume_from(loaded, recovered_seq=10)
        assert shipper.committed_seq == 10
        assert shipper.known_epoch == 2
        assert shipper._stable_offsets == {}
        # And a trustworthy cursor does seed them.
        trusted = WalShipper(service, "http://127.0.0.1:1",
                             metrics=MetricsRegistry())
        trusted.resume_from(loaded, recovered_seq=40)
        assert trusted._stable_offsets == {1: 100, 21: 55}
    finally:
        service.stop()


def test_endpoint_file_written_atomically(tmp_path):
    write_endpoint_file(tmp_path, "127.0.0.1", 4242, 77)
    assert read_endpoint_file(tmp_path) == {
        "host": "127.0.0.1", "port": 4242, "pid": 77,
    }
    assert [p.name for p in tmp_path.iterdir()] == [ENDPOINT_FILE]


# -- cluster protocol ----------------------------------------------------------


def test_follower_converges_promotes_and_fences(tmp_path):
    primary = make_service(tmp_path / "primary")
    primary.start()
    server, url = start_http(primary)
    follower = make_service(
        tmp_path / "follower", replica_of=url, follower_id="f1",
        poll_interval_s=0.05,
    )
    try:
        for i in range(0, 60, 12):
            result = primary.submit(
                "telescope", KIND_ATTACK, [attack(j) for j in range(i, i + 12)]
            )
            assert result.accepted == 12
        assert primary.quiesce(timeout=20)

        follower.start()
        wait_until(lambda: follower.applied_seq >= 60)
        assert follower.store.state_digest() == primary.store.state_digest()
        assert follower.shipper is not None
        assert follower.shipper.lag() == 0

        # Writes are refused with the primary's address attached.
        refused = follower.submit("telescope", KIND_ATTACK, [attack(999)])
        assert refused.read_only
        assert refused.primary_url == url
        assert refused.accepted == 0

        # The primary sees the follower's piggybacked cursor on the poll
        # after the commit.
        wait_until(
            lambda: primary.replication_status()["followers"]
            .get("f1", {}).get("committed_seq", 0) >= 60
        )
        assert primary.replication_status()["stable_seq"] == 60

        # Promotion: epoch bumps, writes open up, shipper stops.
        promoted = follower.promote()
        assert promoted["promoted"]
        assert promoted["epoch"] == 2
        assert follower.cluster.role == ROLE_PRIMARY
        assert not follower.shipper.running
        accepted = follower.submit("telescope", KIND_ATTACK, [attack(999)])
        assert accepted.accepted == 1
        # Promoting again is a no-op, not another epoch.
        assert not follower.promote()["promoted"]
        assert follower.cluster.epoch == 2

        # The old primary: fenced by the newer epoch, refuses the stale one.
        assert primary.fence(2, primary_url="http://new")
        assert primary.cluster.role == ROLE_FENCED
        fenced = primary.submit("telescope", KIND_ATTACK, [attack(1000)])
        assert fenced.read_only
        assert fenced.primary_url == "http://new"
        assert not primary.fence(2)  # not strictly newer
        assert not primary.fence(1)
        assert primary.cluster.epoch == 2
    finally:
        follower.stop()
        stop_http(server)
        primary.stop()


def test_follower_restart_resumes_from_cursor(tmp_path):
    primary = make_service(tmp_path / "primary")
    primary.start()
    server, url = start_http(primary)
    fdir = tmp_path / "follower"
    try:
        primary.submit("telescope", KIND_ATTACK,
                       [attack(i) for i in range(30)])
        assert primary.quiesce(timeout=20)

        follower = make_service(fdir, replica_of=url, follower_id="f1",
                                poll_interval_s=0.05)
        follower.start()
        wait_until(lambda: follower.applied_seq >= 30)
        follower.stop()  # hard stop: no drain

        primary.submit("telescope", KIND_ATTACK,
                       [attack(i) for i in range(30, 50)])
        assert primary.quiesce(timeout=20)

        resumed = make_service(fdir, replica_of=url, follower_id="f1",
                               poll_interval_s=0.05)
        info = resumed.start()
        assert info.replayed == 30  # local WAL replayed, not refetched
        wait_until(lambda: resumed.applied_seq >= 50)
        assert resumed.store.state_digest() == primary.store.state_digest()
        resumed.stop()
    finally:
        stop_http(server)
        primary.stop()


def test_shed_under_replication_keeps_digests_equal(tmp_path):
    """Drop-oldest sheds on the primary must not reach follower state."""
    primary = make_service(
        tmp_path / "primary", queue_size=8, high_watermark=7,
        low_watermark=2, apply_delay=0.02,
    )
    primary.start()
    server, url = start_http(primary)
    follower = make_service(
        tmp_path / "follower", replica_of=url, follower_id="f1",
        poll_interval_s=0.05,
    )
    follower.start()
    try:
        for i in range(6):
            primary.submit(
                "telescope", KIND_ATTACK,
                [attack(i * 6 + j) for j in range(6)],
            )
        assert primary.quiesce(timeout=30)
        assert sum(primary.dropped_by_feed.values()) > 0, "must actually shed"
        wait_until(
            lambda: follower.shipper.committed_seq >= primary.applied_seq
        )
        assert follower.store.state_digest() == primary.store.state_digest()
    finally:
        follower.stop()
        stop_http(server)
        primary.stop()


def test_late_follower_bootstraps_from_snapshot(tmp_path):
    """A fresh follower behind the pruned WAL catches up via snapshot."""
    primary = make_service(
        tmp_path / "primary", snapshot_every_events=10, apply_batch=5,
    )
    primary.start()
    server, url = start_http(primary)
    try:
        # Quiesce between chunks so the rolling snapshots rotate the WAL
        # *between* appends — only then do old segments become prunable.
        for chunk in range(6):
            primary.submit(
                "telescope", KIND_ATTACK,
                [attack(i) for i in range(chunk * 10, chunk * 10 + 10)],
            )
            assert primary.quiesce(timeout=20)
        wait_until(lambda: primary.wal.oldest_seq() > 1)

        follower = make_service(
            tmp_path / "follower", replica_of=url, follower_id="late",
            poll_interval_s=0.05,
        )
        follower.start()
        try:
            wait_until(lambda: follower.applied_seq >= primary.applied_seq)
            assert follower.shipper.bootstraps >= 1
            assert (
                follower.store.state_digest() == primary.store.state_digest()
            )
            # The bootstrap survives a restart: local snapshot + WAL
            # replay land back on the same state.
            follower.stop()
            again = make_service(
                tmp_path / "follower", replica_of=url, follower_id="late",
                poll_interval_s=0.05,
            )
            again.start()
            wait_until(lambda: again.applied_seq >= primary.applied_seq)
            assert again.store.state_digest() == primary.store.state_digest()
            again.stop()
        finally:
            follower.stop()
    finally:
        stop_http(server)
        primary.stop()


def test_sync_replicas_times_out_without_followers(tmp_path):
    primary = make_service(
        tmp_path / "primary", sync_replicas=1, sync_timeout_s=0.2,
        retry_after=0.5,
    )
    primary.start()
    server, url = start_http(primary)
    try:
        result = primary.submit("telescope", KIND_ATTACK, [attack(1)])
        # Locally durable but the replication guarantee failed: 503 path.
        assert result.reasons.get("sync-timeout") == 1
        assert result.retry_after == 0.5

        follower = make_service(
            tmp_path / "follower", replica_of=url, follower_id="f1",
            poll_interval_s=0.05,
        )
        follower.start()
        try:
            wait_until(
                lambda: primary.replication_status()["followers"].get("f1")
                is not None
            )
            confirmed = primary.submit("telescope", KIND_ATTACK, [attack(2)])
            assert confirmed.accepted == 1
            assert "sync-timeout" not in confirmed.reasons
        finally:
            follower.stop()
    finally:
        stop_http(server)
        primary.stop()


# -- client --------------------------------------------------------------------


class ScriptedTransport:
    """Replaces ServeClient._exchange with a canned response sequence."""

    def __init__(self, steps):
        self.steps = list(steps)
        self.calls = []

    def __call__(self, method, endpoint, path, body, trace=None):
        self.calls.append((method, endpoint, path))
        if not self.steps:
            raise AssertionError("transport script exhausted")
        step = self.steps.pop(0)
        if isinstance(step, Exception):
            raise step
        status, payload = step
        return ClientResponse(status=status, body=payload, endpoint=endpoint)


def scripted_client(steps, endpoints=("http://a", "http://b")):
    sleeps = []
    client = ServeClient(
        list(endpoints),
        retry=RetryPolicy(max_attempts=4, backoff_base=0.01,
                          backoff_max=0.05, jitter=False),
        sleep=sleeps.append,
    )
    transport = ScriptedTransport(steps)
    client._exchange = transport
    return client, transport, sleeps


def test_client_honors_retry_after_on_503():
    client, transport, sleeps = scripted_client([
        (503, {"retry_after": 1.25, "reasons": {"shedding": 1}}),
        (202, {"accepted": 1}),
    ])
    response = client.request("POST", "/ingest/attacks", {"records": []})
    assert response.status == 202
    assert sleeps and sleeps[0] >= 1.25  # header wins over backoff
    assert client.retries == 1


def test_client_fails_over_on_connection_error():
    client, transport, sleeps = scripted_client([
        OSError("connection refused"),
        (200, {"ok": True}),
    ])
    response = client.request("GET", "/stats")
    assert response.ok
    # The second attempt went to the other endpoint.
    assert [endpoint for _m, endpoint, _p in transport.calls] == [
        "http://a", "http://b",
    ]
    assert client.failovers == 1


def test_client_redirects_on_read_only_hint():
    client, transport, sleeps = scripted_client([
        (409, {"read_only": True, "primary_url": "http://c"}),
        (202, {"accepted": 1}),
    ])
    response = client.request("POST", "/ingest/attacks", {"records": []})
    assert response.status == 202
    assert transport.calls[-1][1] == "http://c"
    assert client.redirects == 1
    assert not sleeps  # redirects re-aim immediately
    assert client.active_endpoint == "http://c"


def test_client_pinned_endpoint_never_redirects():
    client, transport, _sleeps = scripted_client([
        (409, {"read_only": True, "primary_url": "http://c"}),
    ])
    response = client.request(
        "POST", "/ingest/attacks", {"records": []}, endpoint="http://b"
    )
    assert response.status == 409  # returned as-is, no follow
    assert transport.calls == [("POST", "http://b", "/ingest/attacks")]


def test_client_exhausts_budget_with_last_error():
    client, _transport, _sleeps = scripted_client(
        [OSError("boom")] * 4
    )
    with pytest.raises(ServeClientError) as excinfo:
        client.request("GET", "/stats")
    assert "boom" in str(excinfo.value)
