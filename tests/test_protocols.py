"""Unit tests for the protocol/port registries."""

from repro.net.packet import PROTO_TCP, PROTO_UDP
from repro.net.protocols import (
    PORT_SERVICES,
    REFLECTION_PROTOCOLS,
    is_web_port,
    reflection_protocol_for_port,
    service_for_port,
)


class TestReflectionProtocols:
    def test_eight_amppot_protocols(self):
        assert set(REFLECTION_PROTOCOLS) == {
            "QOTD", "CharGen", "DNS", "NTP", "SSDP", "MSSQL", "RIPv1", "TFTP"
        }

    def test_all_amplify(self):
        assert all(p.amplification > 1.0 for p in REFLECTION_PROTOCOLS.values())

    def test_ntp_has_highest_amplification(self):
        ntp = REFLECTION_PROTOCOLS["NTP"]
        assert all(
            ntp.amplification >= p.amplification
            for p in REFLECTION_PROTOCOLS.values()
        )

    def test_reflected_bytes_scales_with_requests(self):
        dns = REFLECTION_PROTOCOLS["DNS"]
        assert dns.reflected_bytes(100) == 100 * dns.request_size * dns.amplification // 1

    def test_well_known_ports(self):
        assert REFLECTION_PROTOCOLS["NTP"].port == 123
        assert REFLECTION_PROTOCOLS["DNS"].port == 53
        assert REFLECTION_PROTOCOLS["CharGen"].port == 19
        assert REFLECTION_PROTOCOLS["SSDP"].port == 1900

    def test_reverse_lookup(self):
        assert reflection_protocol_for_port(123).name == "NTP"
        assert reflection_protocol_for_port(9999) is None


class TestServiceMapping:
    def test_http_and_https(self):
        assert service_for_port(PROTO_TCP, 80) == "HTTP"
        assert service_for_port(PROTO_TCP, 443) == "HTTPS"

    def test_mysql_on_both_protocols(self):
        assert service_for_port(PROTO_TCP, 3306) == "MySQL"
        assert service_for_port(PROTO_UDP, 3306) == "MySQL"

    def test_game_ports_keep_numeric_label(self):
        assert service_for_port(PROTO_UDP, 27015) == "27015"

    def test_unknown_port_maps_to_number(self):
        assert service_for_port(PROTO_TCP, 54321) == "54321"

    def test_web_ports(self):
        assert is_web_port(80)
        assert is_web_port(443)
        assert not is_web_port(8080)

    def test_registry_is_keyed_by_protocol(self):
        assert (PROTO_TCP, 80) in PORT_SERVICES
        assert (PROTO_UDP, 80) not in PORT_SERVICES
