"""Unit tests for the durable checkpoint store and atomic file primitives."""

import json
import os
from random import Random

import pytest

from repro.store.atomic import atomic_write_bytes, atomic_write_text
from repro.store.checkpoint import (
    STORE_SCHEMA_VERSION,
    CheckpointCorruptionError,
    CheckpointMissingError,
    CheckpointStore,
    CheckpointVersionError,
    UNSIZED,
)

ORDER = ("alpha", "beta", "gamma")


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "run")


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"
        atomic_write_text(path, "text now")
        assert path.read_text() == "text now"

    def test_failed_replace_cleans_temp(self, tmp_path, monkeypatch):
        def boom(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", boom)
        path = tmp_path / "blob.bin"
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"data")
        assert list(tmp_path.iterdir()) == []

    def test_successful_replace_never_unlinks_foreign_temp(
        self, tmp_path, monkeypatch
    ):
        """A concurrent writer's fresh temp file survives our cleanup."""
        real_replace = os.replace
        path = tmp_path / "blob.bin"
        tmp = tmp_path / "blob.bin.tmp"

        def replace_then_race(src, dst):
            real_replace(src, dst)
            tmp.write_bytes(b"concurrent writer's temp")

        monkeypatch.setattr(os, "replace", replace_then_race)
        atomic_write_bytes(path, b"ours")
        assert path.read_bytes() == b"ours"
        assert tmp.read_bytes() == b"concurrent writer's temp"


class TestSaveLoad:
    def test_roundtrip_with_manifest(self, store):
        payload = {"events": list(range(100))}
        manifest = store.save("alpha", payload)
        assert manifest.schema_version == STORE_SCHEMA_VERSION
        assert manifest.payload_bytes > 0
        assert len(manifest.sha256) == 64
        assert manifest.record_count == 1  # dict of one key
        assert store.load("alpha") == payload

    def test_record_count_shapes(self, store):
        assert store.save("a", [1, 2, 3]).record_count == 3
        assert store.save("b", ([1, 2], [3])).record_count == 3
        assert store.save("c", 42).record_count == UNSIZED
        assert store.save("d", ([1], 5)).record_count == UNSIZED

    def test_missing_checkpoint(self, store):
        assert not store.has("alpha")
        with pytest.raises(CheckpointMissingError):
            store.load("alpha")

    def test_manifest_without_payload(self, store):
        store.save("alpha", [1])
        store.payload_path("alpha").unlink()
        with pytest.raises(CheckpointMissingError):
            store.load("alpha")

    def test_discard_and_stages(self, store):
        store.save("alpha", [1])
        store.save("beta", [2])
        assert store.stages() == ["alpha", "beta"]
        store.discard("alpha")
        assert store.stages() == ["beta"]
        store.discard("alpha")  # idempotent

    def test_overwrite_updates_manifest(self, store):
        first = store.save("alpha", [1])
        second = store.save("alpha", [1, 2, 3, 4])
        assert second.sha256 != first.sha256
        assert store.load("alpha") == [1, 2, 3, 4]


class TestCorruptionDetection:
    def test_any_single_byte_corruption_detected(self, store):
        """Property: save -> corrupt one byte -> load raises, never lies."""
        payload = {"records": [(i, i * 3.5) for i in range(200)]}
        store.save("alpha", payload)
        path = store.payload_path("alpha")
        pristine = path.read_bytes()
        rng = Random(1234)
        for offset in rng.sample(range(len(pristine)), 25):
            data = bytearray(pristine)
            data[offset] ^= 1 << rng.randint(0, 7)
            path.write_bytes(bytes(data))
            with pytest.raises(CheckpointCorruptionError):
                store.load("alpha")
        path.write_bytes(pristine)
        assert store.load("alpha") == payload

    def test_truncated_payload_detected(self, store):
        store.save("alpha", list(range(1000)))
        path = store.payload_path("alpha")
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(CheckpointCorruptionError):
            store.load("alpha")

    def test_garbage_manifest_detected(self, store):
        store.save("alpha", [1])
        store.manifest_path("alpha").write_text("{not json")
        with pytest.raises(CheckpointCorruptionError):
            store.load("alpha")

    def test_version_skew_detected(self, store):
        store.save("alpha", [1])
        manifest_path = store.manifest_path("alpha")
        data = json.loads(manifest_path.read_text())
        data["schema_version"] = STORE_SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(data))
        with pytest.raises(CheckpointVersionError):
            store.load("alpha")


class TestValidPrefix:
    def test_full_prefix(self, store):
        for i, stage in enumerate(ORDER):
            store.save(stage, [i])
        payloads, issues = store.load_valid_prefix(ORDER)
        assert list(payloads) == list(ORDER)
        assert issues == []

    def test_stops_at_first_gap_and_discards_orphans(self, store):
        store.save("alpha", [0])
        store.save("gamma", [2])  # beta missing: gamma is untrustworthy
        payloads, issues = store.load_valid_prefix(ORDER)
        assert list(payloads) == ["alpha"]
        assert [(i.stage, i.kind) for i in issues] == [("gamma", "orphaned")]
        assert not store.has("gamma")

    def test_corrupt_checkpoint_falls_back_to_previous_stage(self, store):
        for i, stage in enumerate(ORDER):
            store.save(stage, [i])
        path = store.payload_path("beta")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        payloads, issues = store.load_valid_prefix(ORDER)
        assert list(payloads) == ["alpha"]
        kinds = {issue.stage: issue.kind for issue in issues}
        assert kinds == {"beta": "corrupt", "gamma": "orphaned"}
        # Both rejected checkpoints are gone; alpha remains trustworthy.
        assert store.stages() == ["alpha"]

    def test_empty_store(self, store):
        payloads, issues = store.load_valid_prefix(ORDER)
        assert payloads == {} and issues == []


class TestRunDocuments:
    def test_json_roundtrip(self, store):
        store.write_json("meta.json", {"preset": "small", "seed": 7})
        assert store.read_json("meta.json") == {"preset": "small", "seed": 7}

    def test_missing_or_garbage_reads_none(self, store):
        assert store.read_json("absent.json") is None
        (store.run_dir / "bad.json").write_text("{oops")
        assert store.read_json("bad.json") is None
