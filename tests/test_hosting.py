"""Unit tests for the hosting ecosystem."""

import random

import pytest

from repro.internet.hosting import (
    HostingConfig,
    HostingEcosystem,
    TIER_GIANT,
)
from repro.internet.topology import InternetTopology, TopologyConfig


@pytest.fixture(scope="module")
def world():
    topology = InternetTopology.generate(TopologyConfig(seed=21, n_ases=80))
    ecosystem = HostingEcosystem.generate(topology, HostingConfig(seed=22))
    return topology, ecosystem


class TestGeneration:
    def test_named_platforms_exist(self, world):
        _, ecosystem = world
        for name in ("GoDaddy", "Wix", "Squarespace", "OVH", "eNom"):
            assert ecosystem.hoster_by_name(name) is not None

    def test_wix_hosts_in_aws_space(self, world):
        topology, ecosystem = world
        wix = ecosystem.hoster_by_name("Wix")
        aws = topology.as_by_name("Amazon AWS")
        assert wix.hosted_in == "Amazon AWS"
        assert wix.cname_suffix  # only identifiable via CNAME
        for ip in wix.ips:
            assert topology.routing.origin_asn(ip) == aws.asn

    def test_native_platform_in_own_space(self, world):
        topology, ecosystem = world
        godaddy = ecosystem.hoster_by_name("GoDaddy")
        assert godaddy.cname_suffix is None
        home = topology.as_by_name("GoDaddy")
        for ip in godaddy.ips:
            assert topology.routing.origin_asn(ip) == home.asn

    def test_giant_tier_pool_and_skew(self, world):
        _, ecosystem = world
        godaddy = ecosystem.hoster_by_name("GoDaddy")
        assert godaddy.tier == TIER_GIANT
        # Zipf load: the head of the pool carries far more than the tail.
        weights = godaddy.ip_weights()
        assert weights[0] > 10 * weights[-1]

    def test_anonymous_hosters_generated(self, world):
        _, ecosystem = world
        anonymous = [h for h in ecosystem.hosters if h.name.startswith("hoster")]
        assert anonymous

    def test_all_hosters_have_ns_and_mail(self, world):
        _, ecosystem = world
        for hoster in ecosystem.hosters:
            assert hoster.ns_names
            assert hoster.mail_ips


class TestPlacement:
    def test_choose_placement_mixes_self_and_hosted(self, world):
        _, ecosystem = world
        rng = random.Random(1)
        picks = [ecosystem.choose_placement(rng) for _ in range(600)]
        self_hosted = sum(1 for p in picks if p is None)
        assert 0 < self_hosted < 600

    def test_giants_attract_more_domains_than_small(self, world):
        _, ecosystem = world
        rng = random.Random(2)
        counts = {}
        for _ in range(3000):
            hoster = ecosystem.choose_placement(rng)
            if hoster is not None:
                counts[hoster.tier] = counts.get(hoster.tier, 0) + 1
        assert counts[TIER_GIANT] == max(counts.values())

    def test_self_hosted_ips_unique(self, world):
        _, ecosystem = world
        rng = random.Random(3)
        ips = [ecosystem.allocate_self_hosted_ip(rng) for _ in range(300)]
        assert len(set(ips)) == 300

    def test_self_hosted_ips_in_isp_space(self, world):
        topology, ecosystem = world
        rng = random.Random(4)
        ip = ecosystem.allocate_self_hosted_ip(rng)
        asn = topology.routing.origin_asn(ip)
        autonomous_system = topology.as_by_asn(asn)
        assert autonomous_system.kind in ("isp", "enterprise")

    def test_all_hosting_ips_cover_every_hoster(self, world):
        _, ecosystem = world
        ips = set(ecosystem.all_hosting_ips())
        for hoster in ecosystem.hosters:
            assert set(hoster.ips) <= ips
