#!/usr/bin/env python3
"""Regenerate the paper's entire evaluation section in one run.

Simulates a scenario and prints every table and figure (Tables 1-9,
Figures 1-11, the joint-attack study and the Section 8 extensions) in paper
order. Equivalent to ``python -m repro --preset default report``.

Usage::

    python examples/reproduce_paper.py [small|default|paper] [out_dir]
"""

import sys
from pathlib import Path

from repro import ScenarioConfig, run_simulation
from repro.pipeline.fullreport import REPORT_ORDER, generate_full_report

PRESETS = {
    "small": ScenarioConfig.small,
    "default": ScenarioConfig.default,
    "paper": ScenarioConfig.paper,
}


def main() -> None:
    preset = sys.argv[1] if len(sys.argv) > 1 else "default"
    out_dir = Path(sys.argv[2]) if len(sys.argv) > 2 else None
    config = PRESETS[preset]()
    print(f"Simulating the '{preset}' scenario "
          f"({config.n_days} days, {config.n_domains} domains)...",
          file=sys.stderr)
    result = run_simulation(config)
    report = generate_full_report(result)

    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        for name in REPORT_ORDER:
            (out_dir / f"{name}.txt").write_text(
                report[name] + "\n", encoding="utf-8"
            )
        print(f"wrote {len(REPORT_ORDER)} artifacts to {out_dir}",
              file=sys.stderr)
        return

    for name in REPORT_ORDER:
        print(report[name])
        print()


if __name__ == "__main__":
    main()
