#!/usr/bin/env python3
"""Section 5 walkthrough: the effect of attacks on the Web.

Joins attack events against the active-DNS hosting index to reproduce the
co-hosting histogram (Figure 6), the daily affected-site series (Figure 7),
and the paper's peak-day investigation — identifying which hosting platforms
sat behind the biggest attack waves.

Usage::

    python examples/web_impact.py
"""

from collections import Counter

import numpy as np

from repro import ScenarioConfig, run_simulation
from repro.core.attribution import TargetAttributor
from repro.core.cohosting import cohosting_bins, web_hosting_target_count
from repro.core.intensity import IntensityModel
from repro.core.report import render_cohosting
from repro.core.webmap import WebImpactAnalysis, sites_alive_per_day
from repro.net.addressing import format_ipv4




def main() -> None:
    result = run_simulation(ScenarioConfig.default())
    fused = result.fused
    impact = WebImpactAnalysis(result.web_index)
    events = fused.combined.events

    associations = impact.associate(events)
    hosting_targets = web_hosting_target_count(associations)
    print(f"Targeted IPs hosting at least one Web site: {hosting_targets} "
          f"of {len(fused.combined.unique_targets())} "
          f"({hosting_targets / len(fused.combined.unique_targets()):.0%}; "
          f"paper: 9%)")
    print()
    print(render_cohosting(cohosting_bins(associations)))
    print()

    affected = impact.unique_affected_sites(events)
    total = result.openintel.total_web_sites
    print(f"Web sites on attacked IPs over the window: {len(affected)} "
          f"of {total} ({len(affected) / total:.0%}; paper: 64%)")

    alive = sites_alive_per_day(result.openintel.first_seen, result.n_days)
    counts, fractions = impact.daily_affected(events, result.n_days, alive)
    print(f"Daily average: {counts.mean():.0f} sites "
          f"({fractions.mean():.1%} of the namespace; paper: ~3%)")

    # Medium+-intensity subset (Figure 7, bottom panel).
    model = IntensityModel(fused.combined.events)
    medium = model.medium_plus(events)
    medium_counts, medium_fractions = impact.daily_affected(
        medium, result.n_days, alive
    )
    print(f"Medium+-intensity subset: {medium_counts.mean():.0f} sites/day "
          f"({medium_fractions.mean():.1%}; paper: ~1.3%)")
    print()

    # Investigate the four biggest peaks, as Section 5 does: the
    # attributor uses CNAME evidence first (Wix-in-AWS), then NS, then BGP.
    attributor = TargetAttributor(result.zones, result.topology, result.providers)
    print("Peak-day investigation (who was behind the biggest waves):")
    peak_days = np.argsort(counts)[-4:][::-1]
    for day in peak_days:
        day_events = [e for e in events if e.start_day == day]
        platforms: Counter = Counter()
        sample_ips = {}
        for event in day_events:
            sites = result.web_index.count_on(event.target, day)
            if sites == 0:
                continue
            attribution = attributor.attribute(event.target)
            platforms[attribution.party] += sites
            sample_ips.setdefault(attribution.party, event.target)
        top = ", ".join(
            f"{name} ({sites} sites, e.g. {format_ipv4(sample_ips[name])})"
            for name, sites in platforms.most_common(3)
        )
        print(f"  day {day:3d}: {counts[day]:5d} sites affected -> {top}")
    print()
    print("Most attacked parties over the whole window:")
    for party, n_events in attributor.top_attacked_parties(events, top_n=5):
        print(f"  {party}: {n_events} events")


if __name__ == "__main__":
    main()
