#!/usr/bin/env python3
"""Quickstart: simulate the DoS ecosystem and print the headline results.

Runs the full pipeline at small scale (seconds) and reproduces the paper's
top-line findings: the Table 1 summary, the share of active /24 networks
attacked, and the share of Web sites hosted on attacked addresses.

Usage::

    python examples/quickstart.py [seed]
"""

import sys

from repro import ScenarioConfig, run_simulation
from repro.core.report import render_table1
from repro.core.taxonomy import classify_sites, taxonomy_counts
from repro.core.webmap import WebImpactAnalysis


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    config = ScenarioConfig.small().with_seed(seed)
    print(f"Simulating {config.n_days} days, {config.n_domains} domains "
          f"(seed {config.seed})...")
    result = run_simulation(config)

    print()
    print(render_table1(result.fused.summary_rows()))

    attacked_fraction = result.census.attacked_fraction(
        result.fused.combined.unique_slash24s()
    )
    print()
    print(f"Active /24 networks attacked at least once: "
          f"{attacked_fraction:.1%} (paper: ~33% over two years)")

    impact = WebImpactAnalysis(result.web_index)
    histories = impact.site_histories(result.fused.combined.events)
    first_attack = {d: h.first_attack_day() for d, h in histories.items()}
    counts = taxonomy_counts(
        classify_sites(
            result.openintel.first_seen,
            first_attack,
            result.dps_usage.first_day_by_domain(),
        )
    )
    print(f"Web sites hosted on attacked IPs during the window: "
          f"{counts.attacked_fraction:.1%} (paper: 64%)")
    print(f"Attacked sites that migrated to a DPS afterwards:   "
          f"{counts.attacked_migrating_fraction:.2%} (paper: 4.31%)")

    joint = result.fused.joint_targets()
    print(f"Targets hit simultaneously by both attack types:    "
          f"{len(joint)} of {len(result.fused.shared_targets())} shared")


if __name__ == "__main__":
    main()
