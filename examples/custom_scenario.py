#!/usr/bin/env python3
"""Compose a custom scenario and persist/reload the event data sets.

Demonstrates the configuration surface: a bespoke attack wave against one
hosting platform, stricter detection thresholds, JSON-Lines persistence of
the observed events, and re-running an analysis from the saved file alone —
the workflow a measurement group would use to decouple collection from
analysis.

Usage::

    python examples/custom_scenario.py [output.jsonl]
"""

import sys
import tempfile
from dataclasses import replace
from pathlib import Path

from repro import ScenarioConfig, run_simulation
from repro.attacks.schedule import SpikeEvent
from repro.core.events import AttackDataset, SOURCE_TELESCOPE
from repro.core.fusion import FusedDataset
from repro.core.rankings import country_ranking
from repro.core.report import render_table1, render_table4
from repro.pipeline.datasets import load_events_jsonl, save_events_jsonl
from repro.pipeline.simulation import run_simulation as run


def main() -> None:
    out_path = Path(
        sys.argv[1]
        if len(sys.argv) > 1
        else Path(tempfile.gettempdir()) / "dos_events.jsonl"
    )

    # A scenario dominated by one sustained campaign against OVH, the
    # hoster whose 2016 bombardment the paper repeatedly references.
    config = ScenarioConfig.small().with_seed(7)
    schedule = config.schedule_config()
    ovh_campaign = SpikeEvent(
        day_fraction=0.5,
        hoster_names=("OVH",),
        n_attacks=120,
        intensity_multiplier=20.0,
        joint=True,
        label="OVH campaign",
    )
    schedule = replace(schedule, spikes=(ovh_campaign,))

    # Monkey-free composition: ScenarioConfig derives component configs, so
    # a custom run just calls the pipeline pieces with overrides. The
    # simplest override point is a subclass-free copy of the config methods:
    class CustomConfig(ScenarioConfig):
        def schedule_config(self):  # noqa: D102 - narrow override
            return schedule

    result = run(CustomConfig(**vars(config)))

    print(render_table1(result.fused.summary_rows()))
    print()
    ovh = result.ecosystem.hoster_by_name("OVH")
    ovh_events = [
        e for e in result.fused.combined.events if e.target in set(ovh.ips)
    ]
    print(f"Events on OVH hosting addresses: {len(ovh_events)}")
    print()
    print(render_table4(country_ranking(result.fused.combined), "Combined"))
    print("(France rises with the OVH campaign, as in the paper.)")
    print()

    # Persist the observed events and re-analyze from the file alone.
    written = save_events_jsonl(result.fused.combined.events, out_path)
    print(f"Saved {written} events to {out_path}")
    reloaded = load_events_jsonl(out_path)
    telescope = AttackDataset(
        [e for e in reloaded if e.source == SOURCE_TELESCOPE],
        "Network Telescope",
    )
    honeypot = AttackDataset(
        [e for e in reloaded if e.source != SOURCE_TELESCOPE],
        "Amplification Honeypot",
    )
    refused = FusedDataset(telescope, honeypot)
    assert refused.summary_rows() == result.fused.summary_rows()
    print("Reloaded data set reproduces the original summary — "
          "collection and analysis are fully decoupled.")


if __name__ == "__main__":
    main()
