#!/usr/bin/env python3
"""Drive the two detection pipelines directly, without the full simulator.

Shows the library-level API: hand-craft a capture for the telescope's RSDoS
detector (backscatter vs scan noise, the Moore et al. filters) and a request
log for the AmpPot event extractor (attack floods vs reflector scans), then
inspect the classified events. Useful as a template for plugging in your own
traffic sources.

Usage::

    python examples/detector_playground.py
"""

from repro.honeypot.amppot import RequestBatch
from repro.honeypot.detection import DetectionConfig, HoneypotDetector
from repro.net.addressing import format_ipv4, parse_ipv4
from repro.net.packet import PROTO_TCP, PacketBatch, TCP_ACK, TCP_SYN
from repro.telescope.rsdos import RSDoSConfig, RSDoSDetector

VICTIM = parse_ipv4("203.0.113.7")
SCANNER = parse_ipv4("198.51.100.99")
GAMER = parse_ipv4("192.0.2.50")


def telescope_demo() -> None:
    print("== Telescope / RSDoS ==")
    capture = []
    # A SYN flood victim backscatters SYN/ACKs from port 80 for 5 minutes.
    for minute in range(5):
        capture.append(
            PacketBatch(
                timestamp=minute * 60.0,
                src=VICTIM,
                proto=PROTO_TCP,
                count=90,
                bytes=90 * 54,
                distinct_dsts=90,
                src_ports=frozenset({80}),
                tcp_flags=TCP_SYN | TCP_ACK,
            )
        )
    # A scanner sweeps the darknet with plain SYNs — not a response
    # signature, so the classifier must ignore it.
    capture.append(
        PacketBatch(
            timestamp=30.0,
            src=SCANNER,
            proto=PROTO_TCP,
            count=5000,
            bytes=5000 * 40,
            distinct_dsts=5000,
            tcp_flags=TCP_SYN,
        )
    )
    capture.sort(key=lambda b: b.timestamp)

    detector = RSDoSDetector(RSDoSConfig())
    events = list(detector.run(capture))
    for event in events:
        print(f"  attack on {format_ipv4(event.victim)}: "
              f"{event.packets} packets over {event.duration:.0f}s, "
              f"max {event.max_pps:.1f} pps at the telescope "
              f"(~{event.estimated_victim_pps:.0f} pps at the victim), "
              f"ports {event.ports}")
    print(f"  batches seen: {detector.batches_seen}, "
          f"backscatter: {detector.backscatter_batches}, "
          f"flows discarded: {detector.flows_discarded}")


def honeypot_demo() -> None:
    print("== Honeypot / AmpPot ==")
    log = []
    # An NTP reflection flood against the victim, seen by 3 honeypots.
    for honeypot in range(3):
        for minute in range(4):
            log.append(
                RequestBatch(
                    timestamp=minute * 60.0 + honeypot * 0.1,
                    victim=VICTIM,
                    honeypot_id=honeypot,
                    protocol="NTP",
                    count=1200,
                )
            )
    # A reflector scan: a handful of probes from the scanner's own address.
    log.append(
        RequestBatch(
            timestamp=10.0, victim=GAMER, honeypot_id=0,
            protocol="CharGen", count=4,
        )
    )
    log.sort(key=lambda b: b.timestamp)

    detector = HoneypotDetector(DetectionConfig())
    events = list(detector.run(log))
    for event in events:
        print(f"  {event.protocol} attack on {format_ipv4(event.victim)}: "
              f"{event.requests} requests via {event.honeypots} honeypots, "
              f"avg {event.avg_rps:.0f} req/s per reflector, "
              f"{event.duration:.0f}s")
    print(f"  flows discarded as scans/dribble: {detector.flows_discarded}")


if __name__ == "__main__":
    telescope_demo()
    print()
    honeypot_demo()
