#!/usr/bin/env python3
"""Section 8 extensions: attacks on mail and on the DNS itself.

The paper's future-work list proposes (a) quantifying the impact of DoS
attacks on mail infrastructure via MX records, and (b) mapping targeted
addresses to authoritative name servers to study attacks on the DNS. Both
are implemented in :mod:`repro.core.infra`; this example runs them and
shows the compound-exposure split (domains hit through Web hosting, through
their DNS provider, or through both).

Usage::

    python examples/infrastructure_impact.py
"""

from repro import ScenarioConfig, run_simulation
from repro.core.infra import dns_impact, mail_impact, shared_fate_domains
from repro.core.report import render_table
from repro.net.addressing import format_ipv4


def main() -> None:
    result = run_simulation(ScenarioConfig.default())
    events = result.fused.combined.events

    mail = mail_impact(events, result.openintel.mail_intervals)
    dns = dns_impact(events, result.openintel.ns_intervals)

    rows = [
        [
            impact.label,
            impact.attacked_infrastructure_ips,
            impact.events_with_impact,
            impact.affected_domains,
            f"{impact.affected_fraction:.1%}",
        ]
        for impact in (mail, dns)
    ]
    print(
        render_table(
            ["infrastructure", "attacked IPs", "events", "affected domains",
             "share of domains"],
            rows,
            title="Infrastructure impact (Section 8 extensions)",
        )
    )
    print()

    # The paper's observation: mail clusters serve enormous numbers of
    # domains — identify the most consequential attacked mail IP.
    from repro.core.infra import build_infra_index

    mail_index = build_infra_index(result.openintel.mail_intervals)
    worst_ip, worst_count = None, 0
    for event in events:
        count = mail_index.count_on(event.target, event.start_day)
        if count > worst_count:
            worst_ip, worst_count = event.target, count
    if worst_ip is not None:
        print(f"Most consequential attacked mail exchanger: "
              f"{format_ipv4(worst_ip)} ({worst_count} domains' mail)")

    fate = shared_fate_domains(
        events, result.web_index, result.openintel.ns_intervals
    )
    print()
    print("Exposure split among affected domains:")
    for kind, domains in fate.items():
        print(f"  {kind:5s}: {len(domains)} domains")
    print("(Domains in 'both' face compound risk: their Web hosting and "
          "their authoritative DNS were each attacked during the window.)")


if __name__ == "__main__":
    main()
