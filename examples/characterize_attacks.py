#!/usr/bin/env python3
"""Section 4 walkthrough: characterize two data sets of attack events.

Reproduces every Section 4 artifact on one simulated window: daily time
series (Figure 1), country rankings (Table 4), protocol mixes (Tables 5-6),
duration and intensity distributions (Figures 2-4), port analysis
(Tables 7-8), medium+-intensity series (Figure 5), and the joint-attack
correlation study.

Usage::

    python examples/characterize_attacks.py [--paper-scale]
"""

import sys

from repro import ScenarioConfig, run_simulation
from repro.core.distributions import (
    duration_cdf,
    intensity_cdf,
    per_protocol_intensity_cdfs,
)
from repro.core.intensity import IntensityModel
from repro.core.ports import (
    port_cardinality,
    service_table,
    web_infrastructure_share,
    web_port_comparison,
)
from repro.core.rankings import (
    country_ranking,
    ip_protocol_distribution,
    reflection_protocol_distribution,
)
from repro.core.report import (
    render_duration_cdf,
    render_intensity_cdf,
    render_series_summary,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
    render_table8,
)
from repro.core.timeseries import daily_series, figure1_series
from repro.net.packet import PROTO_TCP, PROTO_UDP


def main() -> None:
    config = (
        ScenarioConfig.paper()
        if "--paper-scale" in sys.argv
        else ScenarioConfig.default()
    )
    print(f"Simulating {config.n_days} days...")
    result = run_simulation(config)
    fused = result.fused

    print()
    for panel in figure1_series(fused, result.n_days).values():
        print(render_series_summary(panel))
        print()

    print(render_table4(country_ranking(fused.telescope), "Telescope"))
    print()
    print(render_table4(country_ranking(fused.honeypot), "Honeypot"))
    print()
    print(render_table5(ip_protocol_distribution(fused.telescope)))
    print()
    print(render_table6(reflection_protocol_distribution(fused.honeypot)))
    print()

    print(render_duration_cdf(duration_cdf(fused.telescope), "Telescope"))
    print()
    print(render_duration_cdf(duration_cdf(fused.honeypot), "Honeypot"))
    print()
    print(render_intensity_cdf(intensity_cdf(fused.telescope), "Telescope, Fig 3"))
    print()
    for label, cdf in per_protocol_intensity_cdfs(fused.honeypot).items():
        print(f"  Fig 4 {label}: median {cdf.median:.1f} req/s, "
              f"P(<=1000) = {cdf.fraction_at_or_below(1000):.1%}")
    print()

    print(render_table7(port_cardinality(fused.telescope)))
    print()
    print(
        render_table8(
            service_table(fused.telescope, PROTO_TCP),
            service_table(fused.telescope, PROTO_UDP),
        )
    )
    print()
    share = web_infrastructure_share(fused.telescope)
    print(f"Single-port TCP events on Web ports: {share:.1%} (paper: 69.36%)")
    comparison = web_port_comparison(fused.telescope)
    print(f"Web-port attacks: median intensity {comparison.median_intensity_web:.1f} "
          f"vs overall {comparison.median_intensity_all:.1f}; "
          f"mean duration {comparison.mean_duration_web / 60:.0f} min "
          f"vs overall {comparison.mean_duration_all / 60:.0f} min")

    # Figure 5: medium+-intensity attacks per day.
    model = IntensityModel(fused.combined.events)
    medium = model.medium_plus(fused.combined.events)
    series = daily_series(medium, result.n_days, "Medium+ combined")
    print()
    print(render_series_summary(series))

    # Joint attacks.
    joint = fused.joint_analysis()
    print()
    print(f"Shared targets: {joint.n_shared_targets}; "
          f"simultaneously attacked: {joint.n_joint_targets}")
    print(f"Joint direct attacks single-port: {joint.single_port_fraction:.1%} "
          f"(overall: {port_cardinality(fused.telescope).single_fraction:.1%})")
    print(f"Joint single-port UDP on 27015: {joint.udp_27015_fraction:.1%}")
    ntp = joint.reflection_protocol_shares.get("NTP", 0.0)
    print(f"NTP share among joint reflection attacks: {ntp:.1%}")


if __name__ == "__main__":
    main()
