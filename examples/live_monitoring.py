#!/usr/bin/env python3
"""Near-realtime fusion: the operator's view the paper's conclusions call for.

Replays a simulated window through :class:`StreamingFusion` as if the two
event feeds arrived live, printing day summaries, spike alerts as they
fire, and the incrementally-maintained Table 1 aggregates — demonstrating
that the fusion framework works as a streaming component, not only as a
batch analysis.

Usage::

    python examples/live_monitoring.py
"""

import heapq

from repro import ScenarioConfig, run_simulation
from repro.core.streaming import StreamingFusion


def main() -> None:
    result = run_simulation(ScenarioConfig.default())

    # Merge the two live feeds in time order, the way a collector would.
    stream = heapq.merge(
        result.fused.telescope.events,
        result.fused.honeypot.events,
        key=lambda e: e.start_ts,
    )

    fusion = StreamingFusion(
        web_index=result.web_index, baseline_days=7, alert_factor=2.5
    )
    alerts_seen = 0
    for event in stream:
        for summary in fusion.ingest(event):
            new_alerts = fusion.alerts[alerts_seen:]
            alerts_seen = len(fusion.alerts)
            for alert in new_alerts:
                print(f"  !! day {alert.day}: {alert.metric} spike "
                      f"x{alert.factor:.1f} ({alert.value} vs baseline "
                      f"{alert.baseline:.0f})")
            if summary.day % 20 == 0:
                print(f"day {summary.day:3d}: {summary.attacks:3d} attacks "
                      f"({summary.telescope_attacks} telescope / "
                      f"{summary.honeypot_attacks} honeypot), "
                      f"{summary.unique_targets} targets, "
                      f"{summary.affected_sites} sites affected")
    fusion.finish()

    print()
    print("Running Table 1 aggregates after the full stream:")
    for key, value in fusion.running_summary().items():
        print(f"  {key}: {value}")
    print(f"Total spike alerts: {len(fusion.alerts)}")
    batch = {r["source"]: r for r in result.fused.summary_rows()}["Combined"]
    assert fusion.running_summary()["events"] == batch["events"]
    print("Streaming aggregates match the batch analysis exactly.")


if __name__ == "__main__":
    main()
