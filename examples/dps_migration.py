#!/usr/bin/env python3
"""Section 6 walkthrough: do attacks push Web sites to protection services?

Reproduces the taxonomy tree (Figure 8), the attack-frequency comparison
(Figure 9), the intensity-stratified migration-delay CDFs (Figure 10), the
long-attack delay CDF (Figure 11), Table 3 (sites per provider) and Table 9
(normalized intensity percentiles) — and cross-checks the DNS-derived
detections against the behavioural ground truth of the simulation.

Usage::

    python examples/dps_migration.py
"""

from repro import ScenarioConfig, run_simulation
from repro.core.intensity import IntensityModel, intensity_percentile_table
from repro.core.migration import MigrationAnalysis
from repro.core.report import (
    render_delay_cdf,
    render_table3,
    render_table9,
    render_taxonomy,
)
from repro.core.taxonomy import classify_sites, taxonomy_counts
from repro.core.webmap import WebImpactAnalysis


def main() -> None:
    result = run_simulation(ScenarioConfig.default())
    fused = result.fused

    print(render_table3(result.dps_usage.provider_site_counts()))
    print()

    impact = WebImpactAnalysis(result.web_index)
    histories = impact.site_histories(fused.combined.events)
    first_attack = {d: h.first_attack_day() for d, h in histories.items()}
    dps_first = result.dps_usage.first_day_by_domain()

    counts = taxonomy_counts(
        classify_sites(result.openintel.first_seen, first_attack, dps_first)
    )
    print(render_taxonomy(counts))
    print()

    model = IntensityModel(fused.combined.events)
    migration = MigrationAnalysis(histories, dps_first, model)

    # Figure 9: repetition is not what drives migration.
    all_over, migrating_over = migration.repetition_effect(threshold=5)
    print(f"Attacked >5 times: {all_over:.1%} of all attacked sites, "
          f"{migrating_over:.1%} of migrating sites "
          f"(paper: 7.65% vs 2.17%)")
    print()

    # Figure 10: intensity accelerates migration.
    cdfs = {"All": migration.delay_cdf()}
    for label, fraction in (("Top 5%", 0.05), ("Top 1%", 0.01)):
        try:
            cdfs[label] = migration.delay_cdf(top_fraction=fraction)
        except ValueError:
            pass  # class empty at this scale
    print(render_delay_cdf(cdfs))
    print()

    # Figure 11: migration after >=4 h attacks.
    try:
        long_cdf = migration.delay_cdf_long_attacks()
        print(f"Migrations after >=4h attacks: "
              f"{long_cdf.fraction_at_or_below(1):.1%} within a day, "
              f"{long_cdf.fraction_at_or_below(5):.1%} within five days "
              f"(paper: 67.6% / 76.0%)")
    except ValueError:
        print("No migrations followed a >=4h attack in this run.")
    print()

    # Table 9.
    site_intensity = (
        max(model.normalized(e) for e in history.events)
        for history in histories.values()
    )
    print(render_table9(intensity_percentile_table(site_intensity)))
    print()

    # Validation against the behavioural ground truth.
    detected = result.dps_usage.first_day_by_domain()
    hits = sum(
        1 for m in result.ledger.migrations if m.domain in detected
    )
    print(f"DNS detection rediscovered {hits}/{len(result.ledger.migrations)} "
          f"behavioural migrations "
          f"and {len(result.ledger.preexisting)} preexisting customers.")
    storylines = [
        m for m in result.ledger.migrations if m.storyline and m.storyline != "ambient"
    ]
    if storylines:
        sample = storylines[0]
        print(f"Storyline example: {sample.storyline!r} moved "
              f"{sum(1 for m in storylines if m.storyline == sample.storyline)} "
              f"sites on day {sample.migration_day}.")


if __name__ == "__main__":
    main()
