#!/usr/bin/env python3
"""Export a simulated telescope capture as a pcap and re-detect from it.

Demonstrates the wire-format layer: the darknet's count-compressed batch
capture expands to real IPv4 frames in a classic libpcap file (linktype
RAW, readable by tcpdump/Wireshark), and the RSDoS detector replayed over
that file reproduces the same attack events — collection, storage and
analysis fully decoupled, as with real telescope archives.

Usage::

    python examples/pcap_export.py [output.pcap]
"""

import sys
import tempfile
from pathlib import Path

from repro.attacks.attacker import ATTACK_DIRECT, GroundTruthAttack
from repro.net.packet import PROTO_TCP
from repro.net.pcap import read_pcap_as_batches, write_batches_pcap
from repro.telescope.backscatter import BackscatterConfig, BackscatterModel
from repro.telescope.darknet import NetworkTelescope
from repro.telescope.rsdos import RSDoSDetector
from repro.net.addressing import format_ipv4, parse_ipv4


def main() -> None:
    path = Path(
        sys.argv[1]
        if len(sys.argv) > 1
        else Path(tempfile.gettempdir()) / "telescope.pcap"
    )

    attacks = [
        GroundTruthAttack(
            attack_id=i + 1, kind=ATTACK_DIRECT,
            target=parse_ipv4(f"203.0.113.{i + 1}"),
            start=i * 900.0, duration=600.0, rate=150_000.0,
            vector="syn-flood", ip_proto=PROTO_TCP, ports=(80,),
        )
        for i in range(3)
    ]
    telescope = NetworkTelescope(
        backscatter=BackscatterModel(BackscatterConfig(seed=12)), noise=None
    )
    capture = telescope.capture(attacks)

    direct_events = list(RSDoSDetector().run(iter(capture)))
    written = write_batches_pcap(capture, path)
    print(f"wrote {written} raw-IP frames to {path} "
          f"(open with: tcpdump -nn -r {path})")

    replayed_events = list(RSDoSDetector().run(read_pcap_as_batches(path)))
    print(f"events detected from live capture : {len(direct_events)}")
    print(f"events detected from pcap replay  : {len(replayed_events)}")
    for live, replayed in zip(direct_events, replayed_events):
        assert live.victim == replayed.victim
        assert live.packets == replayed.packets
        print(f"  {format_ipv4(live.victim)}: {live.packets} packets, "
              f"max {live.max_pps:.1f} pps — identical after round-trip")


if __name__ == "__main__":
    main()
